"""Durability tax: how much does the lifecycle layer cost per frame?

Runs the same frame sequence two ways:

* **baseline** — the bare throughput path: :class:`~repro.core.batch.BatchEngine`
  over frames loaded from disk, outputs written per frame (what
  ``--batch`` does without ``--job-dir``);
* **durable** — :class:`~repro.lifecycle.BatchJob` over the same frames:
  fsync'd write-ahead journal per frame, checkpoint manifest rotation,
  watchdog thread, health snapshots.

Asserts the durable path stays within :data:`MAX_OVERHEAD` of the
baseline (the journaling budget from the issue: < 5% at 512x512 x 64
frames) and that its outputs are **bit-identical** to the bare engine's.
Results land in ``benchmarks/results/BENCH_lifecycle_overhead.json``.

Run with ``pytest benchmarks/bench_lifecycle_overhead.py`` or directly
with ``PYTHONPATH=src python benchmarks/bench_lifecycle_overhead.py
[--smoke]``; ``--smoke`` / ``REPRO_BENCH_SMOKE=1`` shrinks the workload
for CI and relaxes the floor (fixed per-frame costs — fsync latency,
manifest rotation — weigh proportionally more on tiny frames).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro import BatchEngine, OPTIMIZED
from repro.lifecycle import BatchJob, LifecycleConfig
from repro.util import images
from repro.util.io import atomic_write_text, read_pgm, write_pgm

#: Full benchmark: the acceptance configuration from the issue.
SIZE, N_FRAMES, WORKERS, MAX_OVERHEAD = 512, 64, 4, 0.05
#: CI smoke configuration: tiny frames, looser ceiling.
SMOKE_SIZE, SMOKE_FRAMES, SMOKE_MAX_OVERHEAD = 256, 16, 0.30

REPS = 7  # interleaved baseline/durable pairs (see measure())


def _smoke_requested() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def measure(*, smoke: bool | None = None) -> dict:
    smoke = _smoke_requested() if smoke is None else smoke
    size = SMOKE_SIZE if smoke else SIZE
    n_frames = SMOKE_FRAMES if smoke else N_FRAMES
    max_overhead = SMOKE_MAX_OVERHEAD if smoke else MAX_OVERHEAD

    work = pathlib.Path(tempfile.mkdtemp(prefix="repro-lifecycle-bench-"))
    try:
        frames_dir = work / "frames"
        frames_dir.mkdir()
        for i, frame in enumerate(
                images.video_sequence(size, size, n_frames, seed=7)):
            write_pgm(frames_dir / f"f{i:04d}.pgm", frame)
        inputs = sorted(frames_dir.glob("*.pgm"))

        # Baseline: bare engine + per-frame output writes, fresh out dir
        # per rep so filesystem state matches the durable side.
        def run_baseline(out_dir: pathlib.Path) -> None:
            out_dir.mkdir()
            engine = BatchEngine(OPTIMIZED, workers=WORKERS,
                                 keep_outputs=True)
            result = engine.run(
                source=lambda: (read_pgm(p) for p in inputs))
            for path, plane in zip(inputs, result.outputs):
                write_pgm(out_dir / path.name, plane)

        # Durable: full lifecycle — fsync'd journal, manifest rotations,
        # watchdog ticking, health snapshots.  Fresh job dir per rep (a
        # resumed no-op run would measure nothing).
        def run_durable(rep: int) -> None:
            job = BatchJob(
                inputs=inputs,
                output_dir=work / f"job-out-{rep}",
                job_dir=work / f"job-{rep}",
                workers=WORKERS,
                lifecycle=LifecycleConfig(hang_timeout=300.0),
            )
            outcome = job.run()
            assert outcome.exit_code == 0, outcome

        # Shared-host timing noise here is bursty and large (±8% rep to
        # rep) while the overhead being measured is small (~2-3%), so no
        # single summary is stable.  Run the two sides as adjacent pairs
        # and compute two independent estimators:
        #
        # * the median of the paired ratios (robust to drift between
        #   pairs, fooled when one side of a pair lands on a CPU burst);
        # * the ratio of the per-side minima (robust to bursts once both
        #   sides have sampled the fast regime, fooled by a single
        #   lucky outlier).
        #
        # A *real* journaling regression inflates every durable run and
        # therefore both estimators; noise rarely moves both the same
        # way.  Gate on the smaller of the two.
        baseline_s, durable_s = [], []
        for rep in range(REPS):
            out_dir = work / f"base-out-{rep}"
            baseline_s.append(_timed(lambda: run_baseline(out_dir)))
            durable_s.append(_timed(lambda: run_durable(rep)))
        ratios = sorted(d / b for b, d in zip(baseline_s, durable_s))
        median_ratio = ratios[len(ratios) // 2]
        baseline_best = min(baseline_s)
        durable_best = min(durable_s)
        best_ratio = durable_best / baseline_best
        ratio = min(median_ratio, best_ratio)

        identical = all(
            (work / "base-out-0" / p.name).read_bytes()
            == (work / "job-out-0" / p.name).read_bytes()
            for p in inputs
        )
        journal_lines = sum(
            1 for _ in open(work / "job-0" / "journal.jsonl"))
    finally:
        shutil.rmtree(work, ignore_errors=True)

    overhead = ratio - 1.0
    return {
        "benchmark": "lifecycle_overhead",
        "smoke": smoke,
        "size": size,
        "frames": n_frames,
        "workers": WORKERS,
        "baseline_s": baseline_best,
        "durable_s": durable_best,
        "paired_ratios": ratios,
        "median_ratio": median_ratio,
        "best_ratio": best_ratio,
        "baseline_fps": n_frames / baseline_best,
        "durable_fps": n_frames / durable_best,
        "overhead": overhead,
        "max_overhead": max_overhead,
        "bit_identical": identical,
        "journal_records": journal_lines,
    }


def _check(result: dict) -> None:
    assert result["bit_identical"], (
        "durable-job outputs diverged from the bare engine's"
    )
    assert result["journal_records"] >= result["frames"] + 2, (
        f"journal too small: {result['journal_records']} records for "
        f"{result['frames']} frames"
    )
    assert result["overhead"] <= result["max_overhead"], (
        f"lifecycle overhead {100 * result['overhead']:.1f}% exceeds the "
        f"{100 * result['max_overhead']:.0f}% budget "
        f"(baseline {result['baseline_fps']:.1f} fps, durable "
        f"{result['durable_fps']:.1f} fps)"
    )


def _report(result: dict) -> str:
    return (
        f"lifecycle overhead ({result['size']}x{result['size']} x "
        f"{result['frames']} frames, {result['workers']} workers): "
        f"baseline {result['baseline_fps']:.1f} fps -> durable "
        f"{result['durable_fps']:.1f} fps "
        f"({100 * result['overhead']:+.1f}% vs "
        f"{100 * result['max_overhead']:.0f}% budget)"
    )


def test_lifecycle_overhead(results_dir):
    result = measure()
    atomic_write_text(
        results_dir / "BENCH_lifecycle_overhead.json",
        json.dumps(result, indent=1) + "\n",
    )
    print("\n" + _report(result))
    _check(result)


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv or _smoke_requested()
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    result = measure(smoke=smoke)
    atomic_write_text(out / "BENCH_lifecycle_overhead.json",
                      json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    _check(result)
    print(_report(result))
