"""Fig. 16: reduction on CPU (incl. pEdge transfer) vs on GPU."""

import pytest

from repro.experiments import fig16_reduction


def test_fig16_reduction(save_report, benchmark):
    rows = benchmark(fig16_reduction.run)
    save_report("fig16_reduction", fig16_reduction.report(rows))

    speedups = [r.speedup for r in rows]
    assert speedups == sorted(speedups), "GPU advantage grows with size"
    # Paper: up to 30.8x at the large end.
    assert rows[-1].speedup == pytest.approx(
        fig16_reduction.PAPER_MAX_SPEEDUP, rel=0.3)
