"""Table I: hardware platform specifications (sanity anchor).

Regenerates the spec table from the simulator configuration and checks it
against the values printed in the paper.
"""

from repro.experiments import hardware


def test_table1(benchmark, save_report):
    report = benchmark(hardware.report)
    assert hardware.matches_paper()
    save_report("table1_hardware", report)
