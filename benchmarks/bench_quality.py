"""Quality bench: objective output metrics across presets and workloads."""

from repro.experiments import quality


def test_quality_study(save_report, benchmark):
    rows = benchmark.pedantic(quality.run, kwargs={"size": 256},
                              rounds=1, iterations=1)
    save_report("quality_study", quality.report(rows))

    ringing_free = [r for r in rows if r.preset == "ringing-free"]
    assert ringing_free
    for r in ringing_free:
        assert r.overshoot_fraction == 0.0
