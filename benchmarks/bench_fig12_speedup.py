"""Fig. 12: CPU vs base GPU vs optimized GPU speedup curve.

Regenerates the speedup table across image sizes and benchmarks one
optimized-pipeline simulation at 512x512 (wall time of the simulator, not
the modelled device time).
"""

import pytest

from repro.core import OPTIMIZED, GPUPipeline
from repro.experiments import fig12_speedup, make_image

from .conftest import bench_sizes


@pytest.fixture(scope="module")
def rows():
    return fig12_speedup.run(bench_sizes(), validate=False)


def test_fig12_report(rows, save_report, benchmark):
    report = fig12_speedup.report(rows)
    save_report("fig12_speedup", report)

    # Shape checks against the paper before benchmarking:
    speedups = [r.opt_speedup for r in rows]
    assert speedups == sorted(speedups), "speedup must grow with size"
    assert rows[0].base_speedup == pytest.approx(9.8, rel=0.25)
    assert rows[0].opt_speedup == pytest.approx(10.7, rel=0.25)

    image = make_image(512)
    pipeline = GPUPipeline(OPTIMIZED)
    benchmark.pedantic(pipeline.run, args=(image,), rounds=3, iterations=1)
