"""Lifecycle soak: durable jobs under sustained fault pressure.

Cycles durable batch jobs for ``REPRO_SOAK_SECONDS`` (default 60):

* every job runs with ~10% transient faults on the transfer/kernel sites
  (retried and healed by the resilience layer underneath the journal);
* every few jobs, one frame is forced to hang and the watchdog
  (``hang_timeout``) must cancel and dead-letter it, after which a
  ``--replay-failures`` pass heals the job to a clean checkpoint;
* after every job the checkpoint is audited: the manifest loads, the
  journal replays, and the replayed completion set matches the output
  files on disk, bit for bit with a fault-free reference run;
* the final cycle runs the real CLI in a subprocess, SIGTERMs it
  mid-batch, and requires a clean drain — exit code 3, manifest state
  ``drained``, resumable to completion with exit code 0.

Exits non-zero on the first violated invariant.  Not collected by
pytest (the file name matches neither ``test_*`` nor ``bench_*``); CI
runs it directly: ``PYTHONPATH=src python benchmarks/soak_lifecycle.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro import RunContext
from repro.lifecycle import BatchJob, JobJournal, LifecycleConfig, Manifest
from repro.resilience import FaultPlan
from repro.util import images
from repro.util.io import write_pgm

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
SIZE, N_FRAMES = 128, 24
TRANSIENT = "transfer:rate=0.08,kind=transient;kernel:rate=0.04,kind=transient"
FORCED_HANG = ";hang:rate=1.0,max=1,seconds=120"
HANG_EVERY = 3  # every third job includes the forced hang

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def fail(msg: str) -> None:
    print(f"SOAK FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def audit(job_dir, out_dir, reference, *, expect_state) -> None:
    """A checkpoint must always be loadable and agree with the disk."""
    manifest = Manifest.load(job_dir)
    if manifest.state != expect_state:
        fail(f"manifest state {manifest.state!r} != {expect_state!r}")
    state = JobJournal.replay(job_dir)
    for fid in state.completed:
        got = (pathlib.Path(out_dir) / fid).read_bytes()
        if got != reference[fid]:
            fail(f"output {fid} diverged from the fault-free reference")
    health = json.loads(
        (pathlib.Path(job_dir) / "health.json").read_text())
    if health["completed"] != len(state.completed):
        fail(f"health says {health['completed']} completed, journal says "
             f"{len(state.completed)}")


def main() -> None:
    t0 = time.monotonic()
    work = pathlib.Path(tempfile.mkdtemp(prefix="repro-soak-"))
    frames_dir = work / "frames"
    frames_dir.mkdir()
    for i, frame in enumerate(
            images.video_sequence(SIZE, SIZE, N_FRAMES, seed=11)):
        write_pgm(frames_dir / f"f{i:03d}.pgm", frame)
    inputs = sorted(frames_dir.glob("*.pgm"))

    # Fault-free reference outputs (the bit-identity oracle).
    ref_job = BatchJob(inputs=inputs, output_dir=work / "ref-out",
                       job_dir=work / "ref-job", workers=2,
                       lifecycle=LifecycleConfig(fsync=False))
    if ref_job.run().exit_code != 0:
        fail("reference run failed")
    reference = {p.name: p.read_bytes()
                 for p in sorted((work / "ref-out").glob("*.pgm"))}
    audit(work / "ref-job", work / "ref-out", reference,
          expect_state="completed")

    cycles = hangs = frames_done = 0
    budget = max(10.0, SOAK_SECONDS - 15.0)  # reserve time for the drain
    while time.monotonic() - t0 < budget:
        cycles += 1
        forced_hang = cycles % HANG_EVERY == 0
        spec = TRANSIENT + (FORCED_HANG if forced_hang else "")
        spec += f";seed={cycles}"
        obs = RunContext.create(f"soak-{cycles}", log_level="error",
                                faults=FaultPlan.parse(spec))
        job_dir = work / f"job-{cycles}"
        out_dir = work / f"out-{cycles}"
        job = BatchJob(
            inputs=inputs, output_dir=out_dir, job_dir=job_dir,
            workers=2, obs=obs,
            lifecycle=LifecycleConfig(hang_timeout=1.0,
                                      watchdog_interval=0.05),
        )
        outcome = job.run()
        frames_done += outcome.executed
        if forced_hang:
            if len(outcome.failed) != 1 or outcome.exit_code != 1:
                fail(f"cycle {cycles}: expected exactly the forced hang "
                     f"to dead-letter, got failed={outcome.failed} "
                     f"exit={outcome.exit_code}")
            hangs += 1
            audit(job_dir, out_dir, reference, expect_state="completed")
            healed = BatchJob.resume(
                job_dir, lifecycle=LifecycleConfig(fsync=False))
            heal = healed.run(replay_failures=True)
            frames_done += heal.executed
            if heal.exit_code != 0 or heal.executed != 1:
                fail(f"cycle {cycles}: replay-failures did not heal: "
                     f"exit={heal.exit_code} executed={heal.executed}")
        elif outcome.exit_code != 0:
            fail(f"cycle {cycles}: transient faults leaked through the "
                 f"resilience layer: exit={outcome.exit_code} "
                 f"failed={outcome.failed}")
        audit(job_dir, out_dir, reference, expect_state="completed")

    # Final cycle: real process, real SIGTERM, must drain cleanly.
    job_dir = work / "drain-job"
    out_dir = work / "drain-out"
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sharpen",
         str(frames_dir / "*.pgm"), str(out_dir), "--batch",
         "--job-dir", str(job_dir), "--workers", "1",
         "--inject-faults", "hang:rate=1.0,seconds=0.25;seed=5",
         "--drain-timeout", "30", "--hang-timeout", "30"],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    journal = job_dir / "journal.jsonl"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if journal.exists() and '"status":"completed"' in journal.read_text():
            break
        time.sleep(0.05)
    else:
        proc.kill()
        fail("drain cycle: no frame completed within 60s")
    proc.send_signal(signal.SIGTERM)
    _, err = proc.communicate(timeout=60)
    if proc.returncode != 3:
        fail(f"drain cycle: expected exit 3, got {proc.returncode}: {err}")
    audit(job_dir, out_dir, reference, expect_state="drained")
    resumed = subprocess.run(
        [sys.executable, "-m", "repro", "sharpen", "--resume",
         str(job_dir)], env=env, capture_output=True, text=True)
    if resumed.returncode != 0:
        fail(f"drain cycle: resume failed: {resumed.stderr}")
    audit(job_dir, out_dir, reference, expect_state="completed")
    if {p.name for p in out_dir.glob("*.pgm")} != set(reference):
        fail("drain cycle: resumed output set incomplete")

    elapsed = time.monotonic() - t0
    shutil.rmtree(work, ignore_errors=True)
    print(f"SOAK OK: {elapsed:.0f}s, {cycles} fault cycles, "
          f"{frames_done} frames, {hangs} forced hangs cancelled+healed, "
          f"1 drain/resume cycle")


if __name__ == "__main__":
    main()
