"""Ablation benches: the design-choice studies DESIGN.md calls out."""

from repro.experiments import ablations


def test_sobel_strategy_ablation(save_report, benchmark):
    rows = benchmark(ablations.run_sobel)
    save_report("ablation_sobel", ablations.report_sobel(rows))
    for r in rows:
        assert r.vector_time < r.scalar_time


def test_reduction_layout_ablation(save_report, benchmark):
    rows = benchmark(ablations.run_reduction_layout)
    save_report("ablation_reduction_layout",
                ablations.report_reduction_layout(rows))
    best = ablations.best_reduction_layout(rows)
    paper = [r for r in rows if r.wg == 128 and r.ept == 8][0]
    # The paper's layout is competitive with the sweep's winner.
    assert paper.time <= 1.15 * best.time


def test_fusion_traffic_ablation(save_report, benchmark):
    rows = benchmark(ablations.run_fusion)
    save_report("ablation_fusion", ablations.report_fusion(rows))
    for r in rows:
        assert r.fused_time < r.unfused_time
