"""Fig. 17: upscale border on CPU vs GPU, crossover at 768x768."""

from repro.core.heuristics import border_crossover_side
from repro.experiments import fig17_border


def test_fig17_border(save_report, benchmark):
    rows = benchmark(fig17_border.run)
    save_report("fig17_border", fig17_border.report(rows))

    winners = {r.size: r.winner for r in rows}
    assert winners[704] == "cpu"
    assert winners[768] == "gpu"
    assert border_crossover_side() == fig17_border.PAPER_CROSSOVER
