"""Portability bench: the optimization ladder on three device models."""

from repro.experiments import portability


def test_portability_ladder(save_report, benchmark):
    rows = benchmark.pedantic(portability.run, rounds=1, iterations=1)
    save_report("portability", portability.report(rows))

    by_device: dict[str, float] = {}
    for r in rows:
        by_device[r.device] = r.speedup_vs_base  # last step wins
    # The five techniques pay off on every simulated device.
    assert all(final > 1.5 for final in by_device.values())
