"""Resilience overhead: plain batch vs resilience-enabled, faults disabled.

The resilience layer must be free when nothing fails: with no fault plan
armed, the per-frame cost is one ``breaker.allow()`` (a lock acquire), the
``execute()`` wrapper, and a handful of ``getattr`` checks at the fault
sites.  This benchmark streams a batch through :class:`~repro.BatchEngine`
twice — bare, then wrapped in the full retry + breaker + fallback stack
with **no faults injected** — and asserts the wall-clock overhead of the
disabled path stays under 5%.  Numbers land in
``benchmarks/results/BENCH_resilience.json``.

Run with ``pytest benchmarks/bench_resilience_overhead.py`` or directly
with ``PYTHONPATH=src python benchmarks/bench_resilience_overhead.py``;
``REPRO_BENCH_SMOKE=1`` switches to a tiny configuration for CI smoke.
"""

from __future__ import annotations

import json
import os
import time

from repro import BatchEngine, OPTIMIZED, ResilienceConfig
from repro.util import images
from repro.util.io import atomic_write_text

#: Full-size configuration (matches bench_throughput).
SIZE, N_FRAMES, WORKERS = 512, 64, 4
#: CI smoke configuration.
SMOKE_SIZE, SMOKE_FRAMES = 256, 16
#: Timing repetitions; the minimum is compared (least-noise estimator).
ROUNDS = 5
#: Maximum tolerated overhead of the disabled resilience path.
THRESHOLD = 0.05


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _time_batch(frames, resilience) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        engine = BatchEngine(OPTIMIZED, workers=WORKERS,
                             resilience=resilience)
        t0 = time.perf_counter()
        engine.run(frames)
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> dict:
    size = SMOKE_SIZE if _smoke() else SIZE
    n_frames = SMOKE_FRAMES if _smoke() else N_FRAMES
    frames = list(images.video_sequence(size, size, n_frames, seed=3))

    # Warm both paths (imports, plan capture, allocator).
    _time_batch(frames[:2], None)
    _time_batch(frames[:2], ResilienceConfig())

    plain = _time_batch(frames, None)
    resilient = _time_batch(frames, ResilienceConfig())
    return {
        "benchmark": "resilience_overhead",
        "size": size,
        "n_frames": n_frames,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "plain_s": plain,
        "resilient_s": resilient,
        "overhead": resilient / plain - 1.0,
        "threshold": THRESHOLD,
        "smoke": _smoke(),
    }


def test_resilience_overhead_within_threshold(results_dir):
    result = measure()
    atomic_write_text(
        results_dir / "BENCH_resilience.json",
        json.dumps(result, indent=1) + "\n",
    )
    print(f"\nresilience overhead (faults disabled): "
          f"plain {result['plain_s'] * 1e3:.1f} ms, "
          f"resilient {result['resilient_s'] * 1e3:.1f} ms "
          f"({100 * result['overhead']:+.2f}%)")
    assert result["overhead"] < THRESHOLD, (
        f"disabled-resilience overhead {100 * result['overhead']:.1f}% "
        f"exceeds {100 * THRESHOLD:.0f}% — the no-fault hot path must "
        "stay free"
    )


if __name__ == "__main__":
    import pathlib

    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    result = measure()
    atomic_write_text(out / "BENCH_resilience.json",
                      json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
