"""Fig. 14: performance after each optimization step."""

import os

import pytest

from repro.experiments import fig14_stepwise


def _sizes():
    if os.environ.get("REPRO_BENCH_FULL"):
        return fig14_stepwise.FIG14_SIZES  # (256, 1024, 4096)
    return (256, 1024)


def test_fig14_ladder(save_report, benchmark):
    rows = benchmark.pedantic(fig14_stepwise.run, args=(_sizes(),),
                              rounds=1, iterations=1)
    save_report("fig14_stepwise", fig14_stepwise.report(rows))

    finals = fig14_stepwise.final_speedups(rows)
    # Paper: 1.15x at the small end; the transfer+fusion step hurts there.
    assert finals[256] == pytest.approx(1.15, rel=0.2)
    step1 = [r for r in rows
             if r.size == 256 and r.step == "transfer+fusion"][0]
    assert step1.speedup_vs_base < 1.0
    # Gains grow with size.
    ordered = [finals[s] for s in sorted(finals)]
    assert ordered == sorted(ordered)
