"""Fig. 13(a)/(b)/(c): per-stage time fractions of the three versions."""

import pytest

from repro.experiments import fig13_fractions

from .conftest import bench_sizes


@pytest.mark.parametrize("version", fig13_fractions.VERSIONS)
def test_fig13_fractions(version, save_report, benchmark):
    sizes = bench_sizes()
    report = benchmark.pedantic(
        fig13_fractions.report, args=(version, sizes), rounds=1,
        iterations=1,
    )
    save_report(f"fig13_{version}", report)

    fracs = fig13_fractions.run(version, sizes[-1:])
    top = fig13_fractions.dominant_stages(list(fracs.values())[0])
    if version == "cpu":
        # Fig. 13(a): overshoot + strength dominate the CPU version.
        assert set(top) == {"strength", "overshoot"}
    else:
        # Fig. 13(b)/(c): the sharpness tail no longer dominates alone.
        assert top[0] != "sharpness"
