"""Throughput engine benchmark: plan cache + buffer pool + batch workers.

Measures the wall-clock throughput of a frame stream two ways:

* **baseline** — the seed per-frame loop: a ``caching=False``
  :class:`~repro.core.pipeline.GPUPipeline` run serially over the frames,
  re-deriving kernel set / transfer plan / geometry and reallocating every
  buffer on each frame (exactly what ``GPUPipeline.run`` did before the
  throughput layer existed);
* **engine** — :class:`~repro.core.batch.BatchEngine` with a warm plan
  cache and the default 4 workers: the first frame captures an
  :class:`~repro.core.plan.ExecutionPlan`, every later frame replays it
  through pooled buffers.

Asserts the engine sustains at least :data:`MIN_SPEEDUP` over the baseline,
that cached and uncached runs produce **bit-identical** frames
(``np.array_equal``) and equal edge means, and that the plan-cache hit/miss
counters appear in the Prometheus export.  Results land in
``benchmarks/results/BENCH_throughput.json`` — the first entry of the
repo's perf trajectory.

Run with ``pytest benchmarks/bench_throughput.py`` or directly with
``PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]``; the
``--smoke`` flag (or ``REPRO_BENCH_SMOKE=1``) switches to a tiny
size/frame count for CI, with a correspondingly relaxed speedup floor.
"""

from __future__ import annotations

import io
import json
import os
import time

import numpy as np

from repro import BatchEngine, GPUPipeline, OPTIMIZED, RunContext
from repro.types import Image
from repro.util import images
from repro.util.io import atomic_write_text

#: Full benchmark: the acceptance configuration (64 frames of 512x512,
#: 4 workers, >= 2x).
SIZE, N_FRAMES, WORKERS, MIN_SPEEDUP = 512, 64, 4, 2.0
#: CI smoke configuration: smaller frames, looser floor (fixed per-frame
#: overheads weigh more at small sizes, but a regression that serializes
#: the engine or kills the plan cache still fails loudly).
SMOKE_SIZE, SMOKE_FRAMES, SMOKE_MIN_SPEEDUP = 256, 16, 1.4


def _smoke_requested() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def measure(*, smoke: bool | None = None) -> dict:
    smoke = _smoke_requested() if smoke is None else smoke
    size = SMOKE_SIZE if smoke else SIZE
    n_frames = SMOKE_FRAMES if smoke else N_FRAMES
    min_speedup = SMOKE_MIN_SPEEDUP if smoke else MIN_SPEEDUP
    frames = [Image.from_array(f)
              for f in images.video_sequence(size, size, n_frames, seed=7)]

    reps = 3  # min-of-N on both sides: page-cache/allocator noise swings
    #           either loop by ~20%, and the minimum is the honest steady
    #           state for a throughput engine.

    # Baseline: the seed per-frame loop (no plan cache, no buffer pool).
    baseline_pipe = GPUPipeline(OPTIMIZED, caching=False)
    baseline_results = [baseline_pipe.run(f) for f in frames]  # warm+identity
    baseline_s = min(
        _timed(lambda: [baseline_pipe.run(f) for f in frames])
        for _ in range(reps)
    )

    # Engine: warm plan cache, default worker pool, live observability.
    obs = RunContext.create("bench-throughput", log_level="warning",
                            log_stream=io.StringIO())
    engine = BatchEngine(OPTIMIZED, workers=WORKERS, keep_outputs=True,
                         obs=obs)
    result = engine.run(frames)  # warm: capture the plan, fill the pool
    engine_s = min(
        _timed(lambda: engine.run(frames)) for _ in range(reps)
    )

    # Cached output must be bit-identical to the uncached baseline.
    identical = all(
        np.array_equal(out, ref.final) and mean == ref.edge_mean
        for out, mean, ref in zip(result.outputs, result.edge_means,
                                  baseline_results)
    )

    prometheus = obs.metrics.to_prometheus_text()
    counters_exported = (
        'repro_plan_cache_requests_total{outcome="hit"}' in prometheus
        and 'repro_plan_cache_requests_total{outcome="miss"}' in prometheus
    )

    baseline_fps = n_frames / baseline_s
    engine_fps = n_frames / engine_s
    return {
        "benchmark": "throughput",
        "smoke": smoke,
        "size": size,
        "frames": n_frames,
        "workers": WORKERS,
        "effective_workers": engine.effective_workers,
        "baseline_s": baseline_s,
        "engine_s": engine_s,
        "baseline_fps": baseline_fps,
        "engine_fps": engine_fps,
        "speedup": baseline_s / engine_s,
        "min_speedup": min_speedup,
        "bit_identical": identical,
        "plan_cache": result.plan_stats,
        "buffer_pool": result.pool_stats,
        "plan_counters_in_prometheus": counters_exported,
    }


def _check(result: dict) -> None:
    assert result["bit_identical"], (
        "cached batch output diverged from the uncached per-frame baseline"
    )
    assert result["plan_counters_in_prometheus"], (
        "plan-cache hit/miss counters missing from the Prometheus export"
    )
    assert result["plan_cache"]["hits"] >= result["frames"] - 1, (
        f"plan cache barely hit: {result['plan_cache']}"
    )
    assert result["speedup"] >= result["min_speedup"], (
        f"throughput engine speedup {result['speedup']:.2f}x is below the "
        f"{result['min_speedup']:.1f}x floor "
        f"(baseline {result['baseline_fps']:.1f} fps, "
        f"engine {result['engine_fps']:.1f} fps)"
    )


def _report(result: dict) -> str:
    return (
        f"throughput ({result['size']}x{result['size']} x "
        f"{result['frames']} frames, {result['workers']} workers): "
        f"baseline {result['baseline_fps']:.1f} fps -> engine "
        f"{result['engine_fps']:.1f} fps ({result['speedup']:.2f}x)"
    )


def test_throughput_speedup(results_dir):
    result = measure()
    atomic_write_text(
        results_dir / "BENCH_throughput.json",
        json.dumps(result, indent=1) + "\n",
    )
    print("\n" + _report(result))
    _check(result)


if __name__ == "__main__":
    import pathlib
    import sys

    smoke = "--smoke" in sys.argv or _smoke_requested()
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    result = measure(smoke=smoke)
    atomic_write_text(out / "BENCH_throughput.json",
                      json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    _check(result)
    print(_report(result))
