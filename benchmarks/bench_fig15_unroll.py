"""Fig. 15: unroll-one vs unroll-two wavefront reduction kernels."""

from repro.experiments import fig15_unroll


def test_fig15_unroll(save_report, benchmark):
    rows = benchmark(fig15_unroll.run)
    save_report("fig15_unroll", fig15_unroll.report(rows))

    for r in rows:
        # Paper: one-wavefront unrolling wins (the extra barrier hurts).
        assert r.unroll1_time <= r.unroll2_time
        assert r.unroll1_time < r.naive_time
