"""Benchmark-harness configuration.

Each ``bench_*`` module regenerates one table/figure of the paper: it runs
the experiment, writes the paper-style report to ``benchmarks/results/`` and
benchmarks the underlying computation with pytest-benchmark.

By default the harness uses a reduced size grid so a full run completes in
about a minute; set ``REPRO_BENCH_FULL=1`` to run the paper's full 256..4096
grid (the 4096x4096 simulations take a few seconds each).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reduced vs full (paper) size grids.
QUICK_SIZES = (256, 512, 1024)
FULL_SIZES = (256, 512, 1024, 2048, 4096)


def bench_sizes() -> tuple[int, ...]:
    return FULL_SIZES if os.environ.get("REPRO_BENCH_FULL") else QUICK_SIZES


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _save
