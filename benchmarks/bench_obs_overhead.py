"""Observability overhead: instrumented vs uninstrumented pipeline.

The obs layer must be cheap (or off-by-default): this benchmark runs the
optimized GPU pipeline with no RunContext and with a fully live one
(metrics + tracer + logger at ``warning``), asserts the instrumented
wall-clock time stays within 5% of the uninstrumented run, and records the
numbers in ``benchmarks/results/BENCH_obs.json`` so the project's perf
trajectory starts recording.

Run with ``pytest benchmarks/bench_obs_overhead.py`` or directly with
``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import io
import json
import time

from repro import GPUPipeline, OPTIMIZED, RunContext
from repro.util import images
from repro.util.io import atomic_write_text

#: Image side for the timing comparison (big enough that the NumPy stage
#: bodies dominate, as they do at production sizes).
SIZE = 512
#: Timing repetitions; the minimum is compared (least-noise estimator).
ROUNDS = 7
#: Maximum tolerated overhead of the instrumented run.
THRESHOLD = 0.05


def _time_run(pipe, image) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        pipe.run(image)
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> dict:
    image = images.natural_like(SIZE, SIZE, seed=3)

    plain_pipe = GPUPipeline(OPTIMIZED)
    obs = RunContext.create(
        "bench-obs", log_level="warning", log_stream=io.StringIO()
    )
    obs_pipe = GPUPipeline(OPTIMIZED, obs=obs)

    # Warm both paths (imports, allocator, registry children).
    plain_pipe.run(image)
    obs_pipe.run(image)

    plain = _time_run(plain_pipe, image)
    instrumented = _time_run(obs_pipe, image)
    return {
        "benchmark": "obs_overhead",
        "size": SIZE,
        "rounds": ROUNDS,
        "plain_s": plain,
        "instrumented_s": instrumented,
        "overhead": instrumented / plain - 1.0,
        "threshold": THRESHOLD,
    }


def test_obs_overhead_within_threshold(results_dir):
    result = measure()
    atomic_write_text(
        results_dir / "BENCH_obs.json",
        json.dumps(result, indent=1) + "\n",
    )
    print(f"\nobs overhead: plain {result['plain_s'] * 1e3:.2f} ms, "
          f"instrumented {result['instrumented_s'] * 1e3:.2f} ms "
          f"({100 * result['overhead']:+.2f}%)")
    assert result["overhead"] < THRESHOLD, (
        f"observability overhead {100 * result['overhead']:.1f}% exceeds "
        f"{100 * THRESHOLD:.0f}% — keep the instrumented hot path cheap"
    )


if __name__ == "__main__":
    import pathlib

    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    result = measure()
    atomic_write_text(out / "BENCH_obs.json",
                      json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
