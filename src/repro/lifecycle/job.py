"""Durable batch jobs: journaled, resumable, signal-aware, watched.

:class:`BatchJob` is the process-level lifecycle wrapper around
:class:`~repro.core.batch.BatchEngine`.  One *job directory* holds the
whole durable state — manifest (checkpoint header), write-ahead journal,
and health snapshot — and the job wires the engine's lifecycle hooks to:

* the **journal**: every frame outcome is an fsync'd record appended
  after the frame's output file lands, so a SIGKILL at any instant
  loses at most the in-flight frames;
* **graceful shutdown**: first SIGTERM/SIGINT drains (stop admission,
  finish in-flight under ``drain_timeout``), a second aborts; both leave
  a valid checkpoint and a distinct exit code (3 drained / 4 aborted);
* the **watchdog**: frames exceeding ``hang_timeout`` are cancelled and
  dead-lettered; when zombies pin every worker, load shedding stops
  admission and the job drains resumable;
* the **health surface**: an atomically-rotated JSON snapshot plus
  ``repro_job_state`` / ``repro_frames_*`` gauges.

Resume (:meth:`BatchJob.resume`) replays the journal, skips frames with
a completion record (and an existing output file), and re-runs only
pending/failed frames — the pipeline is deterministic, so a resumed
job's concatenated outputs are bit-identical to an uninterrupted run.
:meth:`run` with ``replay_failures=True`` re-enqueues only the dead
letters.
"""

from __future__ import annotations

import pathlib
import threading
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

from ..core.batch import BatchEngine, BatchResult
from ..core.config import OPTIMIZED, OptimizationFlags
from ..errors import UsageError, ValidationError
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..resilience.fallback import ResilienceConfig
from ..types import SharpnessParams
from ..util.io import read_pgm, write_pgm
from .health import HEALTH_NAME, HealthReporter
from .journal import (
    JobJournal,
    JournalState,
    Manifest,
    STATUS_COMPLETED,
    STATUS_FAILED,
)
from .shutdown import EXIT_OK, EXIT_RUNTIME, ShutdownCoordinator
from .watchdog import FrameWatch, Watchdog


@dataclass(frozen=True)
class LifecycleConfig:
    """Durability and lifecycle knobs of one :class:`BatchJob`.

    ``install_signals`` should only be true in a real CLI process (signal
    handlers are process-global and main-thread-only); tests drive the
    coordinator directly.
    """

    drain_timeout: float = 10.0
    hang_timeout: float | None = None
    watchdog_interval: float = 0.05
    health_path: str | pathlib.Path | None = None
    health_interval: float = 1.0
    fsync: bool = True
    install_signals: bool = False


@dataclass
class JobOutcome:
    """What one :meth:`BatchJob.run` left behind."""

    state: str
    exit_code: int
    #: Frames actually executed by *this* run (the no-recompute assert).
    executed: int
    completed: list[str]
    failed: list[str]
    pending: list[str]
    job_dir: pathlib.Path
    result: BatchResult | None = None

    @property
    def ok(self) -> bool:
        return self.exit_code == EXIT_OK


class EngineHooks:
    """Reference implementation of the :class:`BatchEngine` hook surface,
    wired to one :class:`BatchJob`."""

    def __init__(self, job: "BatchJob") -> None:
        self.job = job

    def admit(self) -> bool:
        job = self.job
        if job.shutdown.draining:
            return False
        if job.watchdog is not None and job.watchdog.shedding:
            return False
        return True

    def abandon(self) -> bool:
        job = self.job
        if job.shutdown.abandon():
            job.watch.cancel_all()
            return True
        return False

    def frame_started(self, index: int, frame_id: str) -> threading.Event:
        job = self.job
        token = job.watch.begin(index, frame_id)
        job.health.update(inflight=job.watch.inflight_count)
        return token

    def frame_finished(self, index: int) -> None:
        job = self.job
        job.watch.end(index)
        job.health.update(inflight=job.watch.inflight_count)

    def is_hung(self, index: int) -> bool:
        return self.job.watch.is_hung(index)

    def on_frame(self, *, index: int, frame_id: str, stats, output,
                 edge_mean: float, failure) -> None:
        self.job._on_frame(index=index, frame_id=frame_id, stats=stats,
                           output=output, edge_mean=edge_mean,
                           failure=failure)


class BatchJob:
    """A durable, resumable batch of frames over the throughput engine.

    Parameters
    ----------
    inputs:
        Frame inputs — anything ``loader`` accepts; file paths in the
        CLI.  Frame ids default to the inputs' file names (stable under
        reordering), overridable via ``frame_ids``.
    output_dir:
        Where sharpened frames land, one file per frame id.
    job_dir:
        The durable state directory (manifest + journal + health).
    flags / params / workers / queue_depth / resilience / obs:
        Engine configuration, as for :class:`~repro.core.batch.BatchEngine`.
        Durable jobs always run with per-frame isolation — ``resilience``
        defaults to ``ResilienceConfig()`` so one bad frame dead-letters
        instead of poisoning the job.
    lifecycle:
        The :class:`LifecycleConfig` knob bundle.
    loader / writer:
        ``loader(input) -> array`` and ``writer(path, array)``; default
        PGM I/O.
    """

    def __init__(self, *, inputs: Iterable, output_dir: str | pathlib.Path,
                 job_dir: str | pathlib.Path,
                 flags: OptimizationFlags = OPTIMIZED,
                 params: SharpnessParams | None = None,
                 workers: int = 4, queue_depth: int | None = None,
                 resilience: ResilienceConfig | None = None,
                 obs: RunContext | None = None,
                 lifecycle: LifecycleConfig | None = None,
                 loader: Callable = read_pgm,
                 writer: Callable = write_pgm,
                 frame_ids: Iterable[str] | None = None,
                 manifest: Manifest | None = None) -> None:
        self.inputs = list(inputs)
        self.output_dir = pathlib.Path(output_dir)
        self.job_dir = pathlib.Path(job_dir)
        self.flags = flags
        self.params = params
        self.workers = workers
        self.queue_depth = queue_depth
        self.resilience = (resilience if resilience is not None
                           else ResilienceConfig())
        self.obs = obs or NULL_CONTEXT
        self.lifecycle = lifecycle or LifecycleConfig()
        self.loader = loader
        self.writer = writer
        if frame_ids is not None:
            self.frame_ids = [str(f) for f in frame_ids]
        else:
            self.frame_ids = [pathlib.Path(str(p)).name
                              for p in self.inputs]
        if len(set(self.frame_ids)) != len(self.frame_ids):
            raise ValidationError(
                "frame ids must be unique (duplicate input file names? "
                "pass frame_ids= explicitly)"
            )
        if len(self.frame_ids) != len(self.inputs):
            raise ValidationError(
                f"{len(self.frame_ids)} frame ids for "
                f"{len(self.inputs)} inputs"
            )
        self._by_id = dict(zip(self.frame_ids, self.inputs))
        self._index_of = {fid: i for i, fid in enumerate(self.frame_ids)}
        self._manifest = manifest
        self._resuming = manifest is not None
        # Run-scoped state, populated by run():
        self.journal: JobJournal | None = None
        self.health: HealthReporter | None = None
        self.watch: FrameWatch | None = None
        self.watchdog: Watchdog | None = None
        self.shutdown: ShutdownCoordinator | None = None
        self._run_n = 0
        self._completed_ids: set[str] = set()
        self._failed_ids: set[str] = set()
        self._count_lock = threading.Lock()

    # -- resume ---------------------------------------------------------------

    @classmethod
    def resume(cls, job_dir: str | pathlib.Path, *,
               obs: RunContext | None = None,
               lifecycle: LifecycleConfig | None = None,
               loader: Callable = read_pgm,
               writer: Callable = write_pgm) -> "BatchJob":
        """Rebuild a job from its manifest (engine configuration included,
        so a resumed run cannot drift from the original)."""
        manifest = Manifest.load(job_dir)
        config = manifest.config
        try:
            flags = OptimizationFlags(**config["flags"])
            params = (SharpnessParams(**config["params"])
                      if config.get("params") else None)
        except (KeyError, TypeError) as exc:
            raise UsageError(
                f"job manifest {job_dir} has an unusable engine config: "
                f"{exc}"
            ) from exc
        if lifecycle is None:
            saved = config.get("lifecycle", {})
            lifecycle = LifecycleConfig(**{
                k: v for k, v in saved.items()
                if k in LifecycleConfig.__dataclass_fields__
            })
        return cls(
            inputs=manifest.inputs,
            output_dir=manifest.output_dir,
            job_dir=job_dir,
            flags=flags,
            params=params,
            workers=int(config.get("workers", 4)),
            obs=obs,
            lifecycle=lifecycle,
            loader=loader,
            writer=writer,
            frame_ids=manifest.frame_ids,
            manifest=manifest,
        )

    # -- main entry -----------------------------------------------------------

    def run(self, *, replay_failures: bool = False) -> JobOutcome:
        """Execute (or continue) the job; returns the outcome with the
        CLI exit code already computed."""
        cfg = self.lifecycle
        self.job_dir.mkdir(parents=True, exist_ok=True)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.job_dir, fsync=cfg.fsync)
        prior = JobJournal.replay(self.journal.path)
        if not self._resuming and (prior.records or prior.torn):
            raise UsageError(
                f"{self.job_dir} already holds a journal; resume it "
                "(--resume) or choose a fresh --job-dir"
            )
        todo_ids = self._plan_todo(prior, replay_failures=replay_failures)
        self._run_n = prior.runs + 1

        manifest = self._manifest
        if manifest is None:
            manifest = Manifest.create(
                frame_ids=self.frame_ids,
                inputs=[str(p) for p in self.inputs],
                output_dir=str(self.output_dir),
                config=self._config_dump(),
            )
            self._manifest = manifest
        manifest.runs = self._run_n
        manifest.transition("running", self.job_dir)

        obs = self.obs
        health_path = cfg.health_path or (self.job_dir / HEALTH_NAME)
        self.health = HealthReporter(
            job_id=manifest.job_id, frames_total=len(self.frame_ids),
            path=health_path, obs=obs, interval=cfg.health_interval,
            run=self._run_n,
        )
        self._refresh_counts()
        self.health.set_state("running")

        self.shutdown = ShutdownCoordinator(
            drain_timeout=cfg.drain_timeout,
            on_drain=lambda reason: self._on_drain(reason),
            on_abort=lambda reason: self._on_abort(reason),
        )
        if cfg.install_signals:
            self.shutdown.install()
        self.watch = FrameWatch()
        engine = BatchEngine(
            self.flags, self.params, workers=self.workers,
            queue_depth=self.queue_depth, keep_outputs=False,
            obs=obs, resilience=self.resilience, hooks=EngineHooks(self),
        )
        self.watchdog = Watchdog(
            self.watch, hang_timeout=cfg.hang_timeout,
            capacity=engine.effective_workers,
            interval=cfg.watchdog_interval, obs=obs,
            on_tick=self.health.maybe_write,
            on_shed=lambda: self.shutdown.request_drain("load-shed"),
        )
        self.watchdog.start()

        self.journal.record_run(
            "start", run=self._run_n, state="running",
            frames_total=len(self.frame_ids), todo=len(todo_ids),
            resumed=self._resuming, replay_failures=replay_failures,
        )
        if obs.enabled:
            obs.log.info(
                "job.start", job_id=manifest.job_id, run=self._run_n,
                frames_total=len(self.frame_ids), todo=len(todo_ids),
                resumed=self._resuming, replay_failures=replay_failures,
                job_dir=str(self.job_dir),
            )

        result: BatchResult | None = None
        try:
            if todo_ids:
                todo_paths = [self._by_id[fid] for fid in todo_ids]
                result = engine.run(
                    source=lambda: (self.loader(p) for p in todo_paths),
                    frame_ids=todo_ids,
                )
        except Exception:  # repro: ignore[PL-BROAD-EXCEPT] crash boundary: mark failed, re-raise
            self._finalize("failed")
            raise
        finally:
            self.watchdog.stop()
            if cfg.install_signals:
                self.shutdown.restore()

        outcome = self._finalize(None, result=result)
        if obs.enabled:
            obs.log.info(
                "job.end", job_id=manifest.job_id, run=self._run_n,
                state=outcome.state, exit_code=outcome.exit_code,
                executed=outcome.executed,
                completed=len(outcome.completed),
                failed=len(outcome.failed),
                pending=len(outcome.pending),
            )
        return outcome

    # -- internals ------------------------------------------------------------

    def _config_dump(self) -> dict[str, Any]:
        cfg = self.lifecycle
        return {
            "flags": asdict(self.flags),
            "params": asdict(self.params) if self.params else None,
            "workers": self.workers,
            "lifecycle": {
                "drain_timeout": cfg.drain_timeout,
                "hang_timeout": cfg.hang_timeout,
                "fsync": cfg.fsync,
            },
        }

    def _plan_todo(self, prior: JournalState, *,
                   replay_failures: bool) -> list[str]:
        """Which frames does this run execute?

        Completed frames are skipped only when their output file still
        exists (a deleted output demotes the frame back to pending);
        ``replay_failures`` narrows the plan to the dead letters.
        """
        completed: set[str] = set()
        for fid, record in prior.completed.items():
            if fid not in self._by_id:
                continue  # journal knows frames this manifest does not
            out_name = record.get("output") or fid
            if (self.output_dir / out_name).exists():
                completed.add(fid)
        self._completed_ids = completed
        self._failed_ids = {
            fid for fid in prior.failed
            if fid in self._by_id and fid not in completed
        }
        if replay_failures:
            return [fid for fid in self.frame_ids
                    if fid in self._failed_ids]
        return [fid for fid in self.frame_ids if fid not in completed]

    def _on_frame(self, *, index: int, frame_id: str, stats, output,
                  edge_mean: float, failure) -> None:
        """The journaling point: output first, then the WAL record."""
        out_name = None
        if failure is None and output is not None:
            self.writer(self.output_dir / frame_id, output)
            out_name = frame_id
        self.journal.record_frame(
            frame_id=frame_id,
            index=self._index_of.get(frame_id, index),
            status=STATUS_FAILED if failure else STATUS_COMPLETED,
            run=self._run_n,
            backend=stats.backend,
            attempts=stats.attempts,
            error=failure.error if failure else None,
            error_type=failure.error_type if failure else None,
            edge_mean=edge_mean,
            output=out_name,
        )
        with self._count_lock:
            if failure is None:
                self._completed_ids.add(frame_id)
                self._failed_ids.discard(frame_id)
            else:
                self._failed_ids.add(frame_id)
        self._refresh_counts(last_frame_id=frame_id)
        self.health.maybe_write()

    def _refresh_counts(self, **extra: Any) -> None:
        with self._count_lock:
            completed = len(self._completed_ids)
            failed = len(self._failed_ids)
        total = len(self.frame_ids)
        self.health.update(
            completed=completed, failed=failed,
            pending=max(0, total - completed - failed),
            hangs=self.watch.hangs_total if self.watch else 0,
            shedding=bool(self.watchdog and self.watchdog.shedding),
            **extra,
        )

    def _on_drain(self, reason: str) -> None:
        if self.obs.enabled:
            self.obs.log.warning("job.drain", reason=reason,
                                 drain_timeout_s=self.lifecycle.drain_timeout)
        self.health.set_state("draining")

    def _on_abort(self, reason: str) -> None:
        if self.obs.enabled:
            self.obs.log.error("job.abort", reason=reason)
        if self.watch is not None:
            self.watch.cancel_all()

    def _final_state(self) -> str:
        if self.shutdown is not None and self.shutdown.aborted:
            return "aborted"
        pending = [fid for fid in self.frame_ids
                   if fid not in self._completed_ids
                   and fid not in self._failed_ids]
        if pending:
            return "drained"
        return "completed"

    def _finalize(self, state: str | None, *,
                  result: BatchResult | None = None) -> JobOutcome:
        state = state or self._final_state()
        completed = [fid for fid in self.frame_ids
                     if fid in self._completed_ids]
        failed = [fid for fid in self.frame_ids
                  if fid in self._failed_ids]
        pending = [fid for fid in self.frame_ids
                   if fid not in self._completed_ids
                   and fid not in self._failed_ids]
        self.journal.record_run(
            "end", run=self._run_n, state=state,
            completed=len(completed), failed=len(failed),
            pending=len(pending),
        )
        self.journal.close()
        self._manifest.runs = self._run_n
        self._manifest.transition(state, self.job_dir)
        self._refresh_counts()
        self.health.set_state(state)
        if state == "failed":
            exit_code = EXIT_RUNTIME
        else:
            exit_code = self.shutdown.exit_code(
                pending=len(pending), failed=len(failed))
        return JobOutcome(
            state=state,
            exit_code=exit_code,
            executed=result.n_frames if result is not None else 0,
            completed=completed,
            failed=failed,
            pending=pending,
            job_dir=self.job_dir,
            result=result,
        )
