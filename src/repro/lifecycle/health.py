"""Job health surface: liveness/readiness/progress snapshots + gauges.

A durable job continuously publishes *where it is*:

* a JSON snapshot file (``--health-out`` / ``LifecycleConfig.health_path``,
  default ``<job-dir>/health.json``), written atomically so a scraper
  never reads a torn document.  ``live`` is true while the process keeps
  refreshing ``updated_unix`` (staleness = the probe's liveness signal);
  ``ready`` is true while the job is running and admitting frames (false
  once draining, shedding, or finished);
* metrics through :mod:`repro.obs.metrics`:
  ``repro_job_state`` (numeric code, see :data:`STATE_CODES`),
  ``repro_frames_completed`` / ``repro_frames_pending`` /
  ``repro_frames_inflight`` / ``repro_frames_failed`` gauges, and the
  watchdog's ``repro_watchdog_hangs_total`` counter.

The reporter is cheap on purpose: gauges update on every change, but the
file write is rate-limited to ``interval`` seconds except at state
transitions and shutdown, which always flush.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any, Callable

from ..obs.runctx import NULL_CONTEXT
from ..util.io import atomic_write_text
from .journal import JOB_STATES

HEALTH_NAME = "health.json"

#: Numeric encoding of job states for the ``repro_job_state`` gauge.
STATE_CODES = {state: code for code, state in enumerate(JOB_STATES)}

JOB_STATE = "repro_job_state"
FRAMES_COMPLETED = "repro_frames_completed"
FRAMES_PENDING = "repro_frames_pending"
FRAMES_INFLIGHT = "repro_frames_inflight"
FRAMES_FAILED_GAUGE = "repro_frames_failed"


class HealthReporter:
    """Mutable job-progress snapshot with atomic JSON export.

    Thread-safe: frame completions land from the engine's collector
    thread while the watchdog ticks the periodic write.
    """

    def __init__(self, *, job_id: str, frames_total: int,
                 path: str | pathlib.Path | None = None,
                 obs=NULL_CONTEXT, interval: float = 1.0,
                 run: int = 1,
                 clock: Callable[[], float] = time.time) -> None:
        self.job_id = job_id
        self.path = pathlib.Path(path) if path is not None else None
        self.obs = obs
        self.interval = interval
        self.clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._last_write = 0.0
        self._state = "starting"
        self._fields: dict[str, Any] = {
            "frames_total": frames_total,
            "completed": 0,
            "failed": 0,
            "inflight": 0,
            "pending": frames_total,
            "hangs": 0,
            "shedding": False,
            "run": run,
            "last_frame_id": None,
        }
        self._publish_gauges()

    # -- updates --------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def set_state(self, state: str) -> None:
        """Transition the job state; always flushes the snapshot file."""
        if state not in JOB_STATES:
            from ..errors import ValidationError
            raise ValidationError(
                f"job state must be one of {JOB_STATES}, got {state!r}"
            )
        with self._lock:
            self._state = state
        self._publish_gauges()
        self.write()

    def update(self, **fields: Any) -> None:
        """Merge progress fields (completed/failed/inflight/pending/...)."""
        with self._lock:
            for key, value in fields.items():
                if key not in self._fields:
                    from ..errors import ValidationError
                    raise ValidationError(
                        f"unknown health field {key!r}"
                    )
                self._fields[key] = value
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        with self._lock:
            state_code = STATE_CODES[self._state]
            fields = dict(self._fields)
        metrics = obs.metrics
        metrics.gauge(
            JOB_STATE,
            "Durable-job state code "
            "(0=starting 1=running 2=draining 3=drained 4=completed "
            "5=aborted 6=failed)",
        ).set(state_code)
        metrics.gauge(
            FRAMES_COMPLETED, "Frames journaled completed (job total)",
        ).set(fields["completed"])
        metrics.gauge(
            FRAMES_PENDING, "Frames not yet completed",
        ).set(fields["pending"])
        metrics.gauge(
            FRAMES_INFLIGHT, "Frames currently being processed",
        ).set(fields["inflight"])
        metrics.gauge(
            FRAMES_FAILED_GAUGE, "Frames whose latest outcome is a failure",
        ).set(fields["failed"])

    # -- snapshot & export ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        now = self.clock()
        with self._lock:
            state = self._state
            fields = dict(self._fields)
        running = state in ("starting", "running")
        return {
            "job_id": self.job_id,
            "state": state,
            "state_code": STATE_CODES[state],
            "live": True,
            "ready": running and not fields["shedding"],
            "pid": os.getpid(),
            "started_unix": self._started,
            "updated_unix": now,
            "uptime_s": max(0.0, now - self._started),
            **fields,
        }

    def write(self) -> pathlib.Path | None:
        """Atomically write the snapshot file (no-op without a path)."""
        if self.path is None:
            return None
        snap = self.snapshot()
        atomic_write_text(self.path,
                          json.dumps(snap, indent=1, sort_keys=True) + "\n")
        self._last_write = snap["updated_unix"]
        return self.path

    def maybe_write(self) -> None:
        """Rate-limited write (the watchdog calls this every tick)."""
        if self.path is None:
            return
        if self.clock() - self._last_write >= self.interval:
            self.write()
