"""Durable batch jobs: journal, checkpoint/resume, shutdown, watchdog,
health.

The lifecycle layer wraps the throughput engine's batch path in
process-level durability (see ``docs/lifecycle.md``):

* :class:`JobJournal` / :class:`Manifest` — crash-safe write-ahead
  journal and atomically-rotated checkpoint header;
* :class:`BatchJob` — the orchestrator: run, ``--resume``, and
  ``--replay-failures`` over one job directory;
* :class:`ShutdownCoordinator` — two-stage drain/abort signal contract
  plus the CLI exit-code mapping (``EXIT_*``);
* :class:`FrameWatch` / :class:`Watchdog` — hang detection, cooperative
  cancellation, load shedding;
* :class:`HealthReporter` — liveness/readiness/progress JSON and gauges.
"""

from .health import HEALTH_NAME, HealthReporter, STATE_CODES
from .journal import (
    JOB_STATES,
    JOURNAL_NAME,
    JobJournal,
    JournalState,
    MANIFEST_NAME,
    Manifest,
    STATUS_COMPLETED,
    STATUS_FAILED,
)
from .job import BatchJob, EngineHooks, JobOutcome, LifecycleConfig
from .shutdown import (
    EXIT_ABORTED,
    EXIT_DRAINED,
    EXIT_OK,
    EXIT_RUNTIME,
    EXIT_USAGE,
    ShutdownCoordinator,
)
from .watchdog import FrameWatch, WATCHDOG_HANGS, Watchdog

__all__ = [
    "BatchJob",
    "EngineHooks",
    "EXIT_ABORTED",
    "EXIT_DRAINED",
    "EXIT_OK",
    "EXIT_RUNTIME",
    "EXIT_USAGE",
    "FrameWatch",
    "HEALTH_NAME",
    "HealthReporter",
    "JOB_STATES",
    "JOURNAL_NAME",
    "JobJournal",
    "JobOutcome",
    "JournalState",
    "LifecycleConfig",
    "MANIFEST_NAME",
    "Manifest",
    "STATE_CODES",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "ShutdownCoordinator",
    "WATCHDOG_HANGS",
    "Watchdog",
]
