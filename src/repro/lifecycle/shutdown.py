"""Graceful shutdown: drain on the first signal, abort on the second.

The signal contract of a durable batch job (see ``docs/lifecycle.md``):

* **first** SIGTERM/SIGINT — *drain*: stop admitting frames, let
  in-flight frames finish under the drain deadline, flush the journal
  and metrics, exit ``EXIT_DRAINED`` (3) if frames remain (resume picks
  them up) or ``EXIT_OK`` (0) if the drain happened to finish the job;
* **second** signal (or a drain that blows its deadline) — *abort*:
  abandon in-flight frames immediately and exit ``EXIT_ABORTED`` (4).
  The journal is fsync'd per record, so even an abort leaves a valid
  checkpoint; only the abandoned frames re-run on resume.

:class:`ShutdownCoordinator` carries that state machine.  It works
without signals too — tests (and embedding applications) call
:meth:`request_drain` / :meth:`request_abort` directly; ``install()``
is only needed when POSIX signals should drive it, and restores the
previous handlers on ``restore()``.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Callable

#: CLI exit-code contract (tested by ``tests/test_cli_errors.py``).
EXIT_OK = 0          #: every frame produced pixels
EXIT_RUNTIME = 1     #: ran to completion but frames failed / runtime error
EXIT_USAGE = 2       #: unusable input or configuration
EXIT_DRAINED = 3     #: drained cleanly with pending frames (resumable)
EXIT_ABORTED = 4     #: forced abort; checkpoint valid, frames abandoned

_DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class ShutdownCoordinator:
    """Two-stage drain/abort latch, optionally driven by POSIX signals.

    Parameters
    ----------
    drain_timeout:
        Seconds the drain phase may spend finishing in-flight frames
        before it escalates to abandon (``abandon()`` turns true).
    on_drain / on_abort:
        Optional callbacks fired once per transition (from the signal
        handler — keep them tiny and lock-free; the lifecycle job uses
        them for a log line and a health-state flip).
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(self, *, drain_timeout: float = 10.0,
                 on_drain: Callable[[str], None] | None = None,
                 on_abort: Callable[[str], None] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if drain_timeout <= 0:
            from ..errors import ConfigError
            raise ConfigError(
                f"drain_timeout must be > 0 seconds, got {drain_timeout}"
            )
        self.drain_timeout = drain_timeout
        self.clock = clock
        self._on_drain = on_drain
        self._on_abort = on_abort
        self._drain = threading.Event()
        self._abort = threading.Event()
        self._deadline: float | None = None
        self._lock = threading.Lock()
        self._previous: dict[int, object] = {}
        self.drain_reason: str | None = None
        self.abort_reason: str | None = None

    # -- signal wiring --------------------------------------------------------

    def install(self, signals=_DEFAULT_SIGNALS) -> "ShutdownCoordinator":
        """Install the drain/abort handler (main thread only)."""
        for signum in signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def restore(self) -> None:
        """Put the previous signal handlers back."""
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def _handle(self, signum, _frame) -> None:
        name = signal.Signals(signum).name
        if self._drain.is_set():
            self.request_abort(f"second signal ({name})")
        else:
            self.request_drain(f"signal ({name})")

    # -- transitions ----------------------------------------------------------

    def request_drain(self, reason: str = "requested") -> None:
        """Stage one: stop admission, finish in-flight under the deadline."""
        with self._lock:
            if self._drain.is_set():
                return
            self.drain_reason = reason
            self._deadline = self.clock() + self.drain_timeout
            self._drain.set()
        if self._on_drain is not None:
            self._on_drain(reason)

    def request_abort(self, reason: str = "requested") -> None:
        """Stage two: abandon in-flight frames immediately."""
        self.request_drain(reason)
        with self._lock:
            if self._abort.is_set():
                return
            self.abort_reason = reason
            self._abort.set()
        if self._on_abort is not None:
            self._on_abort(reason)

    # -- queries (the engine-hook surface) ------------------------------------

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def deadline_exceeded(self) -> bool:
        with self._lock:
            return (self._deadline is not None
                    and self.clock() > self._deadline)

    def abandon(self) -> bool:
        """Should in-flight frames be dropped *now*?  True once an abort
        was requested or the drain deadline has passed."""
        return self.aborted or self.deadline_exceeded()

    def exit_code(self, *, pending: int, failed: int) -> int:
        """Map the final journal tallies to the CLI exit-code contract."""
        if self.aborted:
            return EXIT_ABORTED
        if pending > 0:
            return EXIT_DRAINED if self.draining else EXIT_RUNTIME
        if failed > 0:
            return EXIT_RUNTIME
        return EXIT_OK
