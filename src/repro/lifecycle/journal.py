"""Crash-safe write-ahead journal + checkpoint manifest for batch jobs.

The durability contract has two halves, both living in one *job
directory*:

``journal.jsonl`` — an append-only JSONL write-ahead log.  Every frame
outcome is one fsync'd line, appended **after** the frame's output file
is on disk, so a record saying ``"status": "completed"`` implies the
pixels exist.  A process killed mid-write leaves at most one torn
trailing line, which :meth:`JobJournal.replay` skips; duplicated records
(e.g. a frame journaled again by a replay run) fold idempotently — a
frame that ever completed stays completed, otherwise its *latest*
failure wins.

``manifest.json`` — the job's checkpoint header: identity, input frame
list with stable ids, output directory, engine configuration, and the
current job state.  It is rotated atomically (hard-link the current
manifest to ``manifest.json.prev``, then ``os.replace`` the new one into
place), so a crash during a state transition leaves either the old or
the new manifest, never a torn one.

Neither file is ever rewritten in place; resume = load manifest + replay
journal + run the difference.  See ``docs/lifecycle.md`` for the on-disk
format reference.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping

from ..errors import UsageError, ValidationError

JOURNAL_NAME = "journal.jsonl"
MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Frame record statuses.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"

#: Job states a manifest / health snapshot can report.  ``drained`` means
#: the run stopped cleanly with pending frames left (resume finishes
#: them); ``aborted`` means a forced stop (checkpoint still valid).
JOB_STATES = ("starting", "running", "draining", "drained", "completed",
              "aborted", "failed")


@dataclass
class JournalState:
    """Replayed view of a journal: who completed, who failed, what's left.

    ``torn`` counts unparseable lines that were skipped (a crash tears at
    most the trailing one; any number is tolerated), ``duplicates``
    counts frame records that restated an already-known outcome.
    """

    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, dict] = field(default_factory=dict)
    runs: int = 0
    records: int = 0
    torn: int = 0
    duplicates: int = 0

    def status(self, frame_id: str) -> str | None:
        if frame_id in self.completed:
            return STATUS_COMPLETED
        if frame_id in self.failed:
            return STATUS_FAILED
        return None

    def pending_of(self, frame_ids: Iterable[str]) -> list[str]:
        """Frames with no completion record, in the given order."""
        return [fid for fid in frame_ids if fid not in self.completed]

    def failed_of(self, frame_ids: Iterable[str]) -> list[str]:
        """Frames whose latest outcome is a failure, in the given order."""
        return [fid for fid in frame_ids
                if fid in self.failed and fid not in self.completed]


class JobJournal:
    """Append-only, fsync'd JSONL journal of one job directory.

    Thread-safe: the batch engine absorbs frames from one thread, but the
    watchdog and signal paths may append run-level records concurrently.

    ``fsync=False`` trades crash-safety for speed (records still hit the
    OS on every append via ``flush``); the lifecycle overhead benchmark
    measures the default fsync path.
    """

    def __init__(self, job_dir: str | pathlib.Path, *,
                 fsync: bool = True) -> None:
        self.job_dir = pathlib.Path(job_dir)
        self.path = self.job_dir / JOURNAL_NAME
        self.fsync = fsync
        self._fh = None
        self._lock = threading.Lock()

    # -- writing --------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (one JSON line + flush + fsync)."""
        line = json.dumps(dict(record), sort_keys=True,
                          separators=(",", ":"))
        if "\n" in line:  # json.dumps never emits one, but the contract
            raise ValidationError("journal records must be single-line")
        with self._lock:
            if self._fh is None:
                self.job_dir.mkdir(parents=True, exist_ok=True)
                self._heal_torn_tail()
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def _heal_torn_tail(self) -> None:
        """Terminate a torn trailing line left by a crash mid-write, so the
        next append starts on a fresh line instead of merging into the
        garbage (which would corrupt an otherwise-good record)."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                last = fh.read(1)
        except (FileNotFoundError, OSError):
            return  # empty or absent file: nothing to heal
        if last != b"\n":
            with open(self.path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())

    def record_run(self, event: str, *, run: int, state: str,
                   **extra: Any) -> None:
        """Append a run-level record (``start`` / ``end``)."""
        self.append({"kind": "run", "event": event, "run": run,
                     "state": state, "t": time.time(), **extra})

    def record_frame(self, *, frame_id: str, index: int, status: str,
                     run: int, backend: str | None = None,
                     attempts: int = 1, error: str | None = None,
                     error_type: str | None = None,
                     edge_mean: float | None = None,
                     output: str | None = None) -> None:
        """Append one frame outcome (call *after* the output is on disk)."""
        if status not in (STATUS_COMPLETED, STATUS_FAILED):
            raise ValidationError(
                f"frame status must be completed/failed, got {status!r}"
            )
        record: dict[str, Any] = {
            "kind": "frame", "frame_id": frame_id, "index": index,
            "status": status, "run": run, "attempts": attempts,
            "t": time.time(),
        }
        if backend is not None:
            record["backend"] = backend
        if error is not None:
            record["error"] = error
            record["error_type"] = error_type
        if edge_mean is not None and edge_mean == edge_mean:  # not NaN
            record["edge_mean"] = edge_mean
        if output is not None:
            record["output"] = output
        self.append(record)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ---------------------------------------------------------------

    @classmethod
    def replay(cls, path: str | pathlib.Path) -> JournalState:
        """Fold a journal (file or job dir) into a :class:`JournalState`.

        Replay is **idempotent**: duplicated records do not change the
        outcome, and unparseable (torn) lines are counted and skipped
        rather than failing the resume.  Completion is sticky — once a
        frame has a completed record, later failure records for it are
        treated as duplicates (a completed frame is never re-run, so such
        records only arise from replayed/duplicated history).
        """
        path = pathlib.Path(path)
        if path.is_dir():
            path = path / JOURNAL_NAME
        state = JournalState()
        if not path.exists():
            return state
        # errors="replace": a crash can tear the trailing line mid-byte;
        # invalid UTF-8 must count as torn, not crash the resume.
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    kind = record["kind"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    state.torn += 1
                    continue
                state.records += 1
                if kind == "run":
                    if record.get("event") == "start":
                        state.runs += 1
                    continue
                if kind != "frame":
                    continue
                fid = str(record.get("frame_id", ""))
                status = record.get("status")
                if not fid or status not in (STATUS_COMPLETED,
                                             STATUS_FAILED):
                    state.torn += 1
                    continue
                if fid in state.completed:
                    state.duplicates += 1
                    continue
                if status == STATUS_COMPLETED:
                    if fid in state.failed:
                        # failure superseded by a later success
                        del state.failed[fid]
                    state.completed[fid] = record
                else:
                    if fid in state.failed:
                        state.duplicates += 1
                    state.failed[fid] = record  # latest failure wins
        return state


@dataclass
class Manifest:
    """The job's checkpoint header (``manifest.json``).

    ``config`` carries everything needed to rebuild the engine on resume:
    flag/param dataclass dumps, worker count, resilience/fault specs and
    the lifecycle knobs — written once at job start and preserved across
    state rotations so a resume cannot drift from the original run's
    configuration (the bit-identity guarantee).
    """

    job_id: str
    frames_total: int
    frame_ids: list[str]
    inputs: list[str]
    output_dir: str
    state: str = "starting"
    runs: int = 0
    created: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)
    config: dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValidationError(
                f"job state must be one of {JOB_STATES}, got {self.state!r}"
            )
        if len(set(self.frame_ids)) != len(self.frame_ids):
            raise ValidationError("frame ids must be unique within a job")
        if len(self.frame_ids) != self.frames_total:
            raise ValidationError(
                f"frames_total {self.frames_total} != "
                f"{len(self.frame_ids)} frame ids"
            )

    @classmethod
    def create(cls, *, frame_ids: Iterable[str], inputs: Iterable[str],
               output_dir: str, config: Mapping[str, Any] | None = None,
               job_id: str | None = None) -> "Manifest":
        frame_ids = [str(f) for f in frame_ids]
        return cls(
            job_id=job_id or uuid.uuid4().hex[:12],
            frames_total=len(frame_ids),
            frame_ids=frame_ids,
            inputs=[str(p) for p in inputs],
            output_dir=str(output_dir),
            config=dict(config or {}),
        )

    # -- persistence ----------------------------------------------------------

    def write(self, job_dir: str | pathlib.Path) -> pathlib.Path:
        """Atomically rotate this manifest into ``job_dir``.

        The current manifest (if any) is hard-linked to
        ``manifest.json.prev`` first, then the new content replaces
        ``manifest.json`` via ``os.replace`` — at every instant the
        directory holds a complete manifest.
        """
        job_dir = pathlib.Path(job_dir)
        job_dir.mkdir(parents=True, exist_ok=True)
        self.updated = time.time()
        path = job_dir / MANIFEST_NAME
        prev = job_dir / (MANIFEST_NAME + ".prev")
        if path.exists():
            prev.unlink(missing_ok=True)
            os.link(path, prev)
        tmp = job_dir / f".{MANIFEST_NAME}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(asdict(self), fh, indent=1, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:  # repro: ignore[PL-BROAD-EXCEPT] tmp cleanup, re-raised
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, job_dir: str | pathlib.Path) -> "Manifest":
        """Load a job directory's manifest (:class:`UsageError` if the
        directory is not a job dir — the CLI maps that to exit code 2)."""
        path = pathlib.Path(job_dir)
        if path.is_dir():
            path = path / MANIFEST_NAME
        if not path.exists():
            raise UsageError(
                f"no job manifest at {path}: not a job directory "
                "(start one with --job-dir)"
            )
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValidationError("manifest is not a JSON object")
            if data.get("version", 0) > MANIFEST_VERSION:
                raise ValidationError(
                    f"manifest version {data['version']} is newer than "
                    f"supported {MANIFEST_VERSION}"
                )
            data.pop("version", None)
            return cls(**data, version=MANIFEST_VERSION)
        except (ValueError, TypeError) as exc:
            raise UsageError(
                f"corrupt job manifest {path}: {exc}"
            ) from exc

    def transition(self, state: str,
                   job_dir: str | pathlib.Path) -> "Manifest":
        """Rotate the manifest into a new job state."""
        if state not in JOB_STATES:
            raise ValidationError(
                f"job state must be one of {JOB_STATES}, got {state!r}"
            )
        self.state = state
        self.write(job_dir)
        return self
