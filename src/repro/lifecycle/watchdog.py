"""Hang watchdog: per-frame deadlines, cancellation, load shedding.

Two cooperating pieces:

:class:`FrameWatch` — a thread-safe registry of in-flight frames.  The
batch engine's workers call :meth:`FrameWatch.begin` / :meth:`~FrameWatch.end`
around each frame; ``begin`` hands back the frame's **cancellation
token** (a :class:`threading.Event`), which cooperative stall points —
today the ``hang`` fault site, tomorrow any long-running kernel loop —
poll while they wait.

:class:`Watchdog` — a daemon thread that sweeps the watch every
``interval`` seconds.  A frame in flight longer than ``hang_timeout``
(a *whole-frame* deadline, distinct from the resilience layer's
per-attempt :class:`~repro.resilience.Timeout`) is **marked hung**: its
cancel token is set, ``repro_watchdog_hangs_total`` increments, and the
engine dead-letters it as a :class:`~repro.errors.FrameHangError`
without waiting for the worker.  When hung frames pin *every* worker —
the backpressure queue is saturated by zombies — the watchdog trips
**load shedding**: admission stops, the job drains and exits
resumable rather than wedging.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..obs.runctx import NULL_CONTEXT

WATCHDOG_HANGS = "repro_watchdog_hangs_total"


class FrameWatch:
    """Thread-safe in-flight frame registry with hang verdicts."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        #: index -> (frame_id, started_at, cancel_token)
        self._inflight: dict[int, tuple[str, float, threading.Event]] = {}
        #: index -> time the frame was marked hung
        self._hung: dict[int, float] = {}
        self.hangs_total = 0

    # -- engine-side ----------------------------------------------------------

    def begin(self, index: int, frame_id: str) -> threading.Event:
        """Register a frame as in flight; returns its cancel token."""
        cancel = threading.Event()
        with self._lock:
            self._inflight[index] = (frame_id, self.clock(), cancel)
        return cancel

    def end(self, index: int) -> None:
        with self._lock:
            self._inflight.pop(index, None)

    def is_hung(self, index: int) -> bool:
        with self._lock:
            return index in self._hung

    # -- watchdog-side --------------------------------------------------------

    def snapshot(self) -> list[tuple[int, str, float, bool]]:
        """(index, frame_id, elapsed_seconds, already_hung) per in-flight
        frame."""
        now = self.clock()
        with self._lock:
            return [(index, fid, now - started, index in self._hung)
                    for index, (fid, started, _cancel)
                    in self._inflight.items()]

    def mark_hung(self, index: int) -> bool:
        """Declare a frame hung; sets its cancel token.  Returns False if
        it was already marked (or already finished)."""
        with self._lock:
            entry = self._inflight.get(index)
            if entry is None or index in self._hung:
                return False
            self._hung[index] = self.clock()
            self.hangs_total += 1
            entry[2].set()
            return True

    def cancel_all(self) -> int:
        """Set every in-flight frame's cancel token (abort path)."""
        with self._lock:
            for _fid, _started, cancel in self._inflight.values():
                cancel.set()
            return len(self._inflight)

    @property
    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def hung_inflight(self, min_age: float = 0.0) -> int:
        """Hung frames whose workers have not returned yet (zombies).

        ``min_age`` filters to frames that have *ignored* their cancel
        token for at least that long — a just-marked frame deserves a
        grace period to notice the cancel before it counts as pinning a
        worker slot.
        """
        now = self.clock()
        with self._lock:
            return sum(
                1 for index in self._inflight
                if index in self._hung
                and now - self._hung[index] >= min_age
            )


class Watchdog(threading.Thread):
    """Periodic sweeper over a :class:`FrameWatch`.

    Parameters
    ----------
    watch:
        The registry the engine feeds.
    hang_timeout:
        Whole-frame deadline in seconds; ``None`` disables hang
        detection (the thread still ticks for health reporting).
    capacity:
        Worker-slot count; when ``hung_inflight() >= capacity`` every
        slot is pinned by a zombie and load shedding trips.
    shed_grace:
        How long a marked-hung frame may keep running before it counts
        toward load shedding — a cancelled frame deserves a beat to
        notice its token and return before we declare its slot lost.
    interval:
        Sweep period.
    on_tick:
        Called once per sweep (the lifecycle job refreshes the health
        file here).
    on_shed:
        Called once when load shedding trips.
    """

    def __init__(self, watch: FrameWatch, *,
                 hang_timeout: float | None = None,
                 capacity: int | None = None,
                 shed_grace: float = 1.0,
                 interval: float = 0.05,
                 obs=NULL_CONTEXT,
                 on_tick: Callable[[], None] | None = None,
                 on_shed: Callable[[], None] | None = None) -> None:
        super().__init__(name="repro-watchdog", daemon=True)
        if hang_timeout is not None and hang_timeout <= 0:
            from ..errors import ConfigError
            raise ConfigError(
                f"hang_timeout must be > 0 seconds, got {hang_timeout}"
            )
        self.watch = watch
        self.hang_timeout = hang_timeout
        self.capacity = capacity
        self.shed_grace = shed_grace
        self.interval = interval
        self.obs = obs
        self.on_tick = on_tick
        self.on_shed = on_shed
        self.shedding = False
        self._halt = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    def run(self) -> None:  # pragma: no cover - exercised via tick()
        while not self._halt.wait(self.interval):
            self.tick()

    def stop(self, join_timeout: float = 2.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=join_timeout)

    # -- one sweep (directly callable in tests) -------------------------------

    def tick(self) -> None:
        obs = self.obs
        if self.hang_timeout is not None:
            for index, fid, elapsed, hung in self.watch.snapshot():
                if hung or elapsed <= self.hang_timeout:
                    continue
                if self.watch.mark_hung(index):
                    if obs.enabled:
                        obs.metrics.counter(
                            WATCHDOG_HANGS,
                            "Frames cancelled for exceeding the hang "
                            "threshold",
                        ).inc()
                        obs.log.error(
                            "watchdog.hang", frame=index, frame_id=fid,
                            elapsed_s=round(elapsed, 3),
                            hang_timeout_s=self.hang_timeout,
                        )
        if (not self.shedding and self.capacity is not None
                and self.capacity > 0
                and self.watch.hung_inflight(self.shed_grace)
                >= self.capacity):
            self.shedding = True
            if obs.enabled:
                obs.log.error(
                    "watchdog.load_shed",
                    hung_inflight=self.watch.hung_inflight(self.shed_grace),
                    capacity=self.capacity,
                )
            if self.on_shed is not None:
                self.on_shed()
        if self.on_tick is not None:
            self.on_tick()
