"""repro — reproduction of "Optimizing Image Sharpening Algorithm on GPU"
(Fan, Jia, Zhang, An, Cao — ICPP 2015) on a simulated OpenCL GPU.

Quickstart::

    import numpy as np
    from repro import Image, SharpnessParams, sharpen, GPUPipeline, OPTIMIZED

    plane = np.random.default_rng(0).uniform(0, 255, (512, 512))
    image = Image.from_array(plane)

    # Simple functional API (CPU reference semantics):
    result = sharpen(image.plane)

    # Full simulated-GPU pipeline with the paper's optimizations:
    gpu = GPUPipeline(OPTIMIZED).run(image)
    print(gpu.final_u8().shape, f"{gpu.total_time * 1e3:.2f} ms (simulated)")

Packages:

* :mod:`repro.algo` — canonical stage implementations (the algorithm itself);
* :mod:`repro.cpu` — scalar golden reference + the paper's CPU baseline;
* :mod:`repro.simgpu` — the simulated GPU (emulator + cost model);
* :mod:`repro.cl` — OpenCL-flavoured host API over the simulator;
* :mod:`repro.kernels` — the device kernels, base and optimized variants;
* :mod:`repro.core` — the optimized pipeline and the optimization ladder;
* :mod:`repro.obs` — structured logging, metrics registry and tracing
  (pass a :class:`~repro.obs.RunContext` as ``obs=`` to either pipeline);
* :mod:`repro.resilience` — fault injection, retry/timeout policies,
  circuit breaker and the GPU->CPU :class:`~repro.resilience.FallbackPipeline`;
* :mod:`repro.lifecycle` — durable batch jobs: crash-safe write-ahead
  journal, checkpoint/resume, graceful shutdown, hang watchdog and the
  job health surface (:class:`~repro.lifecycle.BatchJob`);
* :mod:`repro.experiments` — per-table/figure reproduction harness.
"""

from .algo.stages import sharpen
from .core import (
    BASE,
    LADDER,
    OPTIMIZED,
    BatchEngine,
    BatchResult,
    BufferPool,
    FrameFailure,
    GPUPipeline,
    GPUResult,
    OptimizationFlags,
    PlanCache,
    StreamProcessor,
    StreamResult,
)
from .cpu import CPUPipeline, CPUResult
from .errors import (
    BarrierDivergenceError,
    CircuitOpenError,
    CLError,
    ConfigError,
    DeviceFault,
    DeviceOOMError,
    FaultSpecError,
    FrameHangError,
    FrameTimeoutError,
    GlobalMemoryError,
    InvalidBufferError,
    InvalidKernelArgsError,
    InvalidWorkGroupError,
    KernelLaunchFault,
    LocalMemoryError,
    MapError,
    PermanentError,
    QueueError,
    RaceConditionError,
    ReproError,
    RetryExhaustedError,
    TransferFault,
    TransientError,
    UsageError,
    ValidationError,
    WorkerCrashError,
    is_transient,
)
from .lifecycle import (
    BatchJob,
    HealthReporter,
    JobJournal,
    JobOutcome,
    JournalState,
    LifecycleConfig,
    Manifest,
    ShutdownCoordinator,
    Watchdog,
)
from .obs import MetricsRegistry, RunContext
from .resilience import (
    CircuitBreaker,
    FallbackPipeline,
    FaultPlan,
    ResilienceConfig,
    RetryBudget,
    RetryPolicy,
    Timeout,
)
from .simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from .types import Image, SharpnessParams

__version__ = "1.1.0"

__all__ = [
    "sharpen",
    "BASE",
    "LADDER",
    "OPTIMIZED",
    "BatchEngine",
    "BatchResult",
    "BufferPool",
    "FrameFailure",
    "PlanCache",
    "StreamProcessor",
    "StreamResult",
    "GPUPipeline",
    "GPUResult",
    "OptimizationFlags",
    "CPUPipeline",
    "CPUResult",
    "MetricsRegistry",
    "RunContext",
    # resilience layer
    "CircuitBreaker",
    "FallbackPipeline",
    "FaultPlan",
    "ResilienceConfig",
    "RetryBudget",
    "RetryPolicy",
    "Timeout",
    # lifecycle layer (durable jobs)
    "BatchJob",
    "HealthReporter",
    "JobJournal",
    "JobOutcome",
    "JournalState",
    "LifecycleConfig",
    "Manifest",
    "ShutdownCoordinator",
    "Watchdog",
    # exception hierarchy
    "ReproError",
    "ValidationError",
    "ConfigError",
    "UsageError",
    "TransientError",
    "PermanentError",
    "is_transient",
    "CLError",
    "InvalidBufferError",
    "InvalidKernelArgsError",
    "InvalidWorkGroupError",
    "MapError",
    "QueueError",
    "DeviceFault",
    "BarrierDivergenceError",
    "LocalMemoryError",
    "GlobalMemoryError",
    "RaceConditionError",
    "TransferFault",
    "KernelLaunchFault",
    "DeviceOOMError",
    "WorkerCrashError",
    "FrameHangError",
    "FrameTimeoutError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "FaultSpecError",
    "CPUSpec",
    "DeviceSpec",
    "I5_3470",
    "W8000",
    "Image",
    "SharpnessParams",
    "__version__",
]
