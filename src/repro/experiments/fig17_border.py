"""Fig. 17: upscale-border processing on CPU vs GPU.

Paper result: the CPU (including its transfers) is faster for small images;
the GPU overtakes as the image grows; "the critical value is 768x768".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.heuristics import (
    BORDER_GPU_MIN_SIDE,
    border_cpu_time,
    border_crossover_side,
    border_gpu_time,
)
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table

#: Sizes plotted in Fig. 17.
FIG17_SIZES = (448, 576, 704, 768, 832)

#: The paper's critical value.
PAPER_CROSSOVER = 768


@dataclass(frozen=True)
class Fig17Row:
    size: int
    cpu_time: float
    gpu_time: float

    @property
    def winner(self) -> str:
        return "gpu" if self.gpu_time <= self.cpu_time else "cpu"


def run(sizes=FIG17_SIZES, device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470, *,
        transfer_mode: str = "rw") -> list[Fig17Row]:
    return [
        Fig17Row(
            size=size,
            cpu_time=border_cpu_time(size, size, device, cpu,
                                     transfer_mode=transfer_mode),
            gpu_time=border_gpu_time(size, size, device),
        )
        for size in sizes
    ]


def report(rows: list[Fig17Row], device: DeviceSpec = W8000,
           cpu: CPUSpec = I5_3470) -> str:
    table = format_table(
        ["size", "border on CPU (us, incl. transfers)",
         "border on GPU (us)", "winner"],
        [
            [f"{r.size}x{r.size}", r.cpu_time * 1e6, r.gpu_time * 1e6,
             r.winner]
            for r in rows
        ],
        title="Fig. 17 — upscale border on CPU vs GPU",
    )
    measured = border_crossover_side(device, cpu)
    return (
        f"{table}\n"
        f"measured crossover: {measured}x{measured} "
        f"(paper: {PAPER_CROSSOVER}x{PAPER_CROSSOVER}; pipeline heuristic "
        f"uses {BORDER_GPU_MIN_SIDE})"
    )
