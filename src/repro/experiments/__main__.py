"""Command-line entry: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig12 --sizes 256 512 1024
    python -m repro.experiments fig13 --workload text
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablations,
    calibrate,
    fig12_speedup,
    fig13_fractions,
    fig14_stepwise,
    fig15_unroll,
    fig16_reduction,
    fig17_border,
    hardware,
    portability,
    quality,
)

EXPERIMENTS = ("table1", "fig12", "fig13", "fig14", "fig15", "fig16",
               "fig17", "ablations", "calibration", "portability", "quality")


def _run_one(name: str, sizes: list[int] | None, workload: str) -> str:
    if name == "table1":
        return hardware.report()
    if name == "fig12":
        rows = fig12_speedup.run(sizes or fig12_speedup.PAPER_SIZES,
                                 workload)
        return fig12_speedup.report(rows)
    if name == "fig13":
        return fig13_fractions.report_all(
            sizes or fig13_fractions.PAPER_SIZES, workload
        )
    if name == "fig14":
        rows = fig14_stepwise.run(sizes or fig14_stepwise.FIG14_SIZES,
                                  workload)
        return fig14_stepwise.report(rows)
    if name == "fig15":
        return fig15_unroll.report(
            fig15_unroll.run(sizes or fig15_unroll.FIG15_SIZES)
        )
    if name == "fig16":
        return fig16_reduction.report(
            fig16_reduction.run(sizes or fig16_reduction.FIG16_SIZES)
        )
    if name == "fig17":
        return fig17_border.report(
            fig17_border.run(sizes or fig17_border.FIG17_SIZES)
        )
    if name == "ablations":
        return ablations.report_all()
    if name == "calibration":
        return calibrate.report()
    if name == "portability":
        return portability.report(portability.run())
    if name == "quality":
        return quality.report(quality.run())
    raise SystemExit(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated platform.",
    )
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all",),
                        help="which table/figure to regenerate")
    parser.add_argument("--sizes", type=int, nargs="+", default=None,
                        help="override the image side lengths")
    parser.add_argument("--workload", default="natural",
                        help="synthetic workload name (default: natural)")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(_run_one(name, args.sizes, args.workload))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
