"""Fig. 16: reduction on CPU (including the pEdge transfer) vs on GPU.

Paper result: "after using GPU to accelerate, performance of reduction
improved up to 30.8 times"; the CPU curve includes transferring the pEdge
matrix from the device to the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table
from .fig15_unroll import reduction_cpu_time, reduction_gpu_time

FIG16_SIZES = (256, 1024, 4096)

#: Maximum CPU/GPU reduction ratio the paper reports.
PAPER_MAX_SPEEDUP = 30.8


@dataclass(frozen=True)
class Fig16Row:
    size: int
    cpu_time: float
    gpu_time: float

    @property
    def speedup(self) -> float:
        return self.cpu_time / self.gpu_time


def run(sizes=FIG16_SIZES, device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470, *,
        transfer_mode: str = "rw") -> list[Fig16Row]:
    rows = []
    for size in sizes:
        n = size * size
        rows.append(Fig16Row(
            size=size,
            cpu_time=reduction_cpu_time(n, device=device, cpu=cpu,
                                        transfer_mode=transfer_mode),
            gpu_time=reduction_gpu_time(n, unroll=1, device=device,
                                        cpu=cpu),
        ))
    return rows


def report(rows: list[Fig16Row]) -> str:
    table = format_table(
        ["size", "on CPU (us, incl. transfer)", "on GPU (us)", "speedup"],
        [
            [f"{r.size}x{r.size}", r.cpu_time * 1e6, r.gpu_time * 1e6,
             f"{r.speedup:.1f}x"]
            for r in rows
        ],
        title="Fig. 16 — reduction on CPU vs GPU",
    )
    return f"{table}\npaper: GPU reduction up to {PAPER_MAX_SPEEDUP}x faster"
