"""Output-quality study: what the sharpening actually does to images.

The paper evaluates performance only; this study completes the picture with
objective quality metrics (:mod:`repro.util.metrics`) over the synthetic
workload family and the parameter presets, all through the simulated-GPU
pipeline (whose output is bit-compatible with the CPU baseline).

Shapes the test suite asserts:

* edge gain increases with the ``gain`` parameter on every workload;
* ``overshoot=0`` yields zero halo pixels at any gain;
* fidelity (PSNR) decreases monotonically as sharpening strengthens.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import OPTIMIZED, GPUPipeline
from ..types import SharpnessParams
from ..util.metrics import sharpness_report
from ..util.tables import format_table
from .runner import make_image

from ..presets import PRESET_ORDER, PRESETS as _PRESETS

#: Preset ladder from mild to aggressive (the shared CLI presets).
PRESETS: tuple[tuple[str, SharpnessParams], ...] = tuple(
    (name, _PRESETS[name]) for name in PRESET_ORDER
)

QUALITY_WORKLOADS = ("natural", "text", "checker", "blobs")
STUDY_SIZE = 256


@dataclass(frozen=True)
class QualityRow:
    workload: str
    preset: str
    psnr: float
    ssim: float
    edge_gain: float
    overshoot_fraction: float
    rms_change: float


def run(size: int = STUDY_SIZE, workloads=QUALITY_WORKLOADS,
        presets=PRESETS) -> list[QualityRow]:
    rows: list[QualityRow] = []
    for workload in workloads:
        image = make_image(size, workload)
        for name, params in presets:
            res = GPUPipeline(OPTIMIZED, params).run(image)
            report = sharpness_report(image.plane, res.final)
            rows.append(QualityRow(
                workload=workload,
                preset=name,
                psnr=report["psnr"],
                ssim=report["ssim"],
                edge_gain=report["edge_gain"],
                overshoot_fraction=report["overshoot_fraction"],
                rms_change=report["rms_change"],
            ))
    return rows


def report(rows: list[QualityRow]) -> str:
    table = format_table(
        ["workload", "preset", "PSNR (dB)", "SSIM", "edge gain",
         "halo px", "RMS change"],
        [
            [r.workload, r.preset, r.psnr, f"{r.ssim:.4f}",
             f"{r.edge_gain:.2f}x",
             f"{100 * r.overshoot_fraction:.2f}%", r.rms_change]
            for r in rows
        ],
        title="Quality study — presets x workloads (simulated-GPU output)",
    )
    return (
        f"{table}\n"
        "overshoot control in action: the ringing-free preset keeps the "
        "halo column at\n0% even at the aggressive preset's gain."
    )
