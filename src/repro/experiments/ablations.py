"""Ablation studies on the design choices DESIGN.md calls out.

Three studies, each pricing alternatives the paper mentions but does not
plot:

* **Sobel implementation strategy** — scalar vs vectorized (the paper's
  choice, after Zhang et al.) vs LDS-tiled (Brown et al.'s shared-memory
  approach, cited in related work).
* **Reduction workgroup layout** — the paper "fixes the amount of data
  processed per thread" without reporting the sweep; this regenerates it
  over workgroup sizes and per-thread element counts.
* **Fusion traffic accounting** — global-memory bytes of the fused
  sharpness kernel vs the unfused three-kernel tail, the quantity section
  V.B argues about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.base import round_up
from ..kernels.reduction import barriers_for
from ..kernels.sharpness import (
    make_overshoot_spec,
    make_prelim_spec,
    make_sharpness_fused_spec,
)
from ..kernels.perror import make_perror_spec
from ..kernels.sobel import make_sobel_spec
from ..simgpu.costmodel import kernel_time
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table
from .fig15_unroll import reduction_gpu_time

# ---------------------------------------------------------------------------
# Ablation 1: Sobel implementation strategy
# ---------------------------------------------------------------------------

SOBEL_SIZES = (256, 1024, 4096)


@dataclass(frozen=True)
class SobelAblationRow:
    size: int
    scalar_time: float
    vector_time: float
    tiled_time: float


def _sobel_time(size: int, device: DeviceSpec, *, vector: bool = False,
                tiled: bool = False) -> float:
    spec = make_sobel_spec(padded=True, vector=vector, tiled=tiled,
                           builtins=True)
    if vector:
        gsz = (round_up(size // 4, 16), round_up(size, 16))
    else:
        gsz = (round_up(size, 16), round_up(size, 16))
    lsz = (16, 16)
    return kernel_time(spec.cost(device, gsz, lsz, (None, None, size,
                                                    size)), device)


def run_sobel(sizes=SOBEL_SIZES,
              device: DeviceSpec = W8000) -> list[SobelAblationRow]:
    return [
        SobelAblationRow(
            size=size,
            scalar_time=_sobel_time(size, device),
            vector_time=_sobel_time(size, device, vector=True),
            tiled_time=_sobel_time(size, device, tiled=True),
        )
        for size in sizes
    ]


def report_sobel(rows: list[SobelAblationRow]) -> str:
    table = format_table(
        ["size", "scalar (us)", "vector x4 (us)", "LDS tiled (us)"],
        [
            [f"{r.size}x{r.size}", r.scalar_time * 1e6,
             r.vector_time * 1e6, r.tiled_time * 1e6]
            for r in rows
        ],
        title="Ablation — Sobel: scalar vs vectorized vs LDS-tiled",
    )
    return (
        f"{table}\n"
        "the paper picks vectorization (after Zhang et al.); the tiled "
        "kernel trades\nglobal traffic for LDS traffic plus a barrier per "
        "group and lands in the same\nballpark — both clearly beat the "
        "scalar kernel."
    )


# ---------------------------------------------------------------------------
# Ablation 2: reduction workgroup layout
# ---------------------------------------------------------------------------

REDUCTION_WGS = (64, 128, 256)
REDUCTION_EPTS = (1, 2, 8, 32)


@dataclass(frozen=True)
class ReductionLayoutRow:
    wg: int
    ept: int
    barriers: int
    time: float


def run_reduction_layout(n: int = 4096 * 4096,
                         wgs=REDUCTION_WGS, epts=REDUCTION_EPTS,
                         device: DeviceSpec = W8000,
                         cpu: CPUSpec = I5_3470) -> list[ReductionLayoutRow]:
    rows = []
    for wg in wgs:
        for ept in epts:
            rows.append(ReductionLayoutRow(
                wg=wg,
                ept=ept,
                barriers=barriers_for(1, wg),
                time=reduction_gpu_time(n, unroll=1, wg=wg, ept=ept,
                                        device=device, cpu=cpu),
            ))
    return rows


def best_reduction_layout(rows: list[ReductionLayoutRow]
                          ) -> ReductionLayoutRow:
    return min(rows, key=lambda r: r.time)


def report_reduction_layout(rows: list[ReductionLayoutRow],
                            n: int = 4096 * 4096) -> str:
    table = format_table(
        ["workgroup", "elems/thread", "barriers/group", "time (us)"],
        [[r.wg, r.ept, r.barriers, r.time * 1e6] for r in rows],
        title=f"Ablation — reduction layout sweep ({n} elements)",
    )
    best = best_reduction_layout(rows)
    return (
        f"{table}\n"
        f"best layout: workgroup {best.wg}, {best.ept} elements/thread "
        f"(paper uses 128 x 8)"
    )


# ---------------------------------------------------------------------------
# Ablation 3: fusion traffic accounting (section V.B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionRow:
    size: int
    unfused_bytes: float
    fused_bytes: float
    unfused_time: float
    fused_time: float

    @property
    def traffic_saving(self) -> float:
        return 1.0 - self.fused_bytes / self.unfused_bytes


def run_fusion(sizes=SOBEL_SIZES,
               device: DeviceSpec = W8000) -> list[FusionRow]:
    rows = []
    for size in sizes:
        gsz = (round_up(size, 16), round_up(size, 16))
        lsz = (16, 16)
        args = (None, None, None, None, 0.0, None, size, size)
        unfused_specs = [
            make_perror_spec(padded=True, builtins=True),
            make_prelim_spec(builtins=True),
            make_overshoot_spec(padded=True, builtins=True),
        ]
        unfused_costs = [s.cost(device, gsz, lsz, args)
                         for s in unfused_specs]
        fused_cost = make_sharpness_fused_spec(
            padded=True, builtins=True).cost(device, gsz, lsz, args)
        rows.append(FusionRow(
            size=size,
            unfused_bytes=sum(c.global_bytes_read + c.global_bytes_written
                              for c in unfused_costs),
            fused_bytes=(fused_cost.global_bytes_read
                         + fused_cost.global_bytes_written),
            unfused_time=sum(kernel_time(c, device)
                             for c in unfused_costs),
            fused_time=kernel_time(fused_cost, device),
        ))
    return rows


def report_fusion(rows: list[FusionRow]) -> str:
    table = format_table(
        ["size", "unfused bytes", "fused bytes", "traffic saved",
         "unfused (us)", "fused (us)", "speedup"],
        [
            [f"{r.size}x{r.size}", r.unfused_bytes, r.fused_bytes,
             f"{100 * r.traffic_saving:.0f}%", r.unfused_time * 1e6,
             r.fused_time * 1e6,
             f"{r.unfused_time / r.fused_time:.2f}x"]
            for r in rows
        ],
        title="Ablation — kernel fusion traffic (section V.B)",
    )
    return (
        f"{table}\n"
        "fusion keeps pError and the preliminary matrix in registers: two "
        "kernel\nlaunches and their full-matrix global round-trips "
        "disappear."
    )


def report_all() -> str:
    return "\n\n".join([
        report_sobel(run_sobel()),
        report_reduction_layout(run_reduction_layout()),
        report_fusion(run_fusion()),
    ])
