"""Table I: comparison of experimental hardware platform specifications.

Rendered directly from the device specs the simulator is parameterized
with, so the table the harness prints *is* the configuration every other
experiment runs under.
"""

from __future__ import annotations

from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table

#: The values printed in the paper's Table I.
PAPER_TABLE1 = {
    "AMD W8000": {
        "clock_ghz": 0.88,
        "cores": 1792,
        "peak_gflops": 3230.0,
        "mem_bandwidth_gbps": 176.0,
    },
    "Intel Core i5 3470": {
        "clock_ghz": 3.2,
        "cores": 4,
        "peak_gflops": 57.76,
        "mem_bandwidth_gbps": 25.0,
    },
}


def run(device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470) -> list[list[object]]:
    """Rows: metric, GPU value, CPU value."""
    return [
        ["Processor main frequency (GHz)", device.clock_ghz, cpu.clock_ghz],
        ["The number of cores", device.n_cores, cpu.n_cores],
        ["Peak GFLOPS", device.peak_gflops, cpu.peak_gflops],
        ["Memory bandwidth (GB/s)", device.mem_bandwidth_gbps,
         cpu.mem_bandwidth_gbps],
    ]


def report(device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470) -> str:
    rows = run(device, cpu)
    return format_table(
        ["", device.name, cpu.name], rows,
        title="Table I — experimental hardware platform specifications",
    )


def matches_paper(device: DeviceSpec = W8000,
                  cpu: CPUSpec = I5_3470) -> bool:
    """True when the simulator is parameterized with the paper's Table I."""
    gpu_ref = PAPER_TABLE1["AMD W8000"]
    cpu_ref = PAPER_TABLE1["Intel Core i5 3470"]
    return (
        device.clock_ghz == gpu_ref["clock_ghz"]
        and device.n_cores == gpu_ref["cores"]
        and device.peak_gflops == gpu_ref["peak_gflops"]
        and device.mem_bandwidth_gbps == gpu_ref["mem_bandwidth_gbps"]
        and cpu.clock_ghz == cpu_ref["clock_ghz"]
        and cpu.n_cores == cpu_ref["cores"]
        and cpu.peak_gflops == cpu_ref["peak_gflops"]
        and cpu.mem_bandwidth_gbps == cpu_ref["mem_bandwidth_gbps"]
    )
