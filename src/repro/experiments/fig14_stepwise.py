"""Fig. 14: performance after each step of optimization.

Paper result: the combined optimizations bring 1.15x-9.04x over the base
version for sizes 256x256 to 8192x8192; the reduction and vectorization
steps contribute the most; the transfer/fusion step *reduces* performance
at small sizes (map/unmap is effective there) and only pays off as the
image grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import LADDER, GPUPipeline
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table
from .runner import DEFAULT_PARAMS, make_image

#: Sizes shown in Fig. 14.
FIG14_SIZES = (256, 1024, 4096)

#: Combined-optimization speedup range the paper reports over 256..8192.
PAPER_TOTAL_RANGE = (1.15, 9.04)


@dataclass(frozen=True)
class Fig14Row:
    """One optimization-ladder step at one size."""

    size: int
    step: str
    time: float
    speedup_vs_base: float


def run(sizes=FIG14_SIZES, workload: str = "natural",
        device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470) -> list[Fig14Row]:
    rows: list[Fig14Row] = []
    for size in sizes:
        image = make_image(size, workload)
        base_time = None
        for step_name, flags in LADDER:
            res = GPUPipeline(flags, DEFAULT_PARAMS, device, cpu).run(image)
            if base_time is None:
                base_time = res.total_time
            rows.append(Fig14Row(
                size=size,
                step=step_name,
                time=res.total_time,
                speedup_vs_base=base_time / res.total_time,
            ))
    return rows


def report(rows: list[Fig14Row]) -> str:
    table = format_table(
        ["size", "step", "time (ms)", "speedup vs base"],
        [
            [f"{r.size}x{r.size}", r.step, r.time * 1e3,
             f"{r.speedup_vs_base:.2f}x"]
            for r in rows
        ],
        title="Fig. 14 — step-wise optimization comparison",
    )
    return (
        f"{table}\n"
        f"paper: combined optimizations bring "
        f"{PAPER_TOTAL_RANGE[0]}x-{PAPER_TOTAL_RANGE[1]}x over the base "
        f"version (256x256 .. 8192x8192)"
    )


def final_speedups(rows: list[Fig14Row]) -> dict[int, float]:
    """size -> combined-optimization speedup (last ladder step)."""
    out: dict[int, float] = {}
    for r in rows:
        out[r.size] = r.speedup_vs_base  # last write per size wins
    return out
