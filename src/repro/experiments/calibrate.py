"""Calibration methodology, as executable code.

The simulator's free constants (EXPERIMENTS.md, "Calibration") were chosen
against a small set of anchors taken from the paper's text.  This module
makes that procedure reproducible:

* :func:`anchors` evaluates the model at every anchor (using the dry-run
  pipeline mode, so even the 4096x4096 points are cheap);
* :func:`calibration_error` is the objective (mean squared log-error);
* :func:`fit` re-derives the two most influential constants — the CPU
  baseline efficiency and the GPU memory efficiency — by grid refinement,
  letting the test suite assert the shipped constants sit at/near the
  optimum of their own objective.

Anchors deliberately exclude the paper's base-GPU 4096 endpoint (35.3x),
which is inconsistent with the paper's own Fig. 14/Fig. 16 arithmetic — see
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import BASE, OPTIMIZED, GPUPipeline
from ..cpu.cost import total_time as cpu_total_time
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..types import Image
from ..util import images
from .fig17_border import PAPER_CROSSOVER
from ..core.heuristics import border_crossover_side


@dataclass(frozen=True)
class Anchor:
    """One calibration target."""

    name: str
    paper_value: float
    measured: float

    @property
    def log_error(self) -> float:
        return math.log(self.measured / self.paper_value)


def _speedup(flags, size: int, device: DeviceSpec,
             cpu: CPUSpec) -> float:
    image = Image.from_array(images.gradient(size, size))
    gpu_time = GPUPipeline(flags, device=device, cpu=cpu,
                           mode="dryrun").run(image).total_time
    return cpu_total_time(size, size, cpu) / gpu_time


def anchors(device: DeviceSpec = W8000,
            cpu: CPUSpec = I5_3470) -> list[Anchor]:
    """Evaluate the model at every calibration anchor."""
    return [
        Anchor("base speedup @256 (Fig. 12)", 9.8,
               _speedup(BASE, 256, device, cpu)),
        Anchor("optimized speedup @256 (Fig. 12)", 10.7,
               _speedup(OPTIMIZED, 256, device, cpu)),
        Anchor("optimized speedup @4096 (Fig. 12)", 69.3,
               _speedup(OPTIMIZED, 4096, device, cpu)),
        Anchor("border crossover side (Fig. 17)", float(PAPER_CROSSOVER),
               float(border_crossover_side(device, cpu))),
    ]


def calibration_error(device: DeviceSpec = W8000,
                      cpu: CPUSpec = I5_3470) -> float:
    """Mean squared log-error over all anchors."""
    errs = [a.log_error for a in anchors(device, cpu)]
    return sum(e * e for e in errs) / len(errs)


def report(device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470) -> str:
    from ..util.tables import format_table

    rows = [
        [a.name, a.paper_value, a.measured,
         f"{100 * (math.exp(a.log_error) - 1):+.1f}%"]
        for a in anchors(device, cpu)
    ]
    table = format_table(["anchor", "paper", "model", "error"], rows,
                         title="Calibration anchors")
    return (f"{table}\nobjective (mean squared log error): "
            f"{calibration_error(device, cpu):.4f}")


def fit(device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470, *,
        cpu_eff_grid=(0.024, 0.027, 0.030, 0.033, 0.036),
        mem_eff_grid=(0.35, 0.40, 0.45, 0.50, 0.55)
        ) -> tuple[float, float, float]:
    """Grid-search the two dominant constants.

    Returns ``(best_cpu_efficiency, best_mem_efficiency, best_error)``.
    """
    best = (cpu.efficiency, device.mem_efficiency,
            calibration_error(device, cpu))
    for ce in cpu_eff_grid:
        for me in mem_eff_grid:
            err = calibration_error(device.with_(mem_efficiency=me),
                                    cpu.with_(efficiency=ce))
            if err < best[2]:
                best = (ce, me, err)
    return best
