"""Fig. 12: CPU vs base-GPU vs optimized-GPU across image sizes.

Paper result: as the size grows from 256x256 to 4096x4096, the base GPU
version reaches 9.8x-35.3x over the CPU and the optimized version a further
1.2x-2.0x, for a total of 10.7x-69.3x.

Note on the paper's internal consistency: the 35.3x base endpoint of the
Fig. 12 text is hard to reconcile with Fig. 14, which shows the *combined*
optimizations buying 1.15x-9.04x over the base version (i.e. a ~4-5x
base->optimized gap at 4096x4096, not 2.0x).  Our model is calibrated to the
Fig. 12 endpoints of the *optimized* version and the small-size base
endpoint; the large-size base speedup then lands per the Fig. 14 reading.
EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import BASE, OPTIMIZED, GPUPipeline
from ..cpu.pipeline import CPUPipeline
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_speedup, format_table
from .runner import DEFAULT_PARAMS, PAPER_SIZES, check_against_cpu, make_image

#: Speedup ranges reported in the paper's abstract / section VI.A.
PAPER_BASE_SPEEDUP = (9.8, 35.3)
PAPER_OPT_SPEEDUP = (10.7, 69.3)
PAPER_OPT_OVER_BASE = (1.2, 2.0)


@dataclass(frozen=True)
class Fig12Row:
    """One image size of the Fig. 12 comparison."""

    size: int
    cpu_time: float
    base_time: float
    opt_time: float

    @property
    def base_speedup(self) -> float:
        return self.cpu_time / self.base_time

    @property
    def opt_speedup(self) -> float:
        return self.cpu_time / self.opt_time

    @property
    def opt_over_base(self) -> float:
        return self.base_time / self.opt_time


def run(sizes=PAPER_SIZES, workload: str = "natural",
        device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470,
        *, validate: bool = True) -> list[Fig12Row]:
    """Run the three versions at every size; optionally cross-validate the
    GPU outputs against the CPU baseline's image."""
    rows = []
    cpu_pipe = CPUPipeline(DEFAULT_PARAMS, cpu)
    base_pipe = GPUPipeline(BASE, DEFAULT_PARAMS, device, cpu)
    opt_pipe = GPUPipeline(OPTIMIZED, DEFAULT_PARAMS, device, cpu)
    for size in sizes:
        image = make_image(size, workload)
        cpu_res = cpu_pipe.run(image)
        base_res = base_pipe.run(image)
        opt_res = opt_pipe.run(image)
        if validate:
            check_against_cpu(base_res.final, cpu_res.final,
                              context=f"fig12 base {size}")
            check_against_cpu(opt_res.final, cpu_res.final,
                              context=f"fig12 optimized {size}")
        rows.append(Fig12Row(
            size=size,
            cpu_time=cpu_res.total_time,
            base_time=base_res.total_time,
            opt_time=opt_res.total_time,
        ))
    return rows


def report(rows: list[Fig12Row]) -> str:
    table = format_table(
        ["size", "CPU (ms)", "base GPU (ms)", "opt GPU (ms)",
         "base speedup", "opt speedup", "opt/base"],
        [
            [f"{r.size}x{r.size}", r.cpu_time * 1e3, r.base_time * 1e3,
             r.opt_time * 1e3, f"{r.base_speedup:.1f}x",
             f"{r.opt_speedup:.1f}x",
             format_speedup(r.base_time, r.opt_time)]
            for r in rows
        ],
        title="Fig. 12 — CPU vs base GPU vs optimized GPU",
    )
    lo, hi = PAPER_OPT_SPEEDUP
    return (
        f"{table}\n"
        f"paper: base {PAPER_BASE_SPEEDUP[0]}x-{PAPER_BASE_SPEEDUP[1]}x, "
        f"optimized {lo}x-{hi}x"
    )
