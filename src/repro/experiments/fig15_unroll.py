"""Fig. 15: comparison of the two unrolled reduction kernels.

Paper result: unrolling the last *one* wavefront beats unrolling the last
*two* — "the reason is the barrier after the calculation: unrolling the last
two wavefronts increases the overhead of synchronization".

This module prices the full two-stage reduction flow (stage-1 kernel(s),
stage-2 placement, final partial download and host add) straight from the
cost model, mirroring :meth:`repro.core.pipeline.GPUPipeline._reduce`; the
test suite asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.heuristics import reduction_stage2_on_gpu
from ..core.config import OptimizationFlags
from ..cpu.cost import reduction_host_time
from ..kernels.reduction import make_reduction_spec, reduction_layout
from ..simgpu.costmodel import kernel_time
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_table

FIG15_SIZES = (256, 1024, 4096)


def reduction_gpu_time(n: int, *, unroll: int = 1,
                       device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470,
                       stage2: str = "auto", builtins: bool = True,
                       wg: int | None = None, ept: int | None = None,
                       include_sync: bool = False) -> float:
    """Model time of the full GPU reduction of ``n`` elements.

    ``wg``/``ept`` override the paper's workgroup size and per-thread
    element count (used by the ablation experiments).
    """
    layout_kw = {}
    if wg is not None:
        layout_kw["wg"] = wg
    if ept is not None:
        layout_kw["ept"] = ept
    spec = make_reduction_spec(unroll=unroll, builtins=builtins,
                               **layout_kw)
    flags = OptimizationFlags(reduction_stage2=stage2)
    total = 0.0

    n_groups, gsz, lsz = reduction_layout(n, **layout_kw)
    total += kernel_time(spec.cost(device, gsz, lsz, (None, None, n)),
                         device)
    if include_sync:
        total += device.sync_overhead_s

    span = lsz[0] * (ept or 8)
    stage2_gpu = reduction_stage2_on_gpu(flags, n_groups)
    count = n_groups
    while stage2_gpu and count > span:
        ng2, gsz2, lsz2 = reduction_layout(count, **layout_kw)
        total += kernel_time(
            spec.cost(device, gsz2, lsz2, (None, None, count)), device
        )
        if include_sync:
            total += device.sync_overhead_s
        count = ng2

    total += device.pcie.rw_time(count * 4)
    total += reduction_host_time(count, cpu)
    return total


def reduction_cpu_time(n: int, *, device: DeviceSpec = W8000,
                       cpu: CPUSpec = I5_3470,
                       transfer_mode: str = "rw") -> float:
    """Model time of the CPU reduction, including the pEdge transfer."""
    nbytes = n * 4
    if transfer_mode == "rw":
        transfer = device.pcie.rw_time(nbytes)
    else:
        transfer = device.pcie.map_time(nbytes)
    return transfer + reduction_host_time(n, cpu)


@dataclass(frozen=True)
class Fig15Row:
    size: int
    unroll1_time: float
    unroll2_time: float
    naive_time: float

    @property
    def unroll1_vs_unroll2(self) -> float:
        return self.unroll2_time / self.unroll1_time


def run(sizes=FIG15_SIZES, device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470) -> list[Fig15Row]:
    rows = []
    for size in sizes:
        n = size * size
        rows.append(Fig15Row(
            size=size,
            unroll1_time=reduction_gpu_time(n, unroll=1, device=device,
                                            cpu=cpu),
            unroll2_time=reduction_gpu_time(n, unroll=2, device=device,
                                            cpu=cpu),
            naive_time=reduction_gpu_time(n, unroll=0, device=device,
                                          cpu=cpu),
        ))
    return rows


def report(rows: list[Fig15Row]) -> str:
    table = format_table(
        ["size", "unroll 1 wavefront (us)", "unroll 2 wavefronts (us)",
         "plain tree (us)", "u2/u1"],
        [
            [f"{r.size}x{r.size}", r.unroll1_time * 1e6,
             r.unroll2_time * 1e6, r.naive_time * 1e6,
             f"{r.unroll1_vs_unroll2:.3f}x"]
            for r in rows
        ],
        title="Fig. 15 — reduction kernels: unroll one vs two wavefronts",
    )
    return (
        f"{table}\n"
        "paper: unrolling one wavefront works better (the extra barrier of "
        "the two-wavefront variant adds synchronization overhead)"
    )
