"""Fig. 13: time fraction of each algorithm step, per version.

Paper results:

* (a) CPU version — overshoot control and the strength-matrix calculation
  are the bottlenecks; the Sobel / pError / upscale shares shrink as the
  image grows.
* (b) base GPU version — the bottlenecks shift to the upscale center,
  Sobel, and reduction (overshoot and preliminary sharpening parallelize
  well, so they stop dominating); the data-initialization share shrinks
  with size.
* (c) optimized GPU version — the distribution evens out, "without
  prominent bottlenecks".
"""

from __future__ import annotations

from ..core.metrics import GPU_STAGE_ORDER
from ..cpu.cost import CPU_STAGE_ORDER, stage_times
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..util.tables import format_fraction_table
from .runner import (
    PAPER_SIZES,
    experiment_context,
    make_image,
    run_pipeline,
)

VERSIONS = ("cpu", "base", "optimized")


def run(version: str, sizes=PAPER_SIZES, workload: str = "natural",
        device: DeviceSpec = W8000,
        cpu: CPUSpec = I5_3470) -> dict[str, dict[str, float]]:
    """Per-size stage fractions for one pipeline version.

    Each size runs under its own :class:`~repro.obs.RunContext` and the
    reported fractions are read back from the metrics registry
    (``repro_stage_seconds``), so this report and a metrics export of the
    same run can never disagree.
    """
    out: dict[str, dict[str, float]] = {}
    for size in sizes:
        obs = experiment_context(f"fig13-{version}-{size}",
                                 version=version, size=size)
        if version == "cpu":
            # The CPU breakdown is a pure cost-model evaluation (no pixels
            # needed); record it into the registry like a pipeline would.
            obs.observe_stages("cpu", stage_times(size, size, cpu).times,
                               declare=CPU_STAGE_ORDER)
        else:
            run_pipeline(version, make_image(size, workload),
                         device=device, cpu=cpu, obs=obs)
        out[f"{size}x{size}"] = obs.stage_fractions(version)
    return out


def report(version: str, sizes=PAPER_SIZES, workload: str = "natural",
           device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470) -> str:
    fracs = run(version, sizes, workload, device, cpu)
    order = CPU_STAGE_ORDER if version == "cpu" else GPU_STAGE_ORDER
    titles = {
        "cpu": "Fig. 13(a) — CPU version stage fractions",
        "base": "Fig. 13(b) — base GPU version stage fractions",
        "optimized": "Fig. 13(c) — optimized GPU version stage fractions",
    }
    return format_fraction_table(order, fracs, title=titles[version])


def report_all(sizes=PAPER_SIZES, workload: str = "natural",
               device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470) -> str:
    return "\n\n".join(
        report(v, sizes, workload, device, cpu) for v in VERSIONS
    )


def dominant_stages(fracs: dict[str, float], top: int = 2) -> list[str]:
    """Names of the ``top`` largest stages (for shape assertions)."""
    return [k for k, _ in
            sorted(fracs.items(), key=lambda kv: -kv[1])[:top]]


def evenness(fracs: dict[str, float]) -> float:
    """Largest stage share — lower means more evenly distributed."""
    return max(fracs.values()) if fracs else 0.0
