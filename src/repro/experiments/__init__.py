"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured rows and
``report(...)`` rendering the same rows/series the paper plots, plus the
paper's numbers as module constants so EXPERIMENTS.md and the test suite can
compare shapes.  ``python -m repro.experiments <name|all>`` regenerates
everything from the command line.
"""

from . import (
    ablations,
    calibrate,
    fig12_speedup,
    fig13_fractions,
    fig14_stepwise,
    fig15_unroll,
    fig16_reduction,
    fig17_border,
    hardware,
    portability,
    quality,
)
from .runner import WORKLOADS, make_image

__all__ = [
    "ablations",
    "calibrate",
    "fig12_speedup",
    "fig13_fractions",
    "fig14_stepwise",
    "fig15_unroll",
    "fig16_reduction",
    "fig17_border",
    "hardware",
    "portability",
    "quality",
    "WORKLOADS",
    "make_image",
]
