"""Portability study: the paper's optimizations on other simulated devices.

The paper targets one GPU.  This experiment re-runs the optimization ladder
on two additional device models — an NVIDIA-like contemporary with 32-wide
warps and a handheld-class GPU with unified memory — after re-tuning the
flags with :func:`repro.core.portability.retune`, and recomputes the
device-specific critical values the paper measured "in advance".

Headline findings (asserted by the test suite):

* the *techniques* transfer — fusion, GPU reduction and vectorization help
  on every device;
* the *constants* do not — the unrolled reduction is invalid on 32-wide
  warps, and the border/transfer crossovers move with the link and device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import GPUPipeline, LADDER
from ..core.portability import (
    check_flags,
    device_tuning_summary,
    retune,
)
from ..simgpu.device import CPUSpec, DeviceSpec, EMBEDDED, I5_3470, W8000, \
    WARP32
from ..types import Image
from ..util import images
from ..util.tables import format_table

#: Devices compared by the study.
DEVICES: tuple[DeviceSpec, ...] = (W8000, WARP32, EMBEDDED)

STUDY_SIZE = 1024


@dataclass(frozen=True)
class PortabilityRow:
    device: str
    step: str
    time: float
    speedup_vs_base: float
    retuned: bool
    warnings: int


def run(size: int = STUDY_SIZE, devices=DEVICES,
        cpu: CPUSpec = I5_3470) -> list[PortabilityRow]:
    image = Image.from_array(images.gradient(size, size))
    rows: list[PortabilityRow] = []
    for device in devices:
        base_time = None
        for step_name, flags in LADDER:
            safe = retune(flags, device)
            res = GPUPipeline(safe, device=device, cpu=cpu,
                              mode="dryrun").run(image)
            if base_time is None:
                base_time = res.total_time
            rows.append(PortabilityRow(
                device=device.name,
                step=step_name,
                time=res.total_time,
                speedup_vs_base=base_time / res.total_time,
                retuned=safe != flags,
                warnings=len(check_flags(flags, device)),
            ))
    return rows


def report(rows: list[PortabilityRow]) -> str:
    table = format_table(
        ["device", "step", "time (ms)", "vs base", "retuned"],
        [
            [r.device, r.step, r.time * 1e3,
             f"{r.speedup_vs_base:.2f}x", "yes" if r.retuned else ""]
            for r in rows
        ],
        title=f"Portability — optimization ladder at "
              f"{STUDY_SIZE}x{STUDY_SIZE} on three devices",
    )
    tuning_rows = []
    for device in DEVICES:
        t = device_tuning_summary(device)
        tuning_rows.append([
            device.name,
            int(t["wavefront_size"]),
            "valid" if t["unrolled_reduction_valid"] else "INVALID",
            f"{int(t['border_crossover_side'])}^2",
            f"{t['transfer_crossover_bytes'] / 2**20:.1f} MiB",
        ])
    tuning = format_table(
        ["device", "wavefront", "unrolled reduction",
         "border crossover", "map->rw crossover"],
        tuning_rows,
        title="Device-specific critical values (the paper's 'tested in "
              "advance' numbers)",
    )
    return f"{table}\n\n{tuning}"
