"""Shared experiment machinery: workloads and pipeline invocation.

The paper evaluates on square brightness planes from 256x256 up to
4096x4096 (8192x8192 in Fig. 14's text).  The simulated timing model is
content-independent, so the *times* below depend only on the image size and
configuration; the workloads still produce real pixels so every experiment
also validates the output image against the CPU baseline as it runs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ValidationError
from ..types import Image, SharpnessParams
from ..util import images as imgs

#: Named workload generators (size, seed) -> plane.
WORKLOADS: dict[str, Callable[[int, int], np.ndarray]] = {
    "natural": lambda size, seed: imgs.natural_like(size, size, seed=seed),
    "text": lambda size, seed: imgs.text_like(size, size, seed=seed),
    "checker": lambda size, seed: imgs.checkerboard(size, size),
    "noise": lambda size, seed: imgs.noise(size, size, seed=seed),
    "gradient": lambda size, seed: imgs.gradient(size, size),
    "blobs": lambda size, seed: imgs.gaussian_blobs(size, size, seed=seed),
    "steps": lambda size, seed: imgs.step_edges(size, size),
}

#: Image sizes of Fig. 12/13 (Fig. 14 additionally cites 8192x8192).
PAPER_SIZES = (256, 512, 1024, 2048, 4096)

#: Default sharpening parameters used across all experiments.
DEFAULT_PARAMS = SharpnessParams()


def make_image(size: int, workload: str = "natural", seed: int = 0) -> Image:
    """Build a validated square test image."""
    try:
        gen = WORKLOADS[workload]
    except KeyError:
        raise ValidationError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(WORKLOADS)}"
        ) from None
    return Image.from_array(gen(size, seed))


def check_against_cpu(final_gpu: np.ndarray, final_cpu: np.ndarray,
                      *, context: str) -> None:
    """Assert a GPU run's output matches the CPU baseline's."""
    if final_gpu.shape != final_cpu.shape:
        raise ValidationError(
            f"{context}: shape mismatch {final_gpu.shape} vs "
            f"{final_cpu.shape}"
        )
    err = float(np.max(np.abs(final_gpu - final_cpu)))
    if err > 1e-6:
        raise ValidationError(
            f"{context}: GPU output deviates from CPU baseline by {err}"
        )
