"""Shared experiment machinery: workloads and pipeline invocation.

The paper evaluates on square brightness planes from 256x256 up to
4096x4096 (8192x8192 in Fig. 14's text).  The simulated timing model is
content-independent, so the *times* below depend only on the image size and
configuration; the workloads still produce real pixels so every experiment
also validates the output image against the CPU baseline as it runs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ValidationError
from ..obs import RunContext
from ..types import Image, SharpnessParams
from ..util import images as imgs

#: Named workload generators (size, seed) -> plane.
WORKLOADS: dict[str, Callable[[int, int], np.ndarray]] = {
    "natural": lambda size, seed: imgs.natural_like(size, size, seed=seed),
    "text": lambda size, seed: imgs.text_like(size, size, seed=seed),
    "checker": lambda size, seed: imgs.checkerboard(size, size),
    "noise": lambda size, seed: imgs.noise(size, size, seed=seed),
    "gradient": lambda size, seed: imgs.gradient(size, size),
    "blobs": lambda size, seed: imgs.gaussian_blobs(size, size, seed=seed),
    "steps": lambda size, seed: imgs.step_edges(size, size),
}

#: Image sizes of Fig. 12/13 (Fig. 14 additionally cites 8192x8192).
PAPER_SIZES = (256, 512, 1024, 2048, 4096)

#: Default sharpening parameters used across all experiments.
DEFAULT_PARAMS = SharpnessParams()


def make_image(size: int, workload: str = "natural", seed: int = 0) -> Image:
    """Build a validated square test image."""
    try:
        gen = WORKLOADS[workload]
    except KeyError:
        raise ValidationError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(WORKLOADS)}"
        ) from None
    return Image.from_array(gen(size, seed))


def experiment_context(experiment: str, **meta) -> RunContext:
    """A quiet :class:`~repro.obs.RunContext` for one experiment run.

    Experiments run many pipeline invocations back to back, so the logger
    is set to ``warning`` (per-run info lines would drown the report); the
    metrics registry and tracer are fully live — fraction reports are
    computed from the registry, and callers can export the trace/metrics of
    any experiment run.
    """
    return RunContext.create(
        run_id=experiment, log_level="warning", meta=dict(meta)
    )


def run_pipeline(version: str, image: Image, *,
                 params: SharpnessParams = DEFAULT_PARAMS,
                 device=None, cpu=None, obs: RunContext | None = None):
    """Run one pipeline version (``cpu`` / ``base`` / ``optimized``).

    The pipeline is labelled with ``version`` in the obs sinks, so stage
    fractions for it can be read back with
    ``obs.stage_fractions(version)``.  Returns the pipeline result.
    """
    from ..core import BASE, OPTIMIZED, GPUPipeline
    from ..cpu import CPUPipeline
    from ..simgpu.device import I5_3470, W8000

    device = device or W8000
    cpu = cpu or I5_3470
    if version == "cpu":
        return CPUPipeline(params, cpu, obs=obs, label="cpu").run(image)
    try:
        flags = {"base": BASE, "optimized": OPTIMIZED}[version]
    except KeyError:
        raise ValidationError(
            f"unknown pipeline version {version!r}; expected "
            f"'cpu', 'base' or 'optimized'"
        ) from None
    pipe = GPUPipeline(flags, params, device, cpu, obs=obs, label=version)
    return pipe.run(image)


def check_against_cpu(final_gpu: np.ndarray, final_cpu: np.ndarray,
                      *, context: str) -> None:
    """Assert a GPU run's output matches the CPU baseline's."""
    if final_gpu.shape != final_cpu.shape:
        raise ValidationError(
            f"{context}: shape mismatch {final_gpu.shape} vs "
            f"{final_cpu.shape}"
        )
    err = float(np.max(np.abs(final_gpu - final_cpu)))
    if err > 1e-6:
        raise ValidationError(
            f"{context}: GPU output deviates from CPU baseline by {err}"
        )
