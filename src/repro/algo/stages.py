"""Canonical vectorized implementations of the sharpness stages.

The geometry and interpretation decisions are documented in DESIGN.md
section 3; the docstrings below restate the exact contracts that all other
implementations (scalar golden reference, simulated-GPU kernels) must honour.

All functions take and return ``float64`` arrays; none of them mutates its
inputs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..types import FLOAT, SCALE, SharpnessParams, validate_plane

# ---------------------------------------------------------------------------
# Predefined parameter matrices (DESIGN.md section 3)
# ---------------------------------------------------------------------------

#: 4x2 upscale parameter matrix: row ``k`` holds the 2-tap interpolation
#: weights for phase ``k`` of the x4 body upscale (``P @ D @ P.T`` form of
#: Fig. 5).  Rows sum to 1, so constant images are preserved.
UPSCALE_P = np.array(
    [
        [7.0 / 8.0, 1.0 / 8.0],
        [5.0 / 8.0, 3.0 / 8.0],
        [3.0 / 8.0, 5.0 / 8.0],
        [1.0 / 8.0, 7.0 / 8.0],
    ],
    dtype=FLOAT,
)

#: 1-D border interpolation weights: position ``4c + k`` of an upscaled
#: border line blends downscaled samples ``c`` and ``c + 1`` with weights
#: ``BORDER_WEIGHTS[k]``.  ``k == 0`` lands exactly on sample ``c``.
BORDER_WEIGHTS = np.array(
    [
        [1.0, 0.0],
        [3.0 / 4.0, 1.0 / 4.0],
        [1.0 / 2.0, 1.0 / 2.0],
        [1.0 / 4.0, 3.0 / 4.0],
    ],
    dtype=FLOAT,
)

#: Sobel convolution masks (Fig. 7).  Signs are irrelevant after the absolute
#: value; these are the classical kernels.
SOBEL_GX = np.array(
    [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]], dtype=FLOAT
)
SOBEL_GY = np.array(
    [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]], dtype=FLOAT
)


def _check_plane(src: np.ndarray, name: str = "src") -> np.ndarray:
    arr = np.asarray(src, dtype=FLOAT)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    h, w = arr.shape
    if h % SCALE or w % SCALE:
        raise ValidationError(
            f"{name} sides must be divisible by {SCALE}, got {h}x{w}"
        )
    return arr


# ---------------------------------------------------------------------------
# Stage 1: downscale
# ---------------------------------------------------------------------------


def downscale(src: np.ndarray) -> np.ndarray:
    """Mean-pool the plane with non-overlapping 4x4 blocks (Fig. 2).

    ``out[i, j] = mean(src[4i:4i+4, 4j:4j+4])``; output shape is
    ``(H/4, W/4)``.
    """
    arr = _check_plane(src)
    h, w = arr.shape
    blocks = arr.reshape(h // SCALE, SCALE, w // SCALE, SCALE)
    return blocks.sum(axis=(1, 3)) / FLOAT(SCALE * SCALE)


# ---------------------------------------------------------------------------
# Stage 2: upscale (border + body)
# ---------------------------------------------------------------------------


def upscale_border_line(line: np.ndarray, out_len: int) -> np.ndarray:
    """Upscale one downscaled border line to length ``out_len`` (Fig. 3).

    Sample ``c`` lands at position ``4c``; the three vacancies after it are
    interpolated from samples ``c`` and ``c + 1`` with
    :data:`BORDER_WEIGHTS`; the last three positions (which have no right
    neighbour) are copied from position ``out_len - 4``.
    """
    d = np.asarray(line, dtype=FLOAT)
    if d.ndim != 1:
        raise ValidationError(f"border line must be 1-D, got ndim={d.ndim}")
    n = d.shape[0]
    if out_len != SCALE * n:
        raise ValidationError(
            f"out_len must be {SCALE}*len(line)={SCALE * n}, got {out_len}"
        )
    out = np.empty(out_len, dtype=FLOAT)
    left = d[:-1]
    right = d[1:]
    out[0::SCALE] = d
    for k in range(1, SCALE):
        wl, wr = BORDER_WEIGHTS[k]
        out[k : out_len - SCALE : SCALE][: n - 1] = wl * left + wr * right
    out[out_len - 3 :] = out[out_len - SCALE]
    return out


def _interp_body_axis0(d: np.ndarray) -> np.ndarray:
    """Interpolate along axis 0: (n, m) -> (4*(n-1), m) using UPSCALE_P."""
    n, m = d.shape
    a = d[:-1]
    b = d[1:]
    out = np.empty((SCALE * (n - 1), m), dtype=FLOAT)
    for k in range(SCALE):
        wl, wr = UPSCALE_P[k]
        out[k::SCALE] = wl * a + wr * b
    return out


def upscale_body(down: np.ndarray) -> np.ndarray:
    """Upscale the body region (Fig. 4/5).

    Every 2x2 block of ``down`` (stride 1) produces the 4x4 block
    ``P @ D2x2 @ P.T`` of the output (stride 4).  The returned array has
    shape ``(H - 4, W - 4)`` and belongs at ``up[2:H-2, 2:W-2]``.

    The computation is separable: interpolate rows first, then columns,
    which is algebraically identical to the ``P @ D @ P.T`` form.
    """
    d = np.asarray(down, dtype=FLOAT)
    if d.ndim != 2 or d.shape[0] < 2 or d.shape[1] < 2:
        raise ValidationError(
            f"downscaled matrix must be 2-D with sides >= 2, got {d.shape}"
        )
    rows = _interp_body_axis0(d)
    return _interp_body_axis0(rows.T).T


def upscale_border_apply(up: np.ndarray, down: np.ndarray) -> None:
    """Write the border construction of Fig. 3 into ``up`` in place.

    Assembly order is canonical (DESIGN.md section 3) so that every
    implementation produces identical corners:

    1. first border row duplicated into rows 0 and 1;
    2. last border row duplicated into rows H-2 and H-1;
    3. first border column duplicated into columns 0 and 1;
    4. last border column duplicated into columns W-2 and W-1;
    5. bottom-right 2x2 corner overwritten with ``up[H-3, W-1]``.

    Step 5 is kept for faithfulness to the paper's description, but with
    :func:`upscale_border_line`'s copy rule it is provably redundant: the
    cells it writes already hold ``down[-1, -1]`` (the test suite asserts
    this), which is what lets the GPU border kernel run the four lines in
    parallel without a cross-workgroup ordering hazard.
    """
    d = np.asarray(down, dtype=FLOAT)
    nr, nc = d.shape
    h, w = SCALE * nr, SCALE * nc
    if up.shape != (h, w):
        raise ValidationError(
            f"upscaled buffer shape {up.shape} does not match {SCALE}x "
            f"the downscaled shape {d.shape}"
        )
    row0 = upscale_border_line(d[0], w)
    up[0] = row0
    up[1] = row0
    rowl = upscale_border_line(d[nr - 1], w)
    up[h - 2] = rowl
    up[h - 1] = rowl

    col0 = upscale_border_line(d[:, 0], h)
    up[:, 0] = col0
    up[:, 1] = col0
    coll = upscale_border_line(d[:, nc - 1], h)
    up[:, w - 2] = coll
    up[:, w - 1] = coll

    up[h - 2 :, w - 2 :] = up[h - 3, w - 1]


def upscale(down: np.ndarray) -> np.ndarray:
    """Full upscale: body (``up[2:H-2, 2:W-2]``) plus the Fig. 3 border."""
    d = np.asarray(down, dtype=FLOAT)
    nr, nc = d.shape
    h, w = SCALE * nr, SCALE * nc
    up = np.empty((h, w), dtype=FLOAT)
    up[2 : h - 2, 2 : w - 2] = upscale_body(d)
    upscale_border_apply(up, d)
    return up


# ---------------------------------------------------------------------------
# Stage 3: difference matrix
# ---------------------------------------------------------------------------


def perror(src: np.ndarray, upscaled: np.ndarray) -> np.ndarray:
    """Difference matrix ``pError = original - upscaled``."""
    a = np.asarray(src, dtype=FLOAT)
    b = np.asarray(upscaled, dtype=FLOAT)
    if a.shape != b.shape:
        raise ValidationError(
            f"shape mismatch: original {a.shape} vs upscaled {b.shape}"
        )
    return a - b


# ---------------------------------------------------------------------------
# Stage 4a: Sobel
# ---------------------------------------------------------------------------


def sobel(src: np.ndarray) -> np.ndarray:
    """Sobel edge magnitude ``|Gx| + |Gy|`` with a zero border (Fig. 6/7)."""
    arr = _check_plane(src)
    h, w = arr.shape
    out = np.zeros((h, w), dtype=FLOAT)
    # 3x3 neighbourhood views over the body region.
    c = arr[1 : h - 1, 1 : w - 1]  # noqa: F841  (kept for symmetry/clarity)
    nw = arr[0 : h - 2, 0 : w - 2]
    n = arr[0 : h - 2, 1 : w - 1]
    ne = arr[0 : h - 2, 2:w]
    wv = arr[1 : h - 1, 0 : w - 2]
    ev = arr[1 : h - 1, 2:w]
    sw = arr[2:h, 0 : w - 2]
    s = arr[2:h, 1 : w - 1]
    se = arr[2:h, 2:w]
    gx = (ne + 2.0 * ev + se) - (nw + 2.0 * wv + sw)
    gy = (sw + 2.0 * s + se) - (nw + 2.0 * n + ne)
    out[1 : h - 1, 1 : w - 1] = np.abs(gx) + np.abs(gy)
    return out


# ---------------------------------------------------------------------------
# Stage 4b: reduction
# ---------------------------------------------------------------------------


def reduce_sum(values: np.ndarray) -> float:
    """Total of all elements (the quantity the GPU tree reduction computes)."""
    return float(np.asarray(values, dtype=FLOAT).sum())


def reduce_mean(values: np.ndarray) -> float:
    """Arithmetic mean of all elements of ``values``."""
    arr = np.asarray(values, dtype=FLOAT)
    if arr.size == 0:
        raise ValidationError("cannot reduce an empty array")
    return reduce_sum(arr) / float(arr.size)


# ---------------------------------------------------------------------------
# Stage 4c: brightness strength + preliminary sharpened matrix
# ---------------------------------------------------------------------------


def strength_map(
    p_edge: np.ndarray, edge_mean: float, params: SharpnessParams
) -> np.ndarray:
    """Per-pixel brightness-strength factor (DESIGN.md section 3).

    ``strength = clamp(gain * (pEdge / mean)**gamma, 0, strength_max)``.
    A non-positive mean (flat image) yields an all-zero map: no edges, no
    sharpening.  This is the exponentiation-heavy step the paper calls the
    "calculation of the strength matrix".
    """
    edge = np.asarray(p_edge, dtype=FLOAT)
    if edge_mean <= 0.0:
        return np.zeros_like(edge)
    norm = edge / FLOAT(edge_mean)
    return np.clip(params.gain * norm**FLOAT(params.gamma), 0.0,
                   params.strength_max)


def preliminary_sharpen(
    upscaled: np.ndarray, p_error: np.ndarray, strength: np.ndarray
) -> np.ndarray:
    """Preliminary sharpened matrix: ``upscaled + strength * pError``."""
    u = np.asarray(upscaled, dtype=FLOAT)
    e = np.asarray(p_error, dtype=FLOAT)
    s = np.asarray(strength, dtype=FLOAT)
    if not (u.shape == e.shape == s.shape):
        raise ValidationError(
            f"shape mismatch: upscaled {u.shape}, pError {e.shape}, "
            f"strength {s.shape}"
        )
    return u + s * e


# ---------------------------------------------------------------------------
# Stage 4d: overshoot control
# ---------------------------------------------------------------------------


def _neighborhood_minmax(src: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """3x3 min and max over the body region (shape ``(H-2, W-2)`` each)."""
    h, w = src.shape
    views = [
        src[di : h - 2 + di, dj : w - 2 + dj]
        for di in range(3)
        for dj in range(3)
    ]
    mn = views[0].copy()
    mx = views[0].copy()
    for v in views[1:]:
        np.minimum(mn, v, out=mn)
        np.maximum(mx, v, out=mx)
    return mn, mx


def overshoot_control(
    preliminary: np.ndarray, src: np.ndarray, params: SharpnessParams
) -> np.ndarray:
    """Overshoot control (Fig. 8) producing the final sharpened plane.

    Body pixels are compared against the 3x3 min/max of the *original*
    image; overshoots are blended back with the ``overshoot`` tuning factor
    and the result clamped to [0, 255].  Border rows/columns are copied from
    the preliminary matrix (and clamped so the output is a valid image —
    interpretation documented in DESIGN.md).
    """
    p = np.asarray(preliminary, dtype=FLOAT)
    o = np.asarray(src, dtype=FLOAT)
    if p.shape != o.shape:
        raise ValidationError(
            f"shape mismatch: preliminary {p.shape} vs original {o.shape}"
        )
    h, w = p.shape
    osc = FLOAT(params.overshoot)
    final = np.clip(p, 0.0, 255.0)

    mn, mx = _neighborhood_minmax(o)
    body = p[1 : h - 1, 1 : w - 1]
    over = body > mx
    under = body < mn
    osc_max = np.minimum(mx + osc * (body - mx), 255.0)
    osc_min = np.maximum(mn - osc * (mn - body), 0.0)
    result = np.clip(body, 0.0, 255.0)
    result = np.where(over, osc_max, result)
    result = np.where(under, osc_min, result)
    final[1 : h - 1, 1 : w - 1] = result
    return final


# ---------------------------------------------------------------------------
# Full reference pipeline
# ---------------------------------------------------------------------------


def sharpen(
    src: np.ndarray, params: SharpnessParams | None = None
) -> dict[str, np.ndarray | float]:
    """Run the whole sharpness pipeline; return all intermediates.

    Returns a dict with keys ``downscaled``, ``upscaled``, ``p_error``,
    ``p_edge``, ``edge_mean``, ``strength``, ``preliminary``, ``final``.
    """
    params = params or SharpnessParams()
    arr = validate_plane(src)
    down = downscale(arr)
    up = upscale(down)
    err = perror(arr, up)
    edge = sobel(arr)
    edge_mean = reduce_mean(edge)
    strength = strength_map(edge, edge_mean, params)
    prelim = preliminary_sharpen(up, err, strength)
    final = overshoot_control(prelim, arr, params)
    return {
        "downscaled": down,
        "upscaled": up,
        "p_error": err,
        "p_edge": edge,
        "edge_mean": edge_mean,
        "strength": strength,
        "preliminary": prelim,
        "final": final,
    }
