"""Canonical, vectorized definitions of every sharpness stage.

This package is the single source of truth for the algorithm's *semantics*.
The CPU baseline (:mod:`repro.cpu`) and the functional path of every
simulated-GPU kernel (:mod:`repro.kernels`) delegate to these functions, so
that any two pipeline configurations produce bit-identical images; the scalar
golden reference in :mod:`repro.cpu.naive` is an independent implementation
used to cross-check them.
"""

from .stages import (
    BORDER_WEIGHTS,
    UPSCALE_P,
    downscale,
    overshoot_control,
    perror,
    preliminary_sharpen,
    reduce_mean,
    reduce_sum,
    sharpen,
    sobel,
    strength_map,
    upscale,
    upscale_body,
    upscale_border_apply,
    upscale_border_line,
)

__all__ = [
    "BORDER_WEIGHTS",
    "UPSCALE_P",
    "downscale",
    "overshoot_control",
    "perror",
    "preliminary_sharpen",
    "reduce_mean",
    "reduce_sum",
    "sharpen",
    "sobel",
    "strength_map",
    "upscale",
    "upscale_body",
    "upscale_border_apply",
    "upscale_border_line",
]
