"""Colour support: sharpen the brightness plane of an RGB image.

The paper processes "the brightness value" of the image — the standard
practice for sharpening colour content: convert to YCbCr, sharpen the luma
plane, leave chroma untouched (sharpening chroma amplifies colour fringing),
then convert back.  This module provides BT.601 full-range conversions and a
``sharpen_rgb`` helper that routes the luma plane through any pipeline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ValidationError
from ..types import FLOAT, SharpnessParams
from .stages import sharpen

# BT.601 full-range luma/chroma coefficients.
_KR, _KG, _KB = 0.299, 0.587, 0.114


def _check_rgb(rgb: np.ndarray) -> np.ndarray:
    arr = np.asarray(rgb, dtype=FLOAT)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValidationError(
            f"expected an (H, W, 3) RGB array, got shape {arr.shape}"
        )
    return arr


def rgb_to_ycbcr(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
    """Split an RGB image into full-range Y, Cb, Cr planes (BT.601)."""
    arr = _check_rgb(rgb)
    r, g, b = arr[..., 0], arr[..., 1], arr[..., 2]
    y = _KR * r + _KG * g + _KB * b
    cb = 128.0 + (b - y) * (0.5 / (1.0 - _KB))
    cr = 128.0 + (r - y) * (0.5 / (1.0 - _KR))
    return y, cb, cr


def ycbcr_to_rgb(y: np.ndarray, cb: np.ndarray,
                 cr: np.ndarray) -> np.ndarray:
    """Recombine Y, Cb, Cr planes into an RGB image (clamped to [0,255])."""
    y = np.asarray(y, dtype=FLOAT)
    cb = np.asarray(cb, dtype=FLOAT) - 128.0
    cr = np.asarray(cr, dtype=FLOAT) - 128.0
    if not (y.shape == cb.shape == cr.shape):
        raise ValidationError(
            f"plane shape mismatch: Y {y.shape}, Cb {cb.shape}, "
            f"Cr {cr.shape}"
        )
    r = y + cr * (2.0 - 2.0 * _KR)
    b = y + cb * (2.0 - 2.0 * _KB)
    g = (y - _KR * r - _KB * b) / _KG
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(rgb, 0.0, 255.0)


#: A luma-plane sharpener: plane in, sharpened plane out.
LumaSharpener = Callable[[np.ndarray], np.ndarray]


def sharpen_rgb(rgb: np.ndarray, params: SharpnessParams | None = None,
                *, luma_sharpener: LumaSharpener | None = None
                ) -> np.ndarray:
    """Sharpen an RGB image through its luma plane.

    ``luma_sharpener`` defaults to the canonical CPU pipeline; pass e.g.
    ``lambda y: GPUPipeline(OPTIMIZED, params).run(y).final`` to route the
    luma plane through the simulated GPU instead.
    """
    params = params or SharpnessParams()
    if luma_sharpener is None:
        def luma_sharpener(plane: np.ndarray) -> np.ndarray:
            return sharpen(plane, params)["final"]  # type: ignore[index]

    y, cb, cr = rgb_to_ycbcr(rgb)
    y_sharp = luma_sharpener(y)
    if np.asarray(y_sharp).shape != y.shape:
        raise ValidationError(
            "luma sharpener changed the plane shape: "
            f"{np.asarray(y_sharp).shape} != {y.shape}"
        )
    return ycbcr_to_rgb(y_sharp, cb, cr)
