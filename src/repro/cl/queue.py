"""In-order command queue of the simulated host API.

Mirrors the subset of ``clEnqueue*`` the paper's host code uses:

* ``enqueue_write_buffer`` / ``enqueue_read_buffer`` — explicit bulk copies
  (the read/write transfer mode of section V.A);
* ``enqueue_map_buffer`` / ``enqueue_unmap`` — the map/unmap mode;
* ``enqueue_write_buffer_rect`` — strided write used to pad the original
  matrix during the transfer itself (section V.A);
* ``enqueue_nd_range`` — kernel launch (functional or emulated body, priced
  by the cost model);
* ``finish`` — ``clFinish`` host synchronization (the overhead the paper's
  "Eliminate Global Synchronization" optimization removes);
* ``host_step`` — CPU-side work interleaved with the queue (border /
  reduction stage 2 on the host), so the timeline covers the whole pipeline.

The queue is in-order and non-overlapping, matching the paper's description
that kernels "have to be executed serially through global synchronization".
"""

from __future__ import annotations


import numpy as np

from ..errors import InvalidBufferError, MapError, QueueError
from ..obs.runctx import NULL_CONTEXT
from ..simgpu.costmodel import kernel_time
from ..simgpu.emulator import run_kernel
from .buffer import Buffer
from .context import MODE_DRYRUN, MODE_EMULATE
from .kernel import Kernel


class CommandQueue:
    """An in-order command queue bound to a context.

    ``obs`` (a :class:`~repro.obs.RunContext`) makes every enqueued command
    observable: a debug log line per command, ``repro_cl_commands_total`` /
    ``repro_cl_transfer_bytes_total`` counters, and a per-kernel simulated
    duration histogram ``repro_cl_kernel_seconds``.
    """

    def __init__(self, context, obs=None) -> None:
        self.context = context
        self.obs = obs or NULL_CONTEXT
        self._released = False
        self._pending_maps: dict[int, tuple[Buffer, np.ndarray, str]] = {}
        #: Bytes moved per direction over this queue's lifetime, kept
        #: regardless of observability (execution-plan capture reads it).
        self.transfer_bytes: dict[str, int] = {"h2d": 0, "d2h": 0}

    # -- internals -----------------------------------------------------------

    def _check_alive(self) -> None:
        if self._released:
            raise QueueError("command queue used after release")

    def _check_buffer(self, buf: Buffer) -> None:
        if not isinstance(buf, Buffer):
            raise InvalidBufferError(
                f"expected a cl.Buffer, got {type(buf).__name__}"
            )
        buf.check_context(self.context)

    def _maybe_fault(self, site: str, detail: str) -> None:
        """Consult the run's fault plan (``obs.faults``) at this site.

        Fires *before* the command's side effects so an injected failure
        leaves buffers, the timeline, and transfer totals untouched — a
        retried command replays cleanly.
        """
        faults = self.obs.faults
        if faults is not None:
            faults.check(site, self.obs, detail=detail)

    def _record(self, name: str, kind: str, duration: float,
                stage: str) -> None:
        self.context.timeline.record(name, kind, duration, stage=stage)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "repro_cl_commands_total", "Enqueued commands by kind",
                ("kind",),
            ).labels(kind=kind).inc()
            self.obs.log.debug(
                "cl.cmd", name=name, kind=kind, stage=stage,
                sim_us=duration * 1e6,
            )

    def _note_transfer(self, direction: str, nbytes: int) -> None:
        self.transfer_bytes[direction] += nbytes
        if self.obs.enabled:
            self.obs.metrics.counter(
                "repro_cl_transfer_bytes_total",
                "Host<->device bytes moved over the simulated PCI-E link",
                ("direction",),
            ).labels(direction=direction).inc(nbytes)

    def release(self) -> None:
        self._released = True

    def reset(self) -> None:
        """Recycle the queue for another frame (buffer-pool reuse).

        Drops any map state left pending by an aborted frame; the timeline
        and transfer totals keep accumulating, as they would on a real
        long-lived command queue.
        """
        self._check_alive()
        for buf, _, _ in list(self._pending_maps.values()):
            if buf.mem.mapped:
                buf.end_map()
        self._pending_maps.clear()

    # -- explicit transfers (read/write mode) --------------------------------

    def enqueue_write_buffer(self, buf: Buffer, host: np.ndarray,
                             *, stage: str = "transfer") -> None:
        """Bulk host->device copy (``clEnqueueWriteBuffer``)."""
        self._check_alive()
        self._check_buffer(buf)
        self._maybe_fault("transfer", f"write:{buf.name}")
        buf.mem.write(np.asarray(host))
        duration = self.context.device.pcie.rw_time(buf.nbytes)
        self._note_transfer("h2d", buf.nbytes)
        self._record(f"write:{buf.name}", "transfer", duration, stage)

    def enqueue_read_buffer(self, buf: Buffer,
                            *, stage: str = "transfer") -> np.ndarray:
        """Bulk device->host copy (``clEnqueueReadBuffer``)."""
        self._check_alive()
        self._check_buffer(buf)
        self._maybe_fault("transfer", f"read:{buf.name}")
        host = buf.mem.read()
        duration = self.context.device.pcie.rw_time(buf.nbytes)
        self._note_transfer("d2h", buf.nbytes)
        self._record(f"read:{buf.name}", "transfer", duration, stage)
        return host

    def enqueue_read_region_bytes(self, buf: Buffer, nbytes: int,
                                  *, stage: str = "transfer") -> np.ndarray:
        """Read only the first ``nbytes`` worth of elements (partial read).

        Used for the reduction's intermediate results: only the stage-1
        partial sums come back to the host, not the whole buffer.
        """
        self._check_alive()
        self._check_buffer(buf)
        self._maybe_fault("transfer", f"read-part:{buf.name}")
        if nbytes < 0 or nbytes > buf.nbytes:
            raise InvalidBufferError(
                f"{buf.name}: partial read of {nbytes} bytes from a "
                f"{buf.nbytes}-byte buffer"
            )
        n_elements = nbytes // buf.mem.transfer_itemsize
        host = buf.mem.read().ravel()[:n_elements].copy()
        duration = self.context.device.pcie.rw_time(nbytes)
        self._note_transfer("d2h", nbytes)
        self._record(f"read-part:{buf.name}", "transfer", duration, stage)
        return host

    # -- map/unmap mode -------------------------------------------------------

    def enqueue_map_buffer(self, buf: Buffer, *, write: bool,
                           stage: str = "transfer") -> np.ndarray:
        """Map a buffer into host memory (``clEnqueueMapBuffer``).

        For reads the on-demand transfer is charged at map time and the
        returned array holds the data.  For writes a staging array is
        returned; the transfer is charged when :meth:`enqueue_unmap` makes
        the data visible to the device.
        """
        self._check_alive()
        self._check_buffer(buf)
        self._maybe_fault("transfer", f"map:{buf.name}")
        buf.begin_map()
        if write:
            staging = np.zeros(buf.shape, dtype=buf.data.dtype)
            self._pending_maps[id(buf)] = (buf, staging, stage)
            return staging
        duration = self.context.device.pcie.map_time(buf.nbytes)
        self._note_transfer("d2h", buf.nbytes)
        self._record(f"map-read:{buf.name}", "transfer", duration, stage)
        self._pending_maps[id(buf)] = (buf, None, stage)
        return buf.mem.read()

    def enqueue_unmap(self, buf: Buffer, mapped: np.ndarray | None = None,
                      *, stage: str = "transfer") -> None:
        """Unmap (``clEnqueueUnmapMemObject``); commits pending writes."""
        self._check_alive()
        self._check_buffer(buf)
        try:
            _, staging, map_stage = self._pending_maps.pop(id(buf))
        except KeyError:
            raise MapError(f"{buf.name}: unmap without map") from None
        buf.end_map()
        if staging is not None:
            source = mapped if mapped is not None else staging
            buf.mem.write(np.asarray(source))
            duration = self.context.device.pcie.map_time(buf.nbytes)
            self._note_transfer("h2d", buf.nbytes)
            self._record(
                f"unmap-write:{buf.name}", "transfer", duration,
                stage if stage != "transfer" else map_stage,
            )

    # -- strided rect write ----------------------------------------------------

    def enqueue_write_buffer_rect(self, buf: Buffer, host: np.ndarray,
                                  dst_origin: tuple[int, int],
                                  *, stage: str = "transfer") -> None:
        """Write a 2-D host region into a sub-rectangle of a 2-D buffer.

        The simulated ``clEnqueueWriteBufferRect``: this is how the pipeline
        pads the original matrix *during* the transfer instead of copying it
        on the CPU first (section V.A).
        """
        self._check_alive()
        self._check_buffer(buf)
        self._maybe_fault("transfer", f"write-rect:{buf.name}")
        host = np.asarray(host)
        if host.ndim != 2 or len(buf.shape) != 2:
            raise InvalidBufferError(
                "write_buffer_rect requires 2-D host data and buffer"
            )
        r0, c0 = dst_origin
        rows, cols = host.shape
        if r0 < 0 or c0 < 0 or r0 + rows > buf.shape[0] \
                or c0 + cols > buf.shape[1]:
            raise InvalidBufferError(
                f"{buf.name}: rect {host.shape} at origin {dst_origin} "
                f"exceeds buffer {buf.shape}"
            )
        buf.data[r0:r0 + rows, c0:c0 + cols] = host
        nbytes = host.size * buf.mem.transfer_itemsize
        duration = self.context.device.pcie.rect_time(nbytes, rows)
        self._note_transfer("h2d", nbytes)
        self._record(f"write-rect:{buf.name}", "transfer", duration, stage)

    # -- kernel launch ----------------------------------------------------------

    def enqueue_nd_range(self, kernel: Kernel,
                         global_size: tuple[int, ...],
                         local_size: tuple[int, ...],
                         *, stage: str = "") -> None:
        """Launch a kernel over an NDRange (``clEnqueueNDRangeKernel``)."""
        self._check_alive()
        self._maybe_fault("kernel", f"launch:{kernel.name}")
        for buf in kernel.buffers():
            self._check_buffer(buf)
            if buf.mem.mapped:
                raise MapError(
                    f"{buf.name}: kernel {kernel.name} launched while the "
                    f"buffer is mapped to the host"
                )
        global_size = tuple(int(g) for g in global_size)
        local_size = tuple(int(loc) for loc in local_size)
        spec = kernel.spec
        device = self.context.device

        cost = spec.cost(device, global_size, local_size, kernel.args)
        duration = kernel_time(cost, device)

        if self.context.mode == MODE_DRYRUN:
            pass  # time-only: skip the kernel body
        elif self.context.mode == MODE_EMULATE and spec.emulator is not None:
            local_decl = (
                spec.local_mem(local_size, kernel.args)
                if spec.local_mem
                else {}
            )
            run_kernel(
                spec.emulator, global_size, local_size,
                kernel.emulator_args(), device=device, local_mem=local_decl,
                obs=self.obs,
            )
        else:
            spec.functional(global_size, local_size,
                            *kernel.functional_args())
        if self.obs.enabled:
            self.obs.metrics.histogram(
                "repro_cl_kernel_seconds",
                "Simulated kernel duration per dispatched kernel (seconds)",
                ("kernel",),
            ).labels(kernel=kernel.name).observe(duration)
        self._record(
            f"kernel:{kernel.name}", "kernel", duration,
            stage or kernel.name,
        )

    # -- synchronization and host work -------------------------------------------

    def finish(self, *, stage: str = "sync") -> None:
        """``clFinish``: block the host until the queue drains."""
        self._check_alive()
        self._record("clFinish", "sync", self.context.device.sync_overhead_s,
                     stage)

    def host_step(self, name: str, duration: float, *, stage: str) -> None:
        """Record CPU-side work interleaved with the queue."""
        self._check_alive()
        self._record(name, "host", duration, stage)
