"""OpenCL-flavoured host API bound to the simulated device.

The classes mirror the OpenCL objects the paper's host code manipulates —
``Context``, ``CommandQueue``, ``Buffer``, ``Program``/``Kernel`` — so the
pipeline in :mod:`repro.core` reads like the paper's implementation: create
buffers, pick a transfer mode (read/write vs map/unmap vs
``WriteBufferRect``), enqueue kernels in order, optionally ``finish()`` after
each one.  All costs are charged to the context's simulated
:class:`~repro.simgpu.profiling.Timeline`.
"""

from .buffer import Buffer
from .context import Context
from .kernel import Kernel, KernelSpec
from .program import Program
from .queue import CommandQueue

__all__ = ["Buffer", "Context", "Kernel", "KernelSpec", "Program",
           "CommandQueue"]
