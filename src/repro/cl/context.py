"""Simulated OpenCL context: owns the device, the timeline, and buffers."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..simgpu.device import DeviceSpec, W8000
from ..simgpu.profiling import Timeline
from .buffer import Buffer

#: Kernel bodies run as whole-array NumPy operations; costs come from the
#: analytic model.  Fast — the default for pipelines and benchmarks.
MODE_FUNCTIONAL = "functional"
#: Kernel bodies run work-item by work-item through the emulator with real
#: barriers/local memory.  Slow — for small-size correctness tests.
MODE_EMULATE = "emulate"
#: Kernel bodies are skipped entirely; only the cost model runs.  The
#: timeline is identical to the functional mode's (costs are
#: content-independent) but pixel outputs are meaningless — for timing
#: studies at sizes where computing real pixels would be wasteful.
MODE_DRYRUN = "dryrun"

_MODES = (MODE_FUNCTIONAL, MODE_EMULATE, MODE_DRYRUN)


class Context:
    """A simulated OpenCL context.

    Parameters
    ----------
    device:
        The simulated device (defaults to the paper's FirePro W8000).
    mode:
        Kernel execution mode, ``"functional"`` or ``"emulate"``.
    """

    def __init__(self, device: DeviceSpec = W8000,
                 mode: str = MODE_FUNCTIONAL) -> None:
        if mode not in _MODES:
            raise ConfigError(f"unknown execution mode {mode!r}; "
                              f"expected one of {_MODES}")
        self.device = device
        self.mode = mode
        self.timeline = Timeline()

    def create_buffer(self, shape: tuple[int, ...], *,
                      dtype=np.float64, transfer_itemsize: int | None = None,
                      name: str | None = None) -> Buffer:
        """Allocate a device buffer (allocation itself is free, as in CL)."""
        return Buffer(self, shape, dtype=dtype,
                      transfer_itemsize=transfer_itemsize, name=name)

    def reset_timeline(self) -> None:
        """Start a fresh timeline (e.g. between pipeline runs)."""
        self.timeline = Timeline()
