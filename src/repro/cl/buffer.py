"""Device buffer object of the simulated host API."""

from __future__ import annotations

import numpy as np

from ..errors import InvalidBufferError, MapError
from ..simgpu.memory import GlobalBuffer


class Buffer:
    """A device-resident buffer created from a :class:`~repro.cl.Context`.

    Thin wrapper over :class:`~repro.simgpu.memory.GlobalBuffer` that ties
    the buffer to its context (cross-context use is an error, as in OpenCL)
    and tracks map state for the map/unmap transfer mode.
    """

    def __init__(self, context, shape: tuple[int, ...], *,
                 dtype=np.float64, transfer_itemsize: int | None = None,
                 name: str | None = None) -> None:
        self.context = context
        self.mem = GlobalBuffer(
            shape, dtype=dtype, transfer_itemsize=transfer_itemsize,
            name=name,
        )

    # -- introspection -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.mem.name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.mem.shape

    @property
    def nbytes(self) -> int:
        return self.mem.nbytes

    @property
    def data(self) -> np.ndarray:
        """Backing array (device memory).  Host code must not touch this
        directly — go through the queue's transfer commands."""
        self.mem._check_alive()
        return self.mem.data

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        self.mem.release()

    def reset(self, *, zero: bool = False) -> None:
        """Recycle the buffer for a new frame (buffer-pool reuse).

        Clears any leftover map state so a pooled buffer never leaks a
        mapping across frames; ``zero=True`` additionally restores the
        freshly-created all-zero contents (pools skip this for buffers the
        next frame fully overwrites).
        """
        self.mem._check_alive()
        if self.mem.mapped:
            self.mem.set_mapped(False)
        if zero:
            self.mem.data[...] = 0

    # -- validation helpers used by the queue --------------------------------

    def check_context(self, context) -> None:
        if context is not self.context:
            raise InvalidBufferError(
                f"{self.name}: used with a foreign context"
            )

    def begin_map(self) -> None:
        if self.mem.mapped:
            raise MapError(f"{self.name}: already mapped")
        self.mem.set_mapped(True)

    def end_map(self) -> None:
        if not self.mem.mapped:
            raise MapError(f"{self.name}: unmap without map")
        self.mem.set_mapped(False)
