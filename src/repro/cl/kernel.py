"""Kernel specification and kernel-instance objects.

A :class:`KernelSpec` is the simulated analogue of compiled OpenCL kernel
source.  It carries up to three faces of the same kernel:

* ``functional`` — a whole-array NumPy implementation, used on the fast path;
* ``emulator`` — an optional per-work-item generator (see
  :mod:`repro.simgpu.emulator`) used to validate the kernel's device-side
  logic (barriers, local memory, vector access patterns) on small inputs;
* ``cost`` — the launch-cost characterization consumed by the timing model.

A :class:`Kernel` binds a spec to concrete arguments (``set_args``, like
``clSetKernelArg``) so a queue can enqueue it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import InvalidKernelArgsError
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from .buffer import Buffer

#: Signature of the functional face: (global_size, local_size, *args) -> None.
FunctionalFn = Callable[..., None]
#: Signature of the cost face:
#: (device, global_size, local_size, args) -> KernelCost.
CostFn = Callable[
    [DeviceSpec, tuple[int, ...], tuple[int, ...], tuple[Any, ...]],
    KernelCost,
]
#: Signature of the local-memory declaration:
#: (local_size, args) -> {name: n_elements}.
LocalMemFn = Callable[[tuple[int, ...], tuple[Any, ...]], dict[str, int]]


@dataclass(frozen=True)
class KernelSpec:
    """Immutable description of one device kernel."""

    name: str
    functional: FunctionalFn
    cost: CostFn
    emulator: Callable[..., Any] | None = None
    local_mem: LocalMemFn | None = None
    arg_names: tuple[str, ...] = field(default=())

    def create(self) -> "Kernel":
        return Kernel(self)


class Kernel:
    """A kernel instance with bound arguments (cl_kernel analogue)."""

    def __init__(self, spec: KernelSpec) -> None:
        self.spec = spec
        self._args: tuple[Any, ...] | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def args(self) -> tuple[Any, ...]:
        if self._args is None:
            raise InvalidKernelArgsError(
                f"kernel {self.name}: enqueued before set_args()"
            )
        return self._args

    def set_args(self, *args: Any) -> "Kernel":
        """Bind arguments; returns self for chaining."""
        if self.spec.arg_names and len(args) != len(self.spec.arg_names):
            raise InvalidKernelArgsError(
                f"kernel {self.name}: expected {len(self.spec.arg_names)} "
                f"args {self.spec.arg_names}, got {len(args)}"
            )
        self._args = args
        return self

    # -- argument marshalling used by the queue ------------------------------

    def functional_args(self) -> tuple[Any, ...]:
        """Buffers become their backing ndarrays; scalars pass through."""
        return tuple(
            a.data if isinstance(a, Buffer) else a for a in self.args
        )

    def emulator_args(self) -> tuple[Any, ...]:
        """Buffers become bounds-checked views; scalars pass through."""
        return tuple(
            a.mem.checked() if isinstance(a, Buffer) else a
            for a in self.args
        )

    def buffers(self) -> list[Buffer]:
        return [a for a in self.args if isinstance(a, Buffer)]
