"""Program object: a named collection of kernel specifications.

The simulated analogue of ``clCreateProgramWithSource`` + ``clBuildProgram``:
a :class:`Program` holds the kernel specs "compiled" for a context and hands
out bindable :class:`~repro.cl.kernel.Kernel` instances by name.
"""

from __future__ import annotations

from ..errors import CLError
from .kernel import Kernel, KernelSpec


class Program:
    """A built program for a context."""

    def __init__(self, context, specs: dict[str, KernelSpec] | list[KernelSpec]) -> None:
        self.context = context
        if isinstance(specs, list):
            specs = {s.name: s for s in specs}
        for name, spec in specs.items():
            if name != spec.name:
                raise CLError(
                    f"program: spec registered under {name!r} but named "
                    f"{spec.name!r}"
                )
        self._specs = dict(specs)

    @property
    def kernel_names(self) -> list[str]:
        return sorted(self._specs)

    def create_kernel(self, name: str) -> Kernel:
        try:
            return self._specs[name].create()
        except KeyError:
            raise CLError(
                f"program has no kernel {name!r}; available: "
                f"{self.kernel_names}"
            ) from None
