"""Unified observability: structured logging, metrics, and tracing.

The three sinks and the :class:`RunContext` that bundles them:

* :mod:`repro.obs.log` — structured, dependency-free logger (logfmt/JSON)
  with bound run-context fields;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  Prometheus-text and JSON export;
* :mod:`repro.obs.trace` — nested host spans with Chrome-trace export that
  can merge simulated :class:`~repro.simgpu.profiling.Timeline` events into
  the same trace file;
* :mod:`repro.obs.runctx` — :class:`RunContext` carrying run id, metadata
  and the three sinks through the CPU and GPU pipelines.

Typical use::

    from repro import GPUPipeline, OPTIMIZED
    from repro.obs import RunContext

    obs = RunContext.create(log_level="debug")
    GPUPipeline(OPTIMIZED, obs=obs).run(image)
    obs.write_trace("run.trace.json")      # host spans + device events
    obs.write_metrics("metrics.prom")      # per-stage histograms etc.

See ``docs/observability.md`` for the full tour.
"""

from .log import LEVELS, Logger, NullLogger
from .metrics import (
    DURATION_BUCKETS,
    HistogramChild,
    MetricFamily,
    MetricsRegistry,
)
from .runctx import (
    NULL_CONTEXT,
    PIPELINE_RUNS,
    PIPELINE_SECONDS,
    STAGE_SECONDS,
    RunContext,
)
from .trace import NullTracer, Span, Tracer

__all__ = [
    "LEVELS",
    "Logger",
    "NullLogger",
    "DURATION_BUCKETS",
    "HistogramChild",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_CONTEXT",
    "PIPELINE_RUNS",
    "PIPELINE_SECONDS",
    "STAGE_SECONDS",
    "RunContext",
    "NullTracer",
    "Span",
    "Tracer",
]
