"""Structured, dependency-free logging for pipeline runs.

A :class:`Logger` emits one machine-parseable record per call — logfmt by
default (``ts=... level=info event=pipeline.complete pipeline=gpu ...``) or
JSON lines — and carries *bound fields* that are repeated on every record,
so a pipeline can bind its run id, flags and image shape once and every
downstream message is attributed automatically::

    log = Logger(level="debug").bind(run=ctx.run_id, pipeline="gpu")
    log.info("pipeline.start", h=1024, w=1024)
    log.debug("cl.cmd", name="kernel:sobel_vec4", us=412.5)

Records below the configured level are dropped with a single integer
comparison, and :class:`NullLogger` (used by disabled run contexts) drops
everything, so instrumented hot paths stay cheap when observability is off.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, IO, Mapping

from ..errors import ValidationError

#: Numeric thresholds, mirroring the stdlib's.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}

#: Output formats.
FORMAT_LOGFMT = "logfmt"
FORMAT_JSON = "json"


def level_number(level: int | str) -> int:
    """Normalize a level name or number to its numeric threshold."""
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def _logfmt_value(value: Any) -> str:
    """Render one logfmt value, quoting only when necessary."""
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if text == "" or any(c in text for c in ' ="\n'):
        text = '"' + text.replace("\\", "\\\\").replace('"', '\\"') \
                         .replace("\n", "\\n") + '"'
    return text


class Logger:
    """A structured logger bound to a set of context fields.

    Parameters
    ----------
    level:
        Minimum level emitted (name or number).
    stream:
        Output stream; defaults to ``sys.stderr`` (resolved at emit time so
        test harnesses that swap ``sys.stderr`` see the records).
    fmt:
        ``"logfmt"`` (default) or ``"json"``.
    fields:
        Fields attached to every record.
    clock:
        Epoch-seconds source (injectable for deterministic tests).
    """

    __slots__ = ("threshold", "_stream", "fmt", "fields", "clock")

    def __init__(self, level: int | str = "info",
                 stream: IO[str] | None = None, fmt: str = FORMAT_LOGFMT,
                 fields: Mapping[str, Any] | None = None,
                 clock=time.time) -> None:
        if fmt not in (FORMAT_LOGFMT, FORMAT_JSON):
            raise ValidationError(
                f"unknown log format {fmt!r}; expected "
                f"{FORMAT_LOGFMT!r} or {FORMAT_JSON!r}"
            )
        self.threshold = level_number(level)
        self._stream = stream
        self.fmt = fmt
        self.fields = dict(fields or {})
        self.clock = clock

    # -- configuration -------------------------------------------------------

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def bind(self, **fields: Any) -> "Logger":
        """Return a child logger with ``fields`` added to every record."""
        child = Logger.__new__(Logger)
        child.threshold = self.threshold
        child._stream = self._stream
        child.fmt = self.fmt
        child.fields = {**self.fields, **fields}
        child.clock = self.clock
        return child

    def enabled_for(self, level: int | str) -> bool:
        return level_number(level) >= self.threshold

    # -- emission ------------------------------------------------------------

    def log(self, level: int, event: str, **fields: Any) -> None:
        if level < self.threshold:
            return
        record = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S",
                                time.gmtime(self.clock())) + "Z",
            "level": _LEVEL_NAMES.get(level, str(level)),
            "event": event,
            **self.fields,
            **fields,
        }
        if self.fmt == FORMAT_JSON:
            line = json.dumps(record, default=str)
        else:
            line = " ".join(
                f"{k}={_logfmt_value(v)}" for k, v in record.items()
            )
        self.stream.write(line + "\n")

    def debug(self, event: str, **fields: Any) -> None:
        self.log(10, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(20, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(30, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(40, event, **fields)


class NullLogger(Logger):
    """A logger that drops everything (disabled observability)."""

    def __init__(self) -> None:
        super().__init__(level=1_000_000)

    def bind(self, **fields: Any) -> "NullLogger":
        return self

    def enabled_for(self, level: int | str) -> bool:
        return False

    def log(self, level: int, event: str, **fields: Any) -> None:
        pass
