"""Counter / gauge / histogram registry with Prometheus and JSON export.

The registry is the single source of truth for a run's quantitative
telemetry: pipelines record per-stage duration histograms, transfer byte
counters and launch counts into it, and the experiment reports (Fig. 13
fractions et al.) are computed *from the registry* rather than from ad-hoc
dicts, so what an experiment prints is exactly what a scrape would see.

Mutations are thread-safe (a single process-wide lock): the batch engine's
worker pipelines record into one shared registry concurrently.

Dependency-free by design: exporters emit the Prometheus text exposition
format (``registry.to_prometheus_text()`` / ``write_prometheus(path)``) and
a JSON document (``to_json()`` / ``write_json(path)``).  File writes are
atomic (temp file + rename) so a crashed run never leaves a truncated
export behind.
"""

from __future__ import annotations

import bisect
import json
import math
import pathlib
import re
import threading
from typing import Any, Iterable, Mapping

from ..errors import ValidationError
from ..util.io import atomic_write_text

#: One process-wide lock guards every mutation (child creation, counter
#: increments, histogram observations): the batch engine's worker threads
#: share a single registry, and the hot operations are far too cheap for
#: finer-grained locking to pay for its complexity.
_LOCK = threading.RLock()

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for simulated durations: decade steps with
#: 2.5/5 subdivisions from 1 us to 10 s, covering every stage time the
#: cost model produces from 256x256 up to 8192x8192.
DURATION_BUCKETS = tuple(
    float(f"{base}e{exp}")
    for exp in range(-6, 1)
    for base in ("1", "2.5", "5")
) + (10.0,)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
                 .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: Mapping[str, str],
                  extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in merged.items()
    )
    return "{" + inner + "}"


class _Child:
    """One labelled time series of a metric family."""

    __slots__ = ("labels",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        self.labels = dict(labels)


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        super().__init__(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter increment must be >= 0, got {amount}"
            )
        with _LOCK:
            self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        super().__init__(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value -= amount


class HistogramChild(_Child):
    """Bucketed counts plus the raw observations (for exact percentiles).

    Prometheus histograms only keep bucket counts; the registry is
    in-process, so keeping the raw samples too costs little and lets
    reports ask for exact percentiles instead of bucket-interpolated ones.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "observations")

    def __init__(self, labels: Mapping[str, str],
                 buckets: tuple[float, ...]) -> None:
        super().__init__(labels)
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)  # per-bucket, not cumulative
        self.sum = 0.0
        self.observations: list[float] = []

    @property
    def count(self) -> int:
        return len(self.observations)

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with _LOCK:
            if idx < len(self.buckets):
                self.bucket_counts[idx] += 1
            self.sum += value
            self.observations.append(value)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def percentile(self, p: float) -> float:
        """Exact ``p``-th percentile (linear interpolation, 0 <= p <= 100)."""
        if not 0.0 <= p <= 100.0:
            raise ValidationError(f"percentile must be in [0, 100], got {p}")
        if not self.observations:
            raise ValidationError("percentile of an empty histogram")
        data = sorted(self.observations)
        if len(data) == 1:
            return data[0]
        rank = p / 100.0 * (len(data) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(data):
            return data[-1]
        return data[lo] + frac * (data[lo + 1] - data[lo])

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.observations else 0.0


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class MetricFamily:
    """A named metric plus all of its labelled children."""

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] | None = None) -> None:
        if not _NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValidationError(f"invalid label name {label!r}")
        if kind == "histogram":
            buckets = tuple(sorted(buckets or DURATION_BUCKETS))
            if not buckets:
                raise ValidationError(f"{name}: histogram needs buckets")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], _Child] = {}

    def labels(self, **labels: str) -> Any:
        """Return (creating if needed) the child for this label set."""
        if set(labels) != set(self.labelnames):
            raise ValidationError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[k]) for k in self.labelnames)
        with _LOCK:
            child = self._children.get(key)
            if child is None:
                label_map = dict(zip(self.labelnames, key))
                if self.kind == "histogram":
                    child = HistogramChild(label_map, self.buckets)
                else:
                    child = _CHILD_TYPES[self.kind](label_map)
                self._children[key] = child
            return child

    @property
    def children(self) -> Iterable[Any]:
        return self._children.values()

    def _default_child(self) -> Any:
        if self.labelnames:
            raise ValidationError(
                f"{self.name} has labels {self.labelnames}; use .labels()"
            )
        return self.labels()

    # Unlabelled convenience API (delegates to the single default child).
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """Create-or-get factory and exporter for metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help: str,
                  labelnames: tuple[str, ...],
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        with _LOCK:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValidationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            family = MetricFamily(name, kind, help, tuple(labelnames),
                                  buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    # -- export --------------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: list[str] = []
        for fam in self._families.values():
            lines.append(f"# HELP {fam.name} {escape_help(fam.help)}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for child in fam.children:
                if fam.kind == "histogram":
                    for bound, cum in child.cumulative_buckets():
                        suffix = _label_suffix(
                            child.labels, {"le": _format_value(bound)}
                        )
                        lines.append(
                            f"{fam.name}_bucket{suffix} {cum}"
                        )
                    base = _label_suffix(child.labels)
                    lines.append(
                        f"{fam.name}_sum{base} {_format_value(child.sum)}"
                    )
                    lines.append(f"{fam.name}_count{base} {child.count}")
                else:
                    suffix = _label_suffix(child.labels)
                    lines.append(
                        f"{fam.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        """Registry contents as a plain JSON-serializable document."""
        out: dict[str, Any] = {}
        for fam in self._families.values():
            series = []
            for child in fam.children:
                if fam.kind == "histogram":
                    series.append({
                        "labels": child.labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": [
                            {"le": b if b != math.inf else "+Inf",
                             "count": c}
                            for b, c in child.cumulative_buckets()
                        ],
                    })
                else:
                    series.append({
                        "labels": child.labels,
                        "value": child.value,
                    })
            out[fam.name] = {
                "type": fam.kind,
                "help": fam.help,
                "series": series,
            }
        return out

    def write_prometheus(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically write the Prometheus text rendering to ``path``."""
        return atomic_write_text(path, self.to_prometheus_text())

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically write the JSON rendering to ``path``."""
        return atomic_write_text(
            path, json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n"
        )
