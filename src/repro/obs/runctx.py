"""Run context: one run id + the three sinks (log, metrics, trace).

A :class:`RunContext` is what pipelines and experiments thread through the
code instead of separate logger/registry/tracer arguments.  It carries the
run id and static metadata (pipeline flags, image shape) and owns the three
sinks, plus the stage-metric conventions shared by every pipeline:

* ``repro_stage_seconds{pipeline,stage}`` — per-stage simulated duration
  histogram (the Fig. 13 raw material);
* ``repro_pipeline_runs_total{pipeline}`` / ``repro_pipeline_simulated_
  seconds{pipeline}`` — run counts and end-to-end simulated times.

``RunContext.disabled()`` (the module's :data:`NULL_CONTEXT`) swaps every
sink for a no-op implementation, so instrumented code paths cost almost
nothing when the caller did not ask for observability — the
``benchmarks/bench_obs_overhead.py`` benchmark holds this to <5%.
"""

from __future__ import annotations

import pathlib
import uuid
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Mapping

from .log import Logger, NullLogger
from .metrics import DURATION_BUCKETS, MetricsRegistry
from .trace import NullTracer, Tracer

#: Metric names shared by every pipeline.
STAGE_SECONDS = "repro_stage_seconds"
PIPELINE_RUNS = "repro_pipeline_runs_total"
PIPELINE_SECONDS = "repro_pipeline_simulated_seconds"


@dataclass
class RunContext:
    """One run's identity, metadata and observability sinks.

    ``faults`` optionally carries a
    :class:`~repro.resilience.faults.FaultPlan`: the simulated runtime's
    fault sites (queue transfers, kernel launches, buffer-pool
    acquisitions, batch workers) consult it on every operation, so one
    context both *injects* the failures and *observes* them (every
    injection lands in ``repro_faults_injected_total{site}``).
    """

    run_id: str
    log: Logger
    metrics: MetricsRegistry
    trace: Tracer
    meta: dict[str, Any] = field(default_factory=dict)
    enabled: bool = True
    #: Optional FaultPlan consulted by the simulated runtime's fault sites
    #: (typed loosely to keep obs import-free of the resilience layer).
    faults: Any = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(cls, run_id: str | None = None, *,
               log_level: int | str = "info",
               log_stream: IO[str] | None = None,
               log_format: str = "logfmt",
               meta: Mapping[str, Any] | None = None,
               faults: Any = None) -> "RunContext":
        """Build an enabled context with fresh sinks."""
        run_id = run_id or uuid.uuid4().hex[:12]
        log = Logger(level=log_level, stream=log_stream,
                     fmt=log_format).bind(run=run_id)
        return cls(run_id=run_id, log=log, metrics=MetricsRegistry(),
                   trace=Tracer(), meta=dict(meta or {}), faults=faults)

    @classmethod
    def disabled(cls) -> "RunContext":
        """A context whose sinks all drop their input."""
        return cls(run_id="disabled", log=NullLogger(),
                   metrics=MetricsRegistry(), trace=NullTracer(),
                   enabled=False)

    # -- conveniences --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        return self.trace.span(name, **attrs)

    def stage_histogram(self):
        """The shared per-stage duration histogram family."""
        return self.metrics.histogram(
            STAGE_SECONDS,
            "Simulated duration per pipeline stage (seconds)",
            ("pipeline", "stage"),
            buckets=DURATION_BUCKETS,
        )

    def observe_stages(self, pipeline: str,
                       stage_seconds: Mapping[str, float],
                       declare: Iterable[str] = ()) -> None:
        """Record one run's per-stage simulated times.

        ``declare`` names stages that must *exist* in the export even when
        this run never executed them (e.g. ``padding`` under
        pad-on-transfer); they get an empty histogram series rather than a
        misleading 0-second observation.
        """
        if not self.enabled:
            return
        hist = self.stage_histogram()
        for stage in declare:
            hist.labels(pipeline=pipeline, stage=stage)
        for stage, seconds in stage_seconds.items():
            hist.labels(pipeline=pipeline, stage=stage).observe(seconds)

    def record_run(self, pipeline: str, simulated_seconds: float) -> None:
        """Count a completed pipeline run and its end-to-end time."""
        if not self.enabled:
            return
        self.metrics.counter(
            PIPELINE_RUNS, "Completed pipeline runs", ("pipeline",)
        ).labels(pipeline=pipeline).inc()
        self.metrics.histogram(
            PIPELINE_SECONDS, "End-to-end simulated pipeline time (seconds)",
            ("pipeline",), buckets=DURATION_BUCKETS,
        ).labels(pipeline=pipeline).observe(simulated_seconds)

    def stage_fractions(self, pipeline: str) -> dict[str, float]:
        """Per-stage share of total time, computed from the registry.

        This is the metrics-registry-backed path behind the Fig.-13-style
        fraction reports: it aggregates the ``repro_stage_seconds`` sums,
        so a report and a metrics scrape can never disagree.
        """
        family = self.metrics.get(STAGE_SECONDS)
        if family is None:
            return {}
        sums = {
            child.labels["stage"]: child.sum
            for child in family.children
            if child.labels.get("pipeline") == pipeline and child.count
        }
        total = sum(sums.values())
        if total <= 0:
            return {stage: 0.0 for stage in sums}
        return {stage: s / total for stage, s in sums.items()}

    # -- export --------------------------------------------------------------

    def write_trace(self, path: str | pathlib.Path) -> pathlib.Path:
        return self.trace.write_chrome_trace(path)

    def write_metrics(self, path: str | pathlib.Path) -> pathlib.Path:
        return self.metrics.write_prometheus(path)


#: Shared disabled context used by pipelines when no ``obs=`` was passed.
NULL_CONTEXT = RunContext.disabled()
