"""Host-side span tracing with Chrome-trace export and Timeline merging.

A :class:`Tracer` records nested wall-clock spans around host code::

    with tracer.span("gpu.run", pipeline="gpu"):
        with tracer.span("gpu.sobel"):
            ...

and exports them in the Chrome trace-event format (open the file at
https://ui.perfetto.dev or chrome://tracing).  The differentiator is
:meth:`Tracer.merge_timeline`: a simulated :class:`~repro.simgpu.profiling.
Timeline` (the device-side record of kernels, DMA transfers and host steps)
is folded into the *same* trace file as a separate process row, so one
Perfetto view shows the real host spans next to the simulated device
activity they caused.

Host spans and simulated events run on different clocks (wall time vs the
simulator's), which Chrome trace handles naturally: each merged timeline
gets its own ``pid`` whose clock starts at zero.

All writes are atomic (temp file + rename) and accept ``str`` or
``pathlib.Path``.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ValidationError
from ..util.io import atomic_write_text

#: pid of the host-span process row in exported traces.
HOST_PID = 1

#: Chrome-trace row per merged simulated event kind (mirrors
#: ``repro.simgpu.profiling._TRACE_ROWS``).
_SIM_ROWS = {"kernel": 1, "transfer": 2, "host": 3, "sync": 4}


@dataclass
class Span:
    """One completed (or open) host span."""

    name: str
    start: float  # seconds since tracer epoch
    end: float | None = None
    parent: "Span | None" = None
    depth: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValidationError(f"span {self.name!r} is still open")
        return self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it was opened."""
        self.args.update(attrs)


class _SpanHandle:
    """Context manager that closes a span and pops the tracer stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span, error=exc_type is not None)
        return False


class Tracer:
    """Collects nested host spans plus merged simulated timelines."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._merged: list[dict] = []
        self._next_pid = HOST_PID + 1

    # -- spans ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer was created."""
        return self._clock() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name, start=self.now(), parent=parent,
            depth=len(self._stack), args=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span, *, error: bool = False) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ValidationError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()
        span.end = self.now()
        if error:
            span.args.setdefault("error", True)

    # -- merging simulated timelines -----------------------------------------

    def merge_timeline(self, timeline, *, label: str = "simulated device",
                       pid: int | None = None) -> int:
        """Fold a simulated ``Timeline`` into this trace as its own process.

        ``timeline`` is anything with an ``events`` list of objects carrying
        ``name`` / ``kind`` / ``start`` / ``duration`` / ``stage``
        (duck-typed so :mod:`repro.obs` does not import the simulator).
        Returns the pid assigned to the merged process row.
        """
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        elif pid == HOST_PID:
            raise ValidationError(
                f"pid {HOST_PID} is reserved for host spans"
            )
        self._merged.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        for kind, tid in _SIM_ROWS.items():
            self._merged.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": kind},
            })
        for e in timeline.events:
            self._merged.append({
                "name": e.name,
                "cat": e.kind,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": pid,
                "tid": _SIM_ROWS.get(e.kind, 9),
                "args": {"stage": e.stage},
            })
        return pid

    # -- export --------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The whole trace in Chrome trace-event format (dict form)."""
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": HOST_PID, "tid": 1,
            "args": {"name": "host"},
        }]
        end_fallback = self.now()
        for span in self.spans:
            end = span.end if span.end is not None else end_fallback
            events.append({
                "name": span.name,
                "cat": "host",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": HOST_PID,
                "tid": 1,
                "args": dict(span.args),
            })
        events.extend(self._merged)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically write the trace as Chrome trace JSON."""
        return atomic_write_text(
            path, json.dumps(self.chrome_trace(), indent=1)
        )


class _NullSpanHandle:
    """Shared no-op span handle for :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    @property
    def span(self) -> "_NullSpanHandle":
        return self


_NULL_SPAN = _NullSpanHandle()


class NullTracer(Tracer):
    """A tracer that records nothing (disabled observability)."""

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:  # type: ignore[override]
        return _NULL_SPAN

    def merge_timeline(self, timeline, *, label: str = "simulated device",
                       pid: int | None = None) -> int:
        return 0
