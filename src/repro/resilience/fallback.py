"""GPU -> CPU graceful degradation, transparent to pipeline callers.

The paper's own evaluation compares the simulated GPU path against a
"well-optimized CPU version" (Fig. 12/13) — which hands us a natural
fallback target.  :class:`FallbackPipeline` wraps a
:class:`~repro.core.pipeline.GPUPipeline` with the full resilience stack:

1. each frame runs the GPU path under a :class:`~.policy.RetryPolicy`
   (transient faults are retried with deterministic backoff, bounded by
   the optional shared :class:`~.policy.RetryBudget` and the per-frame
   :class:`~.policy.Timeout` deadline);
2. a :class:`~.breaker.CircuitBreaker` counts consecutive GPU failures and,
   once tripped, routes frames straight to the CPU pipeline without paying
   the GPU failure latency (a half-open probe recovers the GPU path when
   it heals);
3. when the GPU path is down (breaker open, retries exhausted, or a
   permanent fault), the frame is served by
   :class:`~repro.cpu.CPUPipeline` — the ``repro.cpu.optimized`` stage
   implementations — and the result is flagged ``backend="cpu-fallback"``.

The wrapper returns the same :class:`~repro.core.pipeline.GPUResult` shape
either way (fallback results carry a host-only timeline built from the CPU
cost model), so :class:`~repro.core.stream.StreamProcessor` and
:class:`~repro.core.batch.BatchEngine` consume it unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cpu.pipeline import CPUPipeline
from ..errors import CircuitOpenError, ReproError
from ..obs.runctx import NULL_CONTEXT
from ..simgpu.profiling import Timeline
from .breaker import CircuitBreaker
from .policy import RetryBudget, RetryPolicy, Timeout, execute

#: Backend tags stamped on results (``GPUResult.backend``).
BACKEND_GPU = "gpu"
BACKEND_CPU_FALLBACK = "cpu-fallback"

FALLBACK_FRAMES = "repro_fallback_frames_total"


@dataclass(frozen=True)
class ResilienceConfig:
    """One bundle of resilience knobs, shared by wrapper and engine.

    ``fallback=False`` turns the wrapper into retry + breaker only: once
    the GPU path is down the error propagates (the batch engine can still
    isolate it per frame via ``isolate``).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failures: int = 5
    breaker_recovery_s: float = 0.05
    timeout_s: float | None = None
    retry_budget: int | None = None
    fallback: bool = True
    #: Batch engine: capture per-frame failures as FrameStats(error=...)
    #: + dead letters instead of poisoning the whole batch.
    isolate: bool = True

    def make_timeout(self) -> Timeout | None:
        return Timeout(self.timeout_s) if self.timeout_s is not None else None

    def make_budget(self) -> RetryBudget | None:
        return (RetryBudget(self.retry_budget)
                if self.retry_budget is not None else None)

    def make_breaker(self, *, name: str = "gpu", obs=None) -> CircuitBreaker:
        return CircuitBreaker(self.breaker_failures,
                              self.breaker_recovery_s, name=name, obs=obs)


class FallbackPipeline:
    """Resilient facade over a GPU pipeline with a CPU understudy.

    Parameters
    ----------
    gpu:
        The protected :class:`~repro.core.pipeline.GPUPipeline`.
    config:
        The :class:`ResilienceConfig` knobs (default: 3 attempts,
        5-failure breaker, fallback on).
    cpu:
        The understudy; built from the GPU pipeline's params/cpu spec when
        omitted.
    breaker / budget:
        Share a breaker / retry budget across wrappers (the batch engine
        passes one of each so its workers trip and recover together).
    obs:
        :class:`~repro.obs.RunContext`; defaults to the GPU pipeline's.
    sleep / clock:
        Injectable timing (tests use virtual clocks).
    """

    def __init__(self, gpu, config: ResilienceConfig | None = None, *,
                 cpu: CPUPipeline | None = None,
                 breaker: CircuitBreaker | None = None,
                 budget: RetryBudget | None = None,
                 obs=None, sleep=time.sleep,
                 clock=time.monotonic) -> None:
        self.gpu = gpu
        self.config = config or ResilienceConfig()
        self.obs = obs if obs is not None else getattr(
            gpu, "obs", NULL_CONTEXT)
        self.cpu = cpu if cpu is not None else CPUPipeline(
            gpu.params, gpu.cpu, obs=self.obs, label="cpu-fallback")
        self.breaker = breaker if breaker is not None else (
            self.config.make_breaker(name=getattr(gpu, "label", "gpu"),
                                     obs=self.obs))
        self.budget = budget if budget is not None else (
            self.config.make_budget())
        self.timeout = self.config.make_timeout()
        self.sleep = sleep
        self.clock = clock
        # Mirrored for callers that treat this as a GPUPipeline drop-in.
        self.flags = getattr(gpu, "flags", None)
        self.params = gpu.params
        self.label = getattr(gpu, "label", "gpu")

    # -- main entry -----------------------------------------------------------

    def run(self, image):
        """Sharpen one frame resiliently; always a ``GPUResult`` shape."""
        obs = self.obs
        if not self.breaker.allow():
            return self._degrade(image, reason="breaker-open")
        try:
            result, attempts = execute(
                lambda: self.gpu.run(image),
                self.config.retry,
                timeout=self.timeout,
                budget=self.budget,
                obs=obs,
                sleep=self.sleep,
                clock=self.clock,
                label=f"{self.label}.frame",
            )
        except ReproError as exc:
            self.breaker.record_failure()
            return self._degrade(image, reason=type(exc).__name__,
                                 cause=exc)
        except Exception:  # repro: ignore[PL-BROAD-EXCEPT]
            # Unknown failure: count it against the breaker (and release a
            # half-open probe slot) but never mask it with the fallback.
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        result.backend = BACKEND_GPU
        return result

    # -- degradation ----------------------------------------------------------

    def _degrade(self, image, *, reason: str,
                 cause: Exception | None = None):
        if not self.config.fallback:
            if cause is not None:
                raise cause
            raise CircuitOpenError(
                f"{self.label}: circuit open and no fallback configured"
            )
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                FALLBACK_FRAMES,
                "Frames served by the CPU fallback path",
                ("pipeline", "reason"),
            ).labels(pipeline=self.label, reason=reason).inc()
            obs.log.warning(
                "fallback.engaged", pipeline=self.label, reason=reason,
            )
        with obs.trace.span("fallback.run", pipeline=self.label,
                            reason=reason):
            cpu_result = self.cpu.run(image)
        return self._as_gpu_result(cpu_result)

    def _as_gpu_result(self, cpu_result):
        """Dress a CPUResult in GPUResult clothes (host-only timeline)."""
        from ..core.pipeline import GPUResult

        timeline = Timeline()
        for stage, seconds in cpu_result.times.times.items():
            timeline.record(stage, "host", seconds, stage=stage)
        return GPUResult(
            final=cpu_result.final,
            times=cpu_result.times,
            timeline=timeline,
            edge_mean=cpu_result.edge_mean,
            flags=self.flags,
            border_ran_on_gpu=False,
            reduction_stage2_on_gpu=False,
            kernel_launches=0,
            intermediates=dict(cpu_result.intermediates),
            backend=BACKEND_CPU_FALLBACK,
        )
