"""Retry policies: bounded attempts, deterministic backoff, retry budget.

:class:`RetryPolicy` is a pure description — :meth:`RetryPolicy.backoff`
maps an attempt number to a delay with *deterministic* jitter (seeded
per-attempt, so the whole schedule is a pure function of the policy; tests
assert it element by element).  :func:`execute` runs a callable under a
policy: transient failures (per :func:`~repro.errors.is_transient`) are
retried with backoff until the attempts, the optional shared
:class:`RetryBudget`, or the optional :class:`Timeout` deadline run out;
permanent failures abort immediately.

Outcome accounting lands in ``repro_retries_total{outcome}``:

* ``success`` — a call succeeded after at least one failed attempt (the
  recovery the retries bought);
* ``retried`` — one failed attempt that was re-attempted;
* ``exhausted`` — attempts ran out (raises :class:`RetryExhaustedError`);
* ``permanent`` — a non-retryable failure (re-raised as-is);
* ``budget`` / ``deadline`` — the shared budget or the per-call deadline
  stopped further attempts.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..errors import (
    ConfigError,
    FrameTimeoutError,
    RetryExhaustedError,
    is_transient,
)

RETRIES_TOTAL = "repro_retries_total"
_RETRIES_HELP = "Retry-policy attempt outcomes"


def _count(obs, outcome: str) -> None:
    if obs is not None and obs.enabled:
        obs.metrics.counter(
            RETRIES_TOTAL, _RETRIES_HELP, ("outcome",),
        ).labels(outcome=outcome).inc()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts *calls*, not retries: ``max_attempts=1``
    disables retrying.  The delay before attempt ``k`` (1-based retry
    index) is ``base_delay * multiplier**(k-1)``, capped at ``max_delay``,
    then jittered by up to ``jitter`` of itself using a PRNG seeded from
    ``(seed, k)`` — same policy, same schedule, every run.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ConfigError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def backoff(self, retry: int) -> float:
        """Delay in seconds before retry number ``retry`` (1-based)."""
        if retry < 1:
            raise ConfigError(f"retry index must be >= 1, got {retry}")
        delay = min(self.base_delay * self.multiplier ** (retry - 1),
                    self.max_delay)
        if self.jitter and delay:
            frac = random.Random(f"{self.seed}:{retry}").random()
            delay += delay * self.jitter * frac
        return delay

    def schedule(self) -> list[float]:
        """The full deterministic backoff schedule of this policy."""
        return [self.backoff(k) for k in range(1, self.max_attempts)]


class RetryBudget:
    """A shared, thread-safe pool of retry tokens.

    Bounds the *total* retries across many calls (e.g. all frames of a
    batch): under a persistent fault storm, per-call retries alone would
    multiply the work by ``max_attempts``; a budget caps the amplification
    and lets the caller degrade instead.
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ConfigError(f"retry budget must be >= 0, got {total}")
        self.total = total
        self._remaining = total
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._remaining

    def take(self) -> bool:
        """Consume one token; ``False`` when the budget is spent."""
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


@dataclass(frozen=True)
class Timeout:
    """Per-call execution deadline in (wall-clock) seconds.

    The retry loop stops scheduling attempts once the deadline passes and
    surfaces :class:`~repro.errors.FrameTimeoutError`; an attempt already
    in flight is not interrupted (cooperative model — the simulated
    runtime has no preemption, like a real GPU queue without device
    reset).
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigError(
                f"timeout must be > 0 seconds, got {self.seconds}"
            )


def execute(fn, policy: RetryPolicy | None = None, *,
            timeout: Timeout | None = None,
            budget: RetryBudget | None = None,
            retryable=is_transient,
            obs=None,
            sleep=time.sleep,
            clock=time.monotonic,
            label: str = ""):
    """Run ``fn()`` under a retry policy; returns ``(result, attempts)``.

    Raises :class:`RetryExhaustedError` (chaining the last failure) when
    attempts run out, :class:`~repro.errors.FrameTimeoutError` when the
    deadline does, and re-raises permanent failures untouched.
    """
    policy = policy or RetryPolicy()
    deadline = clock() + timeout.seconds if timeout is not None else None
    last_exc: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            result = fn()
        except Exception as exc:  # noqa: BLE001  # repro: ignore[PL-BROAD-EXCEPT] classified below
            last_exc = exc
            if not retryable(exc):
                _count(obs, "permanent")
                raise
            if attempt >= policy.max_attempts:
                break
            if budget is not None and not budget.take():
                _count(obs, "budget")
                raise RetryExhaustedError(
                    f"{label or 'call'}: retry budget exhausted after "
                    f"{attempt} attempt(s)"
                ) from exc
            delay = policy.backoff(attempt)
            if deadline is not None and clock() + delay > deadline:
                _count(obs, "deadline")
                raise FrameTimeoutError(
                    f"{label or 'call'}: retry deadline exceeded after "
                    f"{attempt} attempt(s)"
                ) from exc
            _count(obs, "retried")
            if obs is not None and obs.enabled:
                obs.log.warning(
                    "retry.attempt", label=label, attempt=attempt,
                    delay_ms=delay * 1e3, error=type(exc).__name__,
                )
            if delay:
                sleep(delay)
        else:
            if attempt > 1:
                _count(obs, "success")
                if obs is not None and obs.enabled:
                    obs.log.info(
                        "retry.recovered", label=label, attempts=attempt,
                    )
            return result, attempt
    _count(obs, "exhausted")
    raise RetryExhaustedError(
        f"{label or 'call'}: {policy.max_attempts} attempt(s) failed"
    ) from last_exc
