"""Resilient execution: fault injection, retries, breaker, CPU fallback.

The production story of the ROADMAP needs the pipeline to *keep serving*
through device faults, corrupt frames, and worker crashes.  This package
provides both halves of that story:

* :mod:`~repro.resilience.faults` — a deterministic, seedable
  :class:`FaultPlan` threaded through the simulated runtime (queue
  transfers, kernel launches, buffer-pool acquisitions, batch workers)
  via :class:`~repro.obs.RunContext`;
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (bounded
  attempts, exponential backoff with deterministic jitter),
  :class:`RetryBudget` and per-frame :class:`Timeout`;
* :mod:`~repro.resilience.breaker` — a three-state
  :class:`CircuitBreaker`;
* :mod:`~repro.resilience.fallback` — :class:`FallbackPipeline`, the
  GPU -> CPU graceful-degradation wrapper, and :class:`ResilienceConfig`,
  the knob bundle the batch engine and CLI consume.

See ``docs/resilience.md`` for the fault-spec grammar, policy knobs and
the metrics reference.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .fallback import (
    BACKEND_CPU_FALLBACK,
    BACKEND_GPU,
    FallbackPipeline,
    ResilienceConfig,
)
from .faults import SITES, FaultPlan, SiteSpec
from .policy import RetryBudget, RetryPolicy, Timeout, execute

__all__ = [
    "BACKEND_CPU_FALLBACK",
    "BACKEND_GPU",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "FallbackPipeline",
    "FaultPlan",
    "ResilienceConfig",
    "RetryBudget",
    "RetryPolicy",
    "SITES",
    "SiteSpec",
    "Timeout",
    "execute",
]
