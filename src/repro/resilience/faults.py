"""Deterministic fault injection for the simulated runtime.

A :class:`FaultPlan` is a seeded description of *where* and *how often* the
simulated stack should fail.  It is attached to a
:class:`~repro.obs.RunContext` (``obs.faults``) and consulted by four fault
sites threaded through the runtime:

========== ==================================================== =============================
site       where it fires                                        error raised
========== ==================================================== =============================
transfer   every ``cl.queue`` transfer command (and once per     :class:`~repro.errors.TransferFault`
           plan-cache replayed frame, standing in for the
           replayed transfers)
kernel     every ``enqueue_nd_range`` / emulated kernel launch   :class:`~repro.errors.KernelLaunchFault`
           (and once per replayed frame)
oom        every ``BufferPool.checkout``                         :class:`~repro.errors.DeviceOOMError`
worker     every batch-engine frame dispatch                     :class:`~repro.errors.WorkerCrashError`
hang       every batch-engine frame dispatch (stalls; raises     :class:`~repro.errors.FrameHangError`
           only when the lifecycle watchdog cancels the stall)
========== ==================================================== =============================

Determinism: each site owns a private ``random.Random`` seeded from
``(plan seed, site name)``, and draws advance one per :meth:`check` call —
the same plan over the same single-threaded run faults the same
operations every time.  (Under a multi-worker batch the per-site draw
*sequence* is still deterministic; which frame observes which draw depends
on thread interleaving.)

Spec grammar (the CLI's ``--inject-faults`` argument)::

    SPEC    := SEGMENT (";" SEGMENT)*
    SEGMENT := "seed=" INT
             | SITE ":" PARAM ("," PARAM)*
    SITE    := "transfer" | "kernel" | "oom" | "worker" | "hang"
    PARAM   := "rate=" FLOAT          # fault probability per check, 0..1
             | FLOAT                  # shorthand for rate=
             | "kind=" ("transient" | "permanent")
             | "after=" INT           # skip the first N checks of the site
             | "max=" INT             # stop injecting after N faults
             | "seconds=" FLOAT       # hang only: stall duration

Examples::

    transfer:rate=0.2,kind=transient;seed=7
    kernel:1.0,kind=permanent
    oom:rate=0.05;worker:rate=0.01,max=2;seed=42

Every injected fault increments ``repro_faults_injected_total{site}`` and
emits a warning log record, so a resilience test can assert both that
faults *happened* and that the run recovered from them.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..errors import (
    DeviceOOMError,
    FaultSpecError,
    FrameHangError,
    KernelLaunchFault,
    ReproError,
    TransferFault,
    WorkerCrashError,
)

#: Recognized fault sites, in documentation order.
SITES = ("transfer", "kernel", "oom", "worker", "hang")

#: Error class raised per site.
_SITE_ERRORS: dict[str, type[ReproError]] = {
    "transfer": TransferFault,
    "kernel": KernelLaunchFault,
    "oom": DeviceOOMError,
    "worker": WorkerCrashError,
    "hang": FrameHangError,
}

#: How long a fired ``hang`` site stalls before giving up and continuing
#: (overridden per spec with ``seconds=``).
DEFAULT_HANG_SECONDS = 30.0

#: Cooperative-cancellation poll period while a ``hang`` site stalls.
_HANG_POLL_S = 0.01

_KINDS = ("transient", "permanent")


@dataclass(frozen=True)
class SiteSpec:
    """Fault configuration of one site.

    ``seconds`` only matters for the ``hang`` site: how long a fired hang
    stalls the operation before giving up and continuing (a lifecycle
    watchdog is expected to cancel it first).
    """

    rate: float = 0.0
    kind: str = "transient"
    after: int = 0
    max_faults: int | None = None
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise FaultSpecError(
                f"seconds must be >= 0, got {self.seconds}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.after < 0:
            raise FaultSpecError(f"after must be >= 0, got {self.after}")
        if self.max_faults is not None and self.max_faults < 0:
            raise FaultSpecError(
                f"max must be >= 0, got {self.max_faults}"
            )


class FaultPlan:
    """Seedable, thread-safe fault schedule over the runtime's sites.

    Build one directly (``FaultPlan({"transfer": SiteSpec(rate=0.2)})``)
    or from the CLI spec grammar via :meth:`parse`.  Attach it to a
    :class:`~repro.obs.RunContext` (``RunContext.create(faults=plan)``)
    and every instrumented component downstream participates.
    """

    def __init__(self, sites: dict[str, SiteSpec] | None = None,
                 seed: int = 0) -> None:
        sites = dict(sites or {})
        for name in sites:
            if name not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {name!r}; expected one of "
                    f"{', '.join(SITES)}"
                )
        self.sites = sites
        self.seed = seed
        self._lock = threading.Lock()
        self._rngs = {
            name: random.Random(f"{seed}:{name}") for name in sites
        }
        #: Per-site number of checks seen / faults injected.
        self.checks: dict[str, int] = {name: 0 for name in sites}
        self.injected: dict[str, int] = {name: 0 for name in sites}

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``--inject-faults`` grammar (see module docstring)."""
        if not isinstance(spec, str) or not spec.strip():
            raise FaultSpecError("empty fault spec")
        sites: dict[str, SiteSpec] = {}
        seed = 0
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                seed = cls._parse_int(segment[len("seed="):], "seed")
                continue
            site, sep, body = segment.partition(":")
            site = site.strip()
            if not sep or not body.strip():
                raise FaultSpecError(
                    f"malformed segment {segment!r}: expected "
                    "'site:rate=R[,kind=K,...]' or 'seed=N'"
                )
            if site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r}; expected one of "
                    f"{', '.join(SITES)}"
                )
            if site in sites:
                raise FaultSpecError(f"duplicate fault site {site!r}")
            sites[site] = cls._parse_site(site, body)
        if not sites:
            raise FaultSpecError(
                f"fault spec {spec!r} configures no sites"
            )
        return cls(sites, seed=seed)

    @staticmethod
    def _parse_int(text: str, what: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise FaultSpecError(
                f"{what} must be an integer, got {text!r}"
            ) from None

    @staticmethod
    def _parse_float(text: str, what: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise FaultSpecError(
                f"{what} must be a number, got {text!r}"
            ) from None

    @classmethod
    def _parse_site(cls, site: str, body: str) -> SiteSpec:
        kwargs: dict = {}
        for param in body.split(","):
            param = param.strip()
            if not param:
                continue
            key, sep, value = param.partition("=")
            if not sep:
                # bare number: shorthand for rate=
                key, value = "rate", param
            key = key.strip()
            value = value.strip()
            if key == "rate":
                kwargs["rate"] = cls._parse_float(value, f"{site} rate")
            elif key == "kind":
                kwargs["kind"] = value
            elif key == "after":
                kwargs["after"] = cls._parse_int(value, f"{site} after")
            elif key == "max":
                kwargs["max_faults"] = cls._parse_int(value, f"{site} max")
            elif key == "seconds":
                if site != "hang":
                    raise FaultSpecError(
                        f"seconds= only applies to the hang site, "
                        f"not {site!r}"
                    )
                kwargs["seconds"] = cls._parse_float(value,
                                                     f"{site} seconds")
            else:
                raise FaultSpecError(
                    f"unknown fault parameter {key!r} for site {site!r} "
                    "(expected rate/kind/after/max/seconds)"
                )
        return SiteSpec(**kwargs)

    # -- injection ------------------------------------------------------------

    def check(self, site: str, obs=None, *, detail: str = "",
              cancel: threading.Event | None = None) -> None:
        """One pass through a fault site; raises the site's error when the
        schedule says this operation fails.

        ``obs`` (a :class:`~repro.obs.RunContext`) records the injection in
        ``repro_faults_injected_total{site}`` and the structured log.

        The ``hang`` site behaves differently: a fired hang *stalls* the
        calling thread for the spec's ``seconds`` (simulating a stuck
        frame) instead of raising.  ``cancel`` is the cooperative
        cancellation token — when the lifecycle watchdog sets it, the
        stall aborts immediately with :class:`~repro.errors.FrameHangError`
        (how a hung-and-cancelled frame dies); a stall that runs its full
        ``seconds`` uncancelled returns normally, i.e. the frame was just
        slow.
        """
        spec = self.sites.get(site)
        if spec is None or spec.rate <= 0.0:
            return
        with self._lock:
            n = self.checks[site] = self.checks.get(site, 0) + 1
            if n <= spec.after:
                return
            if (spec.max_faults is not None
                    and self.injected[site] >= spec.max_faults):
                return
            if self._rngs[site].random() >= spec.rate:
                return
            self.injected[site] += 1
            count = self.injected[site]
        if obs is not None and obs.enabled:
            obs.metrics.counter(
                "repro_faults_injected_total",
                "Simulated faults injected, by runtime site",
                ("site",),
            ).labels(site=site).inc()
            obs.log.warning(
                "fault.injected", site=site, kind=spec.kind,
                n=count, detail=detail,
            )
        if site == "hang":
            self._stall(spec, detail=detail, cancel=cancel)
            return
        exc = _SITE_ERRORS[site](
            f"injected {spec.kind} {site} fault"
            + (f" ({detail})" if detail else "")
        )
        exc.transient = spec.kind == "transient"
        exc.injected = True
        raise exc

    @staticmethod
    def _stall(spec: SiteSpec, *, detail: str,
               cancel: threading.Event | None) -> None:
        """Stall for ``spec.seconds`` or until cancelled (outside the plan
        lock — other sites keep injecting while this thread hangs)."""
        deadline = time.monotonic() + spec.seconds
        while time.monotonic() < deadline:
            if cancel is not None:
                if cancel.wait(min(_HANG_POLL_S,
                                   max(0.0, deadline - time.monotonic()))):
                    exc = FrameHangError(
                        "injected hang cancelled by watchdog"
                        + (f" ({detail})" if detail else "")
                    )
                    exc.transient = False
                    exc.injected = True
                    raise exc
            else:
                time.sleep(min(_HANG_POLL_S,
                               max(0.0, deadline - time.monotonic())))

    # -- introspection --------------------------------------------------------

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def describe(self) -> str:
        """One-line summary (used by CLI logs)."""
        parts = [
            f"{site}:rate={spec.rate},kind={spec.kind}"
            + (f",after={spec.after}" if spec.after else "")
            + (f",max={spec.max_faults}"
               if spec.max_faults is not None else "")
            + (f",seconds={spec.seconds}" if site == "hang" else "")
            for site, spec in sorted(self.sites.items())
        ]
        return ";".join(parts) + f";seed={self.seed}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()!r})"
