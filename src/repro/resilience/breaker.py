"""Circuit breaker: stop hammering a failing backend, probe to recover.

The classic three-state machine guarding the GPU path:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker;
* **open** — calls are refused (:meth:`allow` returns ``False``) so the
  caller degrades to its fallback immediately instead of paying the
  failure latency per frame; after ``recovery_time`` seconds the breaker
  lets one probe through;
* **half-open** — exactly one in-flight probe is admitted; success closes
  the breaker, failure re-opens it (and restarts the recovery clock).

State is exported live as ``repro_breaker_state{breaker}`` (0 closed,
1 open, 2 half-open) plus a ``repro_breaker_transitions_total{breaker,to}``
counter, so a metrics scrape shows both where the breaker is and how it
got there.  All methods are thread-safe — the batch engine's workers share
one breaker, which is what makes "N consecutive failures anywhere" trip
the whole engine over to the CPU path.
"""

from __future__ import annotations

import threading
import time

from ..errors import ConfigError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_VALUES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

BREAKER_STATE = "repro_breaker_state"
BREAKER_TRANSITIONS = "repro_breaker_transitions_total"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe."""

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 30.0, *,
                 name: str = "gpu", obs=None,
                 clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ConfigError(
                f"recovery_time must be >= 0, got {recovery_time}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.name = name
        self.obs = obs
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._export_state()

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Lock held: open -> half-open once the recovery window passed."""
        if (self._state == OPEN
                and self.clock() - self._opened_at >= self.recovery_time):
            self._transition(HALF_OPEN)

    def _transition(self, to: str) -> None:
        """Lock held: move to ``to`` and export the change."""
        if self._state == to:
            return
        self._state = to
        if to == OPEN:
            self._opened_at = self.clock()
        if to != HALF_OPEN:
            self._probing = False
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.metrics.counter(
                BREAKER_TRANSITIONS,
                "Circuit breaker state transitions", ("breaker", "to"),
            ).labels(breaker=self.name, to=to).inc()
            obs.log.info("breaker.transition", breaker=self.name, to=to)
        self._export_state()

    def _export_state(self) -> None:
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.metrics.gauge(
                BREAKER_STATE,
                "Circuit breaker state (0 closed, 1 open, 2 half-open)",
                ("breaker",),
            ).labels(breaker=self.name).set(_STATE_VALUES[self._state])

    # -- protocol -------------------------------------------------------------

    def allow(self) -> bool:
        """May the caller attempt the protected path right now?

        In the half-open state only the first caller gets a probe slot;
        concurrent callers are refused until the probe resolves.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state in (HALF_OPEN, OPEN):
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # the probe failed: back to open, restart the clock
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures
                    >= self.failure_threshold):
                self._transition(OPEN)
