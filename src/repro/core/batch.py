"""Batch engine: bounded-concurrency frame streaming with ordered results.

:class:`BatchEngine` is the throughput layer on top of
:class:`~repro.core.stream.StreamProcessor`'s per-frame semantics: frames
are fed to a pool of worker threads (NumPy releases the GIL on the large
array operations, so threads suffice), in-flight work is bounded by a
semaphore (backpressure — a fast producer cannot queue an unbounded number
of frames), and results come back **in submission order** regardless of
completion order.  The pool never oversubscribes the host: the effective
thread count is ``min(workers, os.cpu_count())``, because the per-frame
work is compute-bound and extra threads only buy context switches.

All workers share one :class:`~repro.core.plan.PlanCache` and one
:class:`~repro.core.bufferpool.BufferPool`, so the first frame of a shape
pays the generic setup cost once and every later frame replays the captured
plan through pooled buffers.  Each worker owns its own
:class:`~repro.core.pipeline.GPUPipeline` (pipelines are cheap; the caches
are the shared state) with a tracer-free view of the caller's
:class:`~repro.obs.RunContext`: the metrics registry and logger are
thread-safe and shared, while trace spans — a strictly LIFO per-thread
structure — are only emitted by the submitting thread.

Throughput telemetry lands in the shared registry:

* ``repro_batch_frames_per_second`` / ``repro_batch_wall_seconds`` /
  ``repro_batch_frames_total`` — wall-clock engine throughput;
* ``repro_plan_cache_requests_total{outcome}`` — plan hit/miss counters
  (recorded per frame by the worker pipelines);
* ``repro_bufferpool_in_use`` / ``repro_bufferpool_idle`` — pool occupancy.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, ReproError, ValidationError, is_transient
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..obs.trace import NullTracer
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..types import Image, SharpnessParams
from .bufferpool import BufferPool
from .config import OPTIMIZED, OptimizationFlags
from .pipeline import GPUPipeline
from .plan import PlanCache
from .stream import FrameStats, frame_stats, resolve_frame_id

FRAMES_FAILED = "repro_frames_failed_total"

#: How often a hook-driven run polls futures / the admission semaphore
#: while waiting, so drain deadlines and hang verdicts are honored
#: promptly.  Hook-free runs keep the original fully-blocking waits.
_POLL_S = 0.05


@dataclass
class FrameFailure:
    """One dead-lettered frame: position, stable id, error, attempts."""

    index: int
    error: str
    error_type: str
    attempts: int = 1
    frame_id: str = ""


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchEngine.run`: ordered stats + throughput.

    With resilience enabled, a failing frame does not poison the batch:
    its slot in ``frames`` / ``outputs`` / ``edge_means`` is preserved in
    submission order (``FrameStats.error`` set, output ``None``, edge mean
    NaN) and the failure is dead-lettered in ``dead_letters``.
    """

    frames: list[FrameStats] = field(default_factory=list)
    outputs: list[np.ndarray] = field(default_factory=list)
    edge_means: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    plan_stats: dict[str, int] = field(default_factory=dict)
    pool_stats: dict[str, int] = field(default_factory=dict)
    dead_letters: list[FrameFailure] = field(default_factory=list)
    #: Lifecycle hooks stopped the run early (drain, load shed, abort):
    #: frames past the stop point were never admitted and in-flight frames
    #: listed in ``abandoned`` were dropped without waiting.
    interrupted: bool = False
    #: ``(index, frame_id)`` of in-flight frames dropped at shutdown; they
    #: produced no FrameStats slot and are *not* dead letters — a resumed
    #: job simply runs them again.
    abandoned: list[tuple[int, str]] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def n_failed(self) -> int:
        return len(self.dead_letters)

    @property
    def ok(self) -> bool:
        """Did every admitted frame produce pixels (GPU or fallback)?"""
        return (not self.dead_letters and not self.interrupted
                and not self.abandoned)

    def backends(self) -> dict[str, int]:
        """Frame count per serving backend (gpu / cpu-fallback / failed)."""
        out: dict[str, int] = {}
        for f in self.frames:
            out[f.backend] = out.get(f.backend, 0) + 1
        return out

    @property
    def frames_per_second(self) -> float:
        """Measured wall-clock throughput of the engine run."""
        if self.wall_seconds <= 0.0:
            raise ValidationError("batch recorded no wall time")
        return self.n_frames / self.wall_seconds

    @property
    def simulated_fps(self) -> float:
        """Simulated steady-state fps (serial device model, cf. stream)."""
        total = sum(f.serial_time for f in self.frames)
        if total <= 0.0:
            raise ValidationError("batch produced no frames")
        return self.n_frames / total


def _worker_view(obs: RunContext) -> RunContext:
    """The caller's context minus tracing (spans are strictly LIFO per
    thread; metrics and logs are thread-safe and shared).  The fault plan
    rides along: injection keeps working inside worker threads."""
    if not obs.enabled:
        if obs.faults is None:
            return NULL_CONTEXT
        return RunContext(run_id=obs.run_id, log=obs.log,
                          metrics=obs.metrics, trace=NullTracer(),
                          meta=obs.meta, enabled=False, faults=obs.faults)
    return RunContext(run_id=obs.run_id, log=obs.log, metrics=obs.metrics,
                      trace=NullTracer(), meta=obs.meta, enabled=True,
                      faults=obs.faults)


class BatchEngine:
    """Run frames through a bounded worker pool with ordered results.

    Parameters
    ----------
    flags / params / device / cpu:
        Pipeline configuration, as for
        :class:`~repro.core.stream.StreamProcessor`.
    workers:
        Requested worker thread count (default 4).  The pool is actually
        sized to ``min(workers, os.cpu_count())``: the frame work is
        compute-bound (NumPy ufuncs), so oversubscribing the cores only
        adds context-switch and cache thrash — measured ~25% slower on a
        single-core host.  ``effective_workers`` exposes the applied size.
    queue_depth:
        Maximum in-flight frames (submitted but not yet collected);
        defaults to ``2 * workers``.  This is the backpressure bound — it
        also caps result-side memory when ``keep_outputs`` is off.
    keep_outputs:
        Retain every sharpened frame on the result, in input order.
    obs:
        Optional :class:`~repro.obs.RunContext` shared by all workers.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  When given,
        every worker pipeline is wrapped in a
        :class:`~repro.resilience.FallbackPipeline` sharing one circuit
        breaker and one retry budget (so consecutive GPU failures
        anywhere trip the whole engine over to the CPU path together),
        simulated worker crashes are re-dispatched, and — with
        ``isolate=True`` — a frame that still fails yields an in-order
        ``FrameStats(error=...)`` plus a dead letter instead of aborting
        the batch.
    timeout:
        Per-frame execution deadline in seconds (must be > 0); feeds the
        resilience layer's retry-deadline check.
    hooks:
        Optional lifecycle hooks (duck-typed; see
        :class:`~repro.lifecycle.job.EngineHooks` for the reference
        implementation).  The engine consults/calls, in order:

        * ``admit() -> bool`` before admitting each frame — ``False``
          stops admission (drain / load shed) and the run finishes with
          ``interrupted=True``;
        * ``frame_started(index, frame_id) -> threading.Event | None`` /
          ``frame_finished(index)`` from the worker thread around each
          frame (the returned event is the frame's cooperative
          cancellation token, honored by the ``hang`` fault site);
        * ``is_hung(index) -> bool`` while collecting — a hung in-flight
          frame is absorbed as a ``FrameHangError`` dead letter without
          waiting for its worker;
        * ``abandon() -> bool`` while draining — ``True`` drops the
          remaining in-flight frames (recorded in ``abandoned``);
        * ``on_frame(index=..., frame_id=..., stats=..., output=...,
          edge_mean=..., failure=...)`` after each frame is absorbed, in
          submission order — the journaling point.
    """

    def __init__(self, flags: OptimizationFlags = OPTIMIZED,
                 params: SharpnessParams | None = None, *,
                 device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470,
                 workers: int = 4, queue_depth: int | None = None,
                 keep_outputs: bool = False,
                 obs: RunContext | None = None,
                 resilience=None,
                 timeout: float | None = None,
                 hooks=None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigError(
                f"timeout must be > 0 seconds, got {timeout}"
            )
        self.workers = workers
        self.effective_workers = min(workers, os.cpu_count() or workers)
        self.queue_depth = (queue_depth if queue_depth is not None
                            else 2 * workers)
        if self.queue_depth < workers:
            raise ConfigError(
                f"queue_depth {self.queue_depth} starves the "
                f"{workers}-worker pool"
            )
        self.flags = flags
        self.params = params
        self.device = device
        self.cpu = cpu
        self.keep_outputs = keep_outputs
        self.obs = obs or NULL_CONTEXT
        self.timeout = timeout
        self.hooks = hooks
        self.resilience = self._effective_resilience(resilience)
        self.plan_cache = PlanCache()
        self._worker_obs = _worker_view(self.obs)
        self.buffer_pool = BufferPool(max_entries=workers + 1, device=device,
                                      obs=self._worker_obs)
        self._breaker = None
        self._budget = None
        if self.resilience is not None:
            self._breaker = self.resilience.make_breaker(
                name="batch", obs=self._worker_obs)
            self._budget = self.resilience.make_budget()
        self._local = threading.local()

    def _effective_resilience(self, resilience):
        """Fold the engine-level ``timeout`` into the resilience config."""
        if resilience is None:
            return None
        from ..resilience.fallback import ResilienceConfig

        if not isinstance(resilience, ResilienceConfig):
            raise ConfigError(
                f"resilience must be a ResilienceConfig, got "
                f"{type(resilience).__name__}"
            )
        if self.timeout is not None and resilience.timeout_s is None:
            from dataclasses import replace
            resilience = replace(resilience, timeout_s=self.timeout)
        return resilience

    # -- workers ---------------------------------------------------------------

    def _pipeline(self) -> GPUPipeline:
        """Per-thread pipeline sharing the engine's plan cache and pool."""
        pipe = getattr(self._local, "pipeline", None)
        if pipe is None:
            pipe = GPUPipeline(
                self.flags, self.params, self.device, self.cpu,
                obs=self._worker_obs, label="batch",
                plan_cache=self.plan_cache, buffer_pool=self.buffer_pool,
            )
            if self.resilience is not None:
                from ..resilience.fallback import FallbackPipeline
                pipe = FallbackPipeline(
                    pipe, self.resilience, breaker=self._breaker,
                    budget=self._budget, obs=self._worker_obs,
                )
            self._local.pipeline = pipe
        return pipe

    def _process(self, index: int, frame, frame_id: str = ""):
        hooks = self.hooks
        cancel = None
        if hooks is not None:
            cancel = hooks.frame_started(index, frame_id)
        try:
            if not isinstance(frame, Image):
                frame = Image.from_array(np.asarray(frame))
            faults = self.obs.faults
            if faults is not None:
                # The hang site stalls (cooperatively cancellable); a
                # cancelled hang dies here as a FrameHangError.
                try:
                    faults.check("hang", self._worker_obs,
                                 detail=f"frame:{index}", cancel=cancel)
                except ReproError as exc:
                    if (self.resilience is None
                            or not self.resilience.isolate):
                        raise
                    return FrameFailure(
                        index=index, frame_id=frame_id, error=str(exc),
                        error_type=type(exc).__name__, attempts=1,
                    ), 1
            if self.resilience is None:
                if faults is not None:
                    faults.check("worker", self._worker_obs,
                                 detail=f"frame:{index}")
                return self._pipeline().run(frame), 1
            return self._process_resilient(index, frame, frame_id)
        finally:
            if hooks is not None:
                hooks.frame_finished(index)

    def _process_resilient(self, index: int, frame, frame_id: str = ""):
        """One frame under the resilience policies.

        The ``worker`` fault site fires here — a simulated worker crash.
        Crashes (and any other transient error escaping the per-frame
        pipeline wrapper) are re-dispatched up to the retry policy's
        attempt bound, which models replacing a dead worker; the wrapped
        pipeline does its own transfer/kernel-level retrying and GPU->CPU
        fallback underneath.
        """
        obs = self._worker_obs
        faults = obs.faults
        policy = self.resilience.retry
        last_exc: ReproError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                if faults is not None:
                    faults.check("worker", obs, detail=f"frame:{index}")
                result = self._pipeline().run(frame)
                if attempt > 1 and obs.enabled:
                    obs.metrics.counter(
                        "repro_retries_total",
                        "Retry-policy attempt outcomes", ("outcome",),
                    ).labels(outcome="success").inc()
                return result, attempt
            except ReproError as exc:
                last_exc = exc
                if attempt >= policy.max_attempts or not is_transient(exc):
                    break
                if obs.enabled:
                    obs.metrics.counter(
                        "repro_retries_total",
                        "Retry-policy attempt outcomes", ("outcome",),
                    ).labels(outcome="retried").inc()
                    obs.log.warning(
                        "batch.frame_retry", frame=index, attempt=attempt,
                        error=type(exc).__name__,
                    )
        if not self.resilience.isolate:
            raise last_exc
        return FrameFailure(
            index=index, frame_id=frame_id, error=str(last_exc),
            error_type=type(last_exc).__name__,
            attempts=min(attempt, policy.max_attempts),
        ), attempt

    # -- main entry ------------------------------------------------------------

    def run(self, frames=None, *, source=None,
            frame_ids=None) -> BatchResult:
        """Process ``frames`` (iterable of arrays or Images), preserving
        order; blocks until every frame is done.

        ``source`` is the lazy alternative: a zero-argument callable
        returning the frame iterable, invoked once at run start (a
        non-callable source is a :class:`~repro.errors.ConfigError` —
        caught here rather than deep in the worker pool).

        ``frame_ids`` assigns each frame its stable identity (a sequence
        aligned with the stream or a ``callable(index, frame) -> str``);
        omitted, frames get positional ids — fine for ad-hoc batches, but
        durable jobs should pass real ids so checkpoints survive
        reordered/renamed inputs.
        """
        if source is not None:
            if frames is not None:
                raise ConfigError(
                    "pass either frames or source=, not both"
                )
            if not callable(source):
                raise ConfigError(
                    f"frame source must be callable, got "
                    f"{type(source).__name__}"
                )
            frames = source()
        if frames is None:
            raise ConfigError("no frames: pass an iterable or source=")
        obs = self.obs
        hooks = self.hooks
        result = BatchResult(workers=self.workers)
        inflight = threading.BoundedSemaphore(self.queue_depth)
        pending: deque = deque()

        def _absorb(index: int, fid: str, res, attempts: int) -> None:
            """Fold one frame outcome into the ordered result."""
            if isinstance(res, FrameFailure):
                result.dead_letters.append(res)
                result.frames.append(FrameStats(
                    index=index, serial_time=0.0, overlapped_time=0.0,
                    transfer_time=0.0, device_time=0.0, host_time=0.0,
                    backend="failed", error=res.error,
                    attempts=res.attempts, frame_id=fid,
                ))
                result.edge_means.append(float("nan"))
                if self.keep_outputs:
                    result.outputs.append(None)
                if obs.enabled:
                    obs.metrics.counter(
                        FRAMES_FAILED,
                        "Frames that failed after retries/fallback",
                    ).inc()
                    obs.log.error(
                        "batch.frame_failed", frame=index, frame_id=fid,
                        error_type=res.error_type, error=res.error,
                        attempts=res.attempts,
                    )
            else:
                result.frames.append(
                    frame_stats(index, res, attempts, frame_id=fid))
                result.edge_means.append(res.edge_mean)
                if self.keep_outputs:
                    result.outputs.append(res.final)
            if hooks is not None:
                failed = isinstance(res, FrameFailure)
                hooks.on_frame(
                    index=index, frame_id=fid, stats=result.frames[-1],
                    output=None if failed else res.final,
                    edge_mean=result.edge_means[-1],
                    failure=res if failed else None,
                )

        def _abandon_pending() -> None:
            """Drop every still-in-flight frame (drain deadline/abort)."""
            result.interrupted = True
            while pending:
                index, fid, _future = pending.popleft()
                result.abandoned.append((index, fid))
                if obs.enabled:
                    obs.log.warning(
                        "batch.frame_abandoned", frame=index, frame_id=fid,
                    )

        def _collect(block: bool) -> None:
            while pending:
                index, fid, future = pending[0]
                done = future.done()
                if (not done and hooks is not None
                        and hooks.is_hung(index)):
                    # Hung verdict from the watchdog: dead-letter the
                    # frame now instead of waiting on its worker (the
                    # cancel token reclaims the thread cooperatively).
                    pending.popleft()
                    _absorb(index, fid, FrameFailure(
                        index=index, frame_id=fid,
                        error=f"frame {fid or index} exceeded the hang "
                              "threshold and was abandoned by the "
                              "watchdog",
                        error_type="FrameHangError", attempts=1,
                    ), 1)
                    continue
                if done:
                    # A frame that finished after being declared hung
                    # still lands here with its real result — keep it
                    # (the hang counter already recorded the detection).
                    pending.popleft()
                    res, attempts = future.result()
                    _absorb(index, fid, res, attempts)
                    continue
                if not block:
                    return
                if hooks is None:
                    res, attempts = future.result()
                    pending.popleft()
                    _absorb(index, fid, res, attempts)
                    continue
                if hooks.abandon():
                    _abandon_pending()
                    return
                try:
                    future.result(timeout=_POLL_S)
                except FuturesTimeout:
                    continue
                # Completed within the poll window: absorbed next pass.

        def _admit(index: int) -> bool:
            """Acquire a backpressure slot, honoring lifecycle stops."""
            if hooks is None:
                inflight.acquire()
                return True
            while True:
                if not hooks.admit():
                    result.interrupted = True
                    return False
                if inflight.acquire(timeout=_POLL_S):
                    return True
                _collect(block=False)

        start = time.perf_counter()
        with obs.trace.span("batch.run", workers=self.workers):
            if self.effective_workers == 1:
                # One effective worker: dispatch inline.  A pool of one
                # thread computes the same serial schedule but pays a GIL
                # handoff + context switch per frame (~2 ms/frame measured
                # on a single-core host).
                for index, frame in enumerate(frames):
                    if hooks is not None and not hooks.admit():
                        result.interrupted = True
                        break
                    fid = resolve_frame_id(frame_ids, index, frame)
                    res, attempts = self._process(index, frame, fid)
                    _absorb(index, fid, res, attempts)
            else:
                pool = ThreadPoolExecutor(
                    max_workers=self.effective_workers,
                    thread_name_prefix="repro-batch")
                try:
                    for index, frame in enumerate(frames):
                        if not _admit(index):  # backpressure + lifecycle
                            break
                        fid = resolve_frame_id(frame_ids, index, frame)
                        future = pool.submit(
                            self._process, index, frame, fid)
                        future.add_done_callback(
                            lambda _f: inflight.release())
                        pending.append((index, fid, future))
                        _collect(block=False)
                    _collect(block=True)
                finally:
                    # An interrupted run must not wait on abandoned (and
                    # possibly hung) workers; cooperative hang cancel
                    # reclaims their threads in the background.
                    pool.shutdown(wait=not result.interrupted,
                                  cancel_futures=result.interrupted)
        result.wall_seconds = time.perf_counter() - start
        if not result.frames and not result.interrupted:
            raise ValidationError("empty frame sequence")
        result.plan_stats = self.plan_cache.stats()
        result.pool_stats = self.buffer_pool.stats()

        if obs.enabled:
            metrics = obs.metrics
            metrics.gauge(
                "repro_batch_frames_per_second",
                "Wall-clock throughput of the last batch run",
            ).set(result.frames_per_second)
            metrics.gauge(
                "repro_batch_wall_seconds",
                "Wall-clock duration of the last batch run",
            ).set(result.wall_seconds)
            metrics.counter(
                "repro_batch_frames_total",
                "Frames processed by the batch engine",
            ).inc(result.n_frames)
            metrics.gauge(
                "repro_bufferpool_idle",
                "Idle workspaces parked in the buffer pool",
            ).set(result.pool_stats["idle"])
            obs.log.info(
                "batch.complete", frames=result.n_frames,
                workers=self.workers,
                effective_workers=self.effective_workers,
                wall_ms=result.wall_seconds * 1e3,
                fps=result.frames_per_second,
                plan_hits=result.plan_stats["hits"],
                plan_misses=result.plan_stats["misses"],
                failed=result.n_failed,
                backends=",".join(
                    f"{k}={v}" for k, v in sorted(result.backends().items())
                ),
            )
        return result
