"""Batch engine: bounded-concurrency frame streaming with ordered results.

:class:`BatchEngine` is the throughput layer on top of
:class:`~repro.core.stream.StreamProcessor`'s per-frame semantics: frames
are fed to a pool of worker threads (NumPy releases the GIL on the large
array operations, so threads suffice), in-flight work is bounded by a
semaphore (backpressure — a fast producer cannot queue an unbounded number
of frames), and results come back **in submission order** regardless of
completion order.  The pool never oversubscribes the host: the effective
thread count is ``min(workers, os.cpu_count())``, because the per-frame
work is compute-bound and extra threads only buy context switches.

All workers share one :class:`~repro.core.plan.PlanCache` and one
:class:`~repro.core.bufferpool.BufferPool`, so the first frame of a shape
pays the generic setup cost once and every later frame replays the captured
plan through pooled buffers.  Each worker owns its own
:class:`~repro.core.pipeline.GPUPipeline` (pipelines are cheap; the caches
are the shared state) with a tracer-free view of the caller's
:class:`~repro.obs.RunContext`: the metrics registry and logger are
thread-safe and shared, while trace spans — a strictly LIFO per-thread
structure — are only emitted by the submitting thread.

Throughput telemetry lands in the shared registry:

* ``repro_batch_frames_per_second`` / ``repro_batch_wall_seconds`` /
  ``repro_batch_frames_total`` — wall-clock engine throughput;
* ``repro_plan_cache_requests_total{outcome}`` — plan hit/miss counters
  (recorded per frame by the worker pipelines);
* ``repro_bufferpool_in_use`` / ``repro_bufferpool_idle`` — pool occupancy.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, ValidationError
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..obs.trace import NullTracer
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..types import Image, SharpnessParams
from .bufferpool import BufferPool
from .config import OPTIMIZED, OptimizationFlags
from .pipeline import GPUPipeline, GPUResult
from .plan import PlanCache
from .stream import FrameStats, frame_stats


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchEngine.run`: ordered stats + throughput."""

    frames: list[FrameStats] = field(default_factory=list)
    outputs: list[np.ndarray] = field(default_factory=list)
    edge_means: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    plan_stats: dict[str, int] = field(default_factory=dict)
    pool_stats: dict[str, int] = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def frames_per_second(self) -> float:
        """Measured wall-clock throughput of the engine run."""
        if self.wall_seconds <= 0.0:
            raise ValidationError("batch recorded no wall time")
        return self.n_frames / self.wall_seconds

    @property
    def simulated_fps(self) -> float:
        """Simulated steady-state fps (serial device model, cf. stream)."""
        total = sum(f.serial_time for f in self.frames)
        if total <= 0.0:
            raise ValidationError("batch produced no frames")
        return self.n_frames / total


def _worker_view(obs: RunContext) -> RunContext:
    """The caller's context minus tracing (spans are strictly LIFO per
    thread; metrics and logs are thread-safe and shared)."""
    if not obs.enabled:
        return NULL_CONTEXT
    return RunContext(run_id=obs.run_id, log=obs.log, metrics=obs.metrics,
                      trace=NullTracer(), meta=obs.meta, enabled=True)


class BatchEngine:
    """Run frames through a bounded worker pool with ordered results.

    Parameters
    ----------
    flags / params / device / cpu:
        Pipeline configuration, as for
        :class:`~repro.core.stream.StreamProcessor`.
    workers:
        Requested worker thread count (default 4).  The pool is actually
        sized to ``min(workers, os.cpu_count())``: the frame work is
        compute-bound (NumPy ufuncs), so oversubscribing the cores only
        adds context-switch and cache thrash — measured ~25% slower on a
        single-core host.  ``effective_workers`` exposes the applied size.
    queue_depth:
        Maximum in-flight frames (submitted but not yet collected);
        defaults to ``2 * workers``.  This is the backpressure bound — it
        also caps result-side memory when ``keep_outputs`` is off.
    keep_outputs:
        Retain every sharpened frame on the result, in input order.
    obs:
        Optional :class:`~repro.obs.RunContext` shared by all workers.
    """

    def __init__(self, flags: OptimizationFlags = OPTIMIZED,
                 params: SharpnessParams | None = None, *,
                 device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470,
                 workers: int = 4, queue_depth: int | None = None,
                 keep_outputs: bool = False,
                 obs: RunContext | None = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.effective_workers = min(workers, os.cpu_count() or workers)
        self.queue_depth = (queue_depth if queue_depth is not None
                            else 2 * workers)
        if self.queue_depth < workers:
            raise ConfigError(
                f"queue_depth {self.queue_depth} starves the "
                f"{workers}-worker pool"
            )
        self.flags = flags
        self.params = params
        self.device = device
        self.cpu = cpu
        self.keep_outputs = keep_outputs
        self.obs = obs or NULL_CONTEXT
        self.plan_cache = PlanCache()
        self.buffer_pool = BufferPool(max_entries=workers + 1, device=device)
        self._worker_obs = _worker_view(self.obs)
        self._local = threading.local()

    # -- workers ---------------------------------------------------------------

    def _pipeline(self) -> GPUPipeline:
        """Per-thread pipeline sharing the engine's plan cache and pool."""
        pipe = getattr(self._local, "pipeline", None)
        if pipe is None:
            pipe = GPUPipeline(
                self.flags, self.params, self.device, self.cpu,
                obs=self._worker_obs, label="batch",
                plan_cache=self.plan_cache, buffer_pool=self.buffer_pool,
            )
            self._local.pipeline = pipe
        return pipe

    def _process(self, index: int, frame) -> GPUResult:
        if not isinstance(frame, Image):
            frame = Image.from_array(np.asarray(frame))
        return self._pipeline().run(frame)

    # -- main entry ------------------------------------------------------------

    def run(self, frames) -> BatchResult:
        """Process ``frames`` (iterable of arrays or Images), preserving
        order; blocks until every frame is done."""
        obs = self.obs
        result = BatchResult(workers=self.workers)
        inflight = threading.BoundedSemaphore(self.queue_depth)
        pending: deque = deque()

        def _collect(block: bool) -> None:
            while pending and (block or pending[0][1].done()):
                index, future = pending.popleft()
                res = future.result()
                result.frames.append(frame_stats(index, res))
                result.edge_means.append(res.edge_mean)
                if self.keep_outputs:
                    result.outputs.append(res.final)

        start = time.perf_counter()
        with obs.trace.span("batch.run", workers=self.workers):
            if self.effective_workers == 1:
                # One effective worker: dispatch inline.  A pool of one
                # thread computes the same serial schedule but pays a GIL
                # handoff + context switch per frame (~2 ms/frame measured
                # on a single-core host).
                for index, frame in enumerate(frames):
                    res = self._process(index, frame)
                    result.frames.append(frame_stats(index, res))
                    result.edge_means.append(res.edge_mean)
                    if self.keep_outputs:
                        result.outputs.append(res.final)
            else:
                with ThreadPoolExecutor(
                        max_workers=self.effective_workers,
                        thread_name_prefix="repro-batch") as pool:
                    for index, frame in enumerate(frames):
                        inflight.acquire()  # backpressure: bound in-flight
                        future = pool.submit(self._process, index, frame)
                        future.add_done_callback(
                            lambda _f: inflight.release())
                        pending.append((index, future))
                        _collect(block=False)
                    _collect(block=True)
        result.wall_seconds = time.perf_counter() - start
        if not result.frames:
            raise ValidationError("empty frame sequence")
        result.plan_stats = self.plan_cache.stats()
        result.pool_stats = self.buffer_pool.stats()

        if obs.enabled:
            metrics = obs.metrics
            metrics.gauge(
                "repro_batch_frames_per_second",
                "Wall-clock throughput of the last batch run",
            ).set(result.frames_per_second)
            metrics.gauge(
                "repro_batch_wall_seconds",
                "Wall-clock duration of the last batch run",
            ).set(result.wall_seconds)
            metrics.counter(
                "repro_batch_frames_total",
                "Frames processed by the batch engine",
            ).inc(result.n_frames)
            metrics.gauge(
                "repro_bufferpool_idle",
                "Idle workspaces parked in the buffer pool",
            ).set(result.pool_stats["idle"])
            obs.log.info(
                "batch.complete", frames=result.n_frames,
                workers=self.workers,
                effective_workers=self.effective_workers,
                wall_ms=result.wall_seconds * 1e3,
                fps=result.frames_per_second,
                plan_hits=result.plan_stats["hits"],
                plan_misses=result.plan_stats["misses"],
            )
        return result
