"""Device portability: which optimizations survive a hardware change.

The paper's kernels bake in FirePro facts — 64-wide wavefront lock-step in
the unrolled reductions, a 768x768 border crossover measured for one
PCI-E/CPU pairing, a map-vs-rw crossover for one link.  This module makes
those assumptions explicit:

* :func:`check_flags` lists the assumptions a flag set makes that a given
  device violates (most importantly: the unrolled reduction silently
  corrupts results on wavefronts narrower than 64 — the emulator-backed
  test suite demonstrates the corruption);
* :func:`retune` returns the nearest safe-and-sensible flag set for the
  device;
* :func:`device_tuning_summary` recomputes the device-specific critical
  values (border crossover, transfer-mode crossover) the paper measured
  "in advance" for the W8000.
"""

from __future__ import annotations

from ..kernels.reduction import KERNEL_WAVEFRONT
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470
from .config import OptimizationFlags
from .heuristics import BORDER_GPU_MIN_SIDE, border_crossover_side


def check_flags(flags: OptimizationFlags,
                device: DeviceSpec) -> list[str]:
    """Return human-readable warnings for device-unsafe flag choices."""
    warnings: list[str] = []
    if (flags.reduction_on_gpu and flags.reduction_unroll > 0
            and device.wavefront_size < KERNEL_WAVEFRONT):
        warnings.append(
            f"reduction_unroll={flags.reduction_unroll} hardcodes "
            f"{KERNEL_WAVEFRONT}-lane lock-step but {device.name} has "
            f"{device.wavefront_size}-wide wavefronts: the kernel would "
            f"silently produce wrong sums; use reduction_unroll=0"
        )
    if flags.border_place == "auto":
        native = border_crossover_side(device)
        if abs(native - BORDER_GPU_MIN_SIDE) > 256:
            warnings.append(
                f"the auto border threshold ({BORDER_GPU_MIN_SIDE}) was "
                f"measured for the W8000; on {device.name} the crossover "
                f"sits near {native} — consider re-tuning"
            )
    return warnings


def retune(flags: OptimizationFlags, device: DeviceSpec) -> OptimizationFlags:
    """Nearest safe flag set for ``device`` (drops invalid unrolling)."""
    if (flags.reduction_on_gpu and flags.reduction_unroll > 0
            and device.wavefront_size < KERNEL_WAVEFRONT):
        flags = flags.with_(reduction_unroll=0)
    return flags


def device_tuning_summary(device: DeviceSpec,
                          cpu: CPUSpec = I5_3470) -> dict[str, float]:
    """The device-specific critical values the paper measured in advance."""
    return {
        "border_crossover_side": float(border_crossover_side(device, cpu)),
        "transfer_crossover_bytes": float(device.pcie.crossover_bytes()),
        "wavefront_size": float(device.wavefront_size),
        "unrolled_reduction_valid": float(
            device.wavefront_size >= KERNEL_WAVEFRONT
        ),
    }
