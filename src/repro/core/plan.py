"""Execution plans: amortize per-frame pipeline setup across a stream.

``GPUPipeline.run`` derives the same facts from scratch on every frame of a
stream: which kernels the flag set implies, where the border and reduction
stage 2 run, every NDRange geometry, the reduction level chain, and — in the
simulation — the entire event timeline, which is a pure function of
``(shape, flags, device, cpu, mode)`` and never of pixel values (the dry-run
mode relies on exactly this property).

An :class:`ExecutionPlan` captures all of that once, from the first (fully
generic) run of a given :class:`PlanKey`, and replays it for every later
frame:

* the *decisions* (kernel set, placements, geometry, reduction levels) are
  stored and reused instead of re-derived;
* the *timeline* and per-stage times are shared as an immutable template —
  simulated costs are content-independent, so frame N's timeline is
  bit-identical to frame 1's;
* the *pixels* are produced by a specialized executor that writes into
  pooled scratch (see :mod:`repro.core.bufferpool`) with no per-frame
  allocations beyond the output plane itself.  The executor follows the
  same canonical operation order as :mod:`repro.algo.stages` (same
  association order in every sum, same reduction level chain), so cached
  and uncached runs produce **bit-identical** images and edge means — the
  test suite asserts ``np.array_equal``.

:class:`PlanCache` is a thread-safe LRU keyed on :class:`PlanKey`; its
hit/miss counters surface through the metrics registry as
``repro_plan_cache_requests_total{outcome=...}``.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..algo import stages as algo
from ..kernels.reduction import GROUP_SPAN, reduction_layout
from ..simgpu.device import CPUSpec, DeviceSpec
from ..simgpu.profiling import Timeline
from ..types import FLOAT, SharpnessParams, StageTimes
from . import heuristics
from .config import OptimizationFlags

#: ``x ** 0.5`` and ``sqrt(x)`` agree bitwise on IEEE-754 platforms numpy
#: targets; probe once so the fast executor only takes the sqrt shortcut
#: when the platform actually honours the identity.
_POW_PROBE = np.concatenate([
    np.array([0.0, 1.0, 2.0, 0.5, 255.0, 1e-300, 1e300], dtype=FLOAT),
    np.geomspace(1e-12, 1e12, 97, dtype=FLOAT),
])
POW_HALF_IS_SQRT = bool(
    np.array_equal(np.power(_POW_PROBE, FLOAT(0.5)), np.sqrt(_POW_PROBE))
)


@dataclass(frozen=True)
class PlanKey:
    """Identity of an execution plan.

    Params *values* are deliberately absent: the plan depends only on the
    params structure (they feed kernel arguments, not kernel selection or
    geometry), so one plan serves every tuning of the same shape/flags.
    """

    height: int
    width: int
    flags: OptimizationFlags
    device: DeviceSpec
    cpu: CPUSpec
    mode: str
    params_structure: str = SharpnessParams.__name__


def _reduction_levels(flags: OptimizationFlags,
                      n: int) -> tuple[tuple[tuple[int, int], ...], bool]:
    """Device-side reduction level chain ``((count, n_groups), ...)``.

    Mirrors ``GPUPipeline._reduce`` exactly: stage 1 always runs, further
    levels run while stage 2 sits on the GPU and the surviving partial
    count still exceeds one workgroup span.  Empty chain = reduction on CPU.
    """
    if not flags.reduction_on_gpu:
        return (), False
    n_groups, _, _ = reduction_layout(n)
    levels = [(n, n_groups)]
    stage2_gpu = heuristics.reduction_stage2_on_gpu(flags, n_groups)
    count = n_groups
    while stage2_gpu and count > GROUP_SPAN:
        ng2, _, _ = reduction_layout(count)
        levels.append((count, ng2))
        count = ng2
    return tuple(levels), stage2_gpu


def _group_sums(flat: np.ndarray, count: int, n_groups: int) -> np.ndarray:
    """Per-workgroup sums of ``flat[:count]`` with the default span.

    Bit-identical to the functional reduction kernel's per-slice ``.sum()``
    loop: a contiguous row of a reshape and the equivalent 1-D slice run
    the same pairwise summation.
    """
    span = GROUP_SPAN
    full = count // span
    if full == n_groups:
        return flat[:count].reshape(n_groups, span).sum(axis=1)
    partials = np.empty(n_groups, dtype=FLOAT)
    if full:
        partials[:full] = flat[:full * span].reshape(full, span).sum(axis=1)
    partials[full] = flat[full * span:count].sum()
    return partials


@dataclass
class ExecutionPlan:
    """Everything frame-invariant about one pipeline configuration."""

    key: PlanKey
    border_gpu: bool
    stage2_gpu: bool
    #: Device-side reduction levels as ``(count, n_groups)`` pairs.
    reduction_levels: tuple[tuple[int, int], ...]
    #: Kernel names of the flag set (introspection / logs).
    kernels: tuple[str, ...]
    #: ``stage -> (global_size, local_size)`` NDRange geometry.
    geometry: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    #: Immutable per-frame timeline template (content-independent costs).
    timeline: Timeline
    times: StageTimes
    kernel_launches: int
    #: Observability replay: command counts by kind, simulated kernel
    #: durations by kernel name, transfer bytes by direction.
    cmd_counts: dict[str, int] = field(default_factory=dict)
    kernel_durations: dict[str, tuple[float, ...]] = field(
        default_factory=dict)
    transfer_bytes: dict[str, int] = field(default_factory=dict)

    # -- capture --------------------------------------------------------------

    @classmethod
    def capture(cls, key: PlanKey, *, timeline: Timeline, times: StageTimes,
                border_gpu: bool, stage2_gpu: bool,
                kernels: tuple[str, ...],
                geometry: dict[str, tuple[tuple[int, ...], tuple[int, ...]]],
                transfer_bytes: dict[str, int]) -> "ExecutionPlan":
        """Build a plan from the artifacts of one generic reference run."""
        cmd_counts = dict(Counter(ev.kind for ev in timeline.events))
        durations: dict[str, list[float]] = {}
        for ev in timeline.events:
            if ev.kind == "kernel":
                name = ev.name.removeprefix("kernel:")
                durations.setdefault(name, []).append(ev.duration)
        levels, level_stage2 = _reduction_levels(
            key.flags, key.height * key.width)
        if level_stage2 != stage2_gpu:  # pragma: no cover - consistency
            raise AssertionError("reduction placement drifted from capture")
        return cls(
            key=key,
            border_gpu=border_gpu,
            stage2_gpu=stage2_gpu,
            reduction_levels=levels,
            kernels=kernels,
            geometry=geometry,
            timeline=timeline,
            times=times,
            kernel_launches=len(timeline.of_kind("kernel")),
            cmd_counts=cmd_counts,
            kernel_durations={k: tuple(v) for k, v in durations.items()},
            transfer_bytes=dict(transfer_bytes),
        )

    # -- observability replay -------------------------------------------------

    def replay_observability(self, obs) -> None:
        """Re-emit the reference run's queue-level metrics for one frame.

        Cached frames never touch a :class:`~repro.cl.queue.CommandQueue`,
        so the per-command counters/histograms the queue would have recorded
        are replayed from the capture instead; counts and values match the
        uncached run exactly (per-command debug *log lines* are not
        replayed).
        """
        if not obs.enabled:
            return
        commands = obs.metrics.counter(
            "repro_cl_commands_total", "Enqueued commands by kind",
            ("kind",),
        )
        for kind, count in self.cmd_counts.items():
            commands.labels(kind=kind).inc(count)
        transfers = obs.metrics.counter(
            "repro_cl_transfer_bytes_total",
            "Host<->device bytes moved over the simulated PCI-E link",
            ("direction",),
        )
        for direction, nbytes in self.transfer_bytes.items():
            if nbytes:
                transfers.labels(direction=direction).inc(nbytes)
        kernel_hist = obs.metrics.histogram(
            "repro_cl_kernel_seconds",
            "Simulated kernel duration per dispatched kernel (seconds)",
            ("kernel",),
        )
        for kernel, durations in self.kernel_durations.items():
            child = kernel_hist.labels(kernel=kernel)
            for duration in durations:
                child.observe(duration)

    # -- specialized frame executor -------------------------------------------

    def execute(self, plane: np.ndarray, params: SharpnessParams,
                ws) -> tuple[np.ndarray, float]:
        """Sharpen one frame through pooled scratch; allocation-free steady
        state apart from the returned output plane (which the caller owns).

        ``ws`` is a :class:`~repro.core.bufferpool.Workspace` of matching
        shape.  Every operation reproduces the canonical stage functions'
        float association order, so the result is bit-identical to the
        generic kernel path.
        """
        h, w = self.key.height, self.key.width

        # ---- downscale: non-overlapping 4x4 block means ---------------------
        # Explicit slice adds in reduce order: np.add.reduce over a length-4
        # axis is sequential (((a0+a1)+a2)+a3), so this matches
        # ``blocks.sum(axis=(1, 3))`` bit for bit at a third of the cost
        # (the multi-axis strided reduce is iteration-bound).
        down = ws.down
        cols = plane.reshape(h, w // 4, 4)
        s1 = ws.colsum
        np.add(cols[:, :, 0], cols[:, :, 1], out=s1)
        np.add(s1, cols[:, :, 2], out=s1)
        np.add(s1, cols[:, :, 3], out=s1)
        rows4 = s1.reshape(h // 4, 4, w // 4)
        np.add(rows4[:, 0], rows4[:, 1], out=down)
        np.add(down, rows4[:, 2], out=down)
        np.add(down, rows4[:, 3], out=down)
        np.divide(down, FLOAT(16.0), out=down)

        # ---- upscale body (separable, same order as _interp_body_axis0) -----
        rows = ws.rows
        a, b = down[:-1], down[1:]
        for k in range(4):
            wl, wr = algo.UPSCALE_P[k]
            np.add(wl * a, wr * b, out=rows[k::4])
        # Second (column) pass straight into the body view: element [i, 4q+k]
        # is wl*rows[i, q] + wr*rows[i, q+1] — the same scalar expression the
        # transpose formulation produces, without materializing the
        # transposed intermediate.
        up = ws.up
        body = up[2:h - 2, 2:w - 2]
        ra, rb = rows[:, :-1], rows[:, 1:]
        for k in range(4):
            wl, wr = algo.UPSCALE_P[k]
            np.add(wl * ra, wr * rb, out=body[:, k::4])
        # Border lines: host construction regardless of the GPU/CPU
        # placement — both placements produce identical values (asserted by
        # the flag-equivalence tests); the placement only shapes the
        # (already captured) timeline.
        algo.upscale_border_apply(up, down)

        # ---- Sobel (separable; association order matches algo.sobel) --------
        tcol, urow = ws.tcol, ws.urow
        np.multiply(plane[1:h - 1], 2.0, out=tcol)
        np.add(plane[0:h - 2], tcol, out=tcol)
        np.add(tcol, plane[2:h], out=tcol)
        gx = np.subtract(tcol[:, 2:], tcol[:, :-2], out=ws.gx)
        np.multiply(plane[:, 1:w - 1], 2.0, out=urow)
        np.add(plane[:, 0:w - 2], urow, out=urow)
        np.add(urow, plane[:, 2:w], out=urow)
        gy = np.subtract(urow[2:], urow[:-2], out=ws.gy)
        np.abs(gx, out=gx)
        np.abs(gy, out=gy)
        edge = ws.edge  # border ring is kept zero by Workspace.reset()
        np.add(gx, gy, out=edge[1:h - 1, 1:w - 1])

        # ---- reduction: exact level chain of the capture ---------------------
        n = h * w
        if not self.reduction_levels:
            edge_mean = float(edge.sum()) / n
        else:
            flat = edge.ravel()
            for count, n_groups in self.reduction_levels:
                flat = _group_sums(flat, count, n_groups)
            edge_mean = float(flat.sum()) / n

        # ---- fused sharpness tail (interior only) ---------------------------
        # On the one-pixel border the edge map is zero (the ring the
        # workspace keeps zeroed), so strength is zero there and the
        # preliminary image equals ``up`` — compute err/strength/prelim on
        # the contiguous interior and take the border from ``up`` below.
        pi = plane[1:h - 1, 1:w - 1]
        ui = up[1:h - 1, 1:w - 1]
        err = np.subtract(pi, ui, out=ws.err)
        strength = ws.strength
        if edge_mean <= 0.0:
            strength[...] = 0.0
        else:
            np.divide(edge[1:h - 1, 1:w - 1], FLOAT(edge_mean),
                      out=strength)
            if params.gamma == 0.5 and POW_HALF_IS_SQRT:
                np.sqrt(strength, out=strength)
            else:
                np.power(strength, FLOAT(params.gamma), out=strength)
            np.multiply(strength, FLOAT(params.gain), out=strength)
            np.clip(strength, 0.0, params.strength_max, out=strength)
        prelim = ws.prelim
        np.multiply(strength, err, out=prelim)
        np.add(ui, prelim, out=prelim)

        # ---- overshoot control (separable 3x3 min/max, sparse blend) --------
        osc = FLOAT(params.overshoot)
        mnc, mxc = ws.mnc, ws.mxc
        np.minimum(plane[:, 0:w - 2], plane[:, 1:w - 1], out=mnc)
        np.minimum(mnc, plane[:, 2:w], out=mnc)
        np.maximum(plane[:, 0:w - 2], plane[:, 1:w - 1], out=mxc)
        np.maximum(mxc, plane[:, 2:w], out=mxc)
        mn, mx = ws.mn, ws.mx
        np.minimum(mnc[0:h - 2], mnc[1:h - 1], out=mn)
        np.minimum(mn, mnc[2:h], out=mn)
        np.maximum(mxc[0:h - 2], mxc[1:h - 1], out=mx)
        np.maximum(mx, mxc[2:h], out=mx)

        final = np.empty((h, w), dtype=FLOAT)
        body = prelim  # contiguous (h-2, w-2)
        np.clip(body, 0.0, 255.0, out=final[1:h - 1, 1:w - 1])
        # Sparse blend through flat integer indices: boolean fancy indexing
        # walks the mask per element, flatnonzero + take/scatter only touches
        # the (typically ~10-20%) overshooting pixels.
        np.greater(body, mx, out=ws.over)
        np.less(body, mn, out=ws.under)
        final_flat = final.ravel()
        body_flat = body.ravel()
        wi = w - 2
        for idx_ws, bound, ref in ((ws.over, mx, True), (ws.under, mn, False)):
            idx = np.flatnonzero(idx_ws)
            if idx.size == 0:
                continue
            bv = np.take(body_flat, idx)
            lv = np.take(bound.ravel(), idx)
            if ref:
                vals = np.minimum(lv + osc * (bv - lv), 255.0)
            else:
                vals = np.maximum(lv - osc * (lv - bv), 0.0)
            # interior index (r, c) -> final index (r+1, c+1), flattened
            final_flat[idx + 2 * (idx // wi) + w + 1] = vals

        np.clip(up[0], 0.0, 255.0, out=final[0])
        np.clip(up[h - 1], 0.0, 255.0, out=final[h - 1])
        np.clip(up[:, 0], 0.0, 255.0, out=final[:, 0])
        np.clip(up[:, w - 1], 0.0, 255.0, out=final[:, w - 1])
        return final, edge_mean


class PlanCache:
    """Thread-safe LRU cache of :class:`ExecutionPlan` by :class:`PlanKey`."""

    def __init__(self, maxsize: int = 32) -> None:
        from ..errors import ConfigError

        if maxsize < 1:
            raise ConfigError(f"plan cache maxsize must be >= 1, "
                              f"got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[PlanKey, ExecutionPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, key: PlanKey) -> ExecutionPlan | None:
        """Look up a plan; counts a hit or a miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._plans)}
