"""Transfer planning: the section V.A data-movement strategies.

:class:`TransferPlanner` hides the map/unmap vs read/write choice behind
``upload``/``download`` so the pipeline body reads mode-independently, and
implements the padded-original upload three ways:

* base: pad on the host (billed CPU memcpy) and bulk-upload the padded
  matrix, *plus* a separate upload of the unpadded original (the wasteful
  double transfer the paper starts from);
* ``transfer_padded_only`` without ``pad_on_transfer``: host pad + one bulk
  upload;
* ``pad_on_transfer``: a single ``clEnqueueWriteBufferRect`` that writes the
  original into the interior of the padded buffer during the transfer.
"""

from __future__ import annotations

import numpy as np

from ..cl.buffer import Buffer
from ..cl.queue import CommandQueue
from ..cpu.cost import padding_host_time
from ..simgpu.device import CPUSpec


class TransferPlanner:
    """Mode-aware host<->device transfers for the pipeline."""

    def __init__(self, queue: CommandQueue, mode: str,
                 cpu: CPUSpec) -> None:
        self.queue = queue
        self.mode = mode
        self.cpu = cpu

    # -- generic moves -------------------------------------------------------

    def upload(self, buf: Buffer, host: np.ndarray, *, stage: str) -> None:
        if self.mode == "rw":
            self.queue.enqueue_write_buffer(buf, host, stage=stage)
        else:
            mapped = self.queue.enqueue_map_buffer(buf, write=True,
                                                   stage=stage)
            mapped[...] = host
            self.queue.enqueue_unmap(buf, mapped, stage=stage)

    def download(self, buf: Buffer, *, stage: str) -> np.ndarray:
        if self.mode == "rw":
            return self.queue.enqueue_read_buffer(buf, stage=stage)
        host = self.queue.enqueue_map_buffer(buf, write=False, stage=stage)
        self.queue.enqueue_unmap(buf, stage=stage)
        return host

    # -- padded-original upload (section V.A) ---------------------------------

    def upload_padded(self, padded_buf: Buffer, plane: np.ndarray, *,
                      pad_on_transfer: bool, stage: str = "data_init") -> None:
        """Populate the (h+2)x(w+2) padded buffer from the h x w plane."""
        h, w = plane.shape
        if pad_on_transfer:
            # Zero ring is the buffer's initial state; the rect write lands
            # the plane in the interior during the transfer itself.
            self.queue.enqueue_write_buffer_rect(
                padded_buf, plane, (1, 1), stage=stage
            )
            return
        # Host-side padding: build the padded matrix on the CPU (billed as
        # a host step), then one bulk upload.
        padded_host = np.zeros((h + 2, w + 2), dtype=plane.dtype)
        padded_host[1 : h + 1, 1 : w + 1] = plane
        self.queue.host_step(
            "pad_host", padding_host_time(h, w, self.cpu), stage="padding"
        )
        self.upload(padded_buf, padded_host, stage=stage)
