"""Placement heuristics: the "tested in advance" critical values.

The paper determines two placement thresholds empirically:

* the upscale border runs on the CPU below 768x768 and on the GPU above
  (section V.E / Fig. 17);
* the second reduction stage runs on the CPU while the stage-1 partial
  count is small, on the GPU once "the results of first stage will be
  abundant" (section V.C).

``border_crossover_side`` recomputes the border crossover from the cost
model (the analogue of the paper's advance testing); the shipped constant
:data:`BORDER_GPU_MIN_SIDE` is the paper's value, which the experiment suite
checks against the model's own crossover.
"""

from __future__ import annotations

import functools

from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from .config import OptimizationFlags

#: Side length at and above which the upscale border runs on the GPU
#: (Fig. 17: "the critical value is 768x768 bytes").
BORDER_GPU_MIN_SIDE = 768

#: Stage-1 partial count above which reduction stage 2 runs on the GPU.
#: 4096 partials corresponds to a ~2048x2048 image with the 1024-element
#: workgroup span; below that the partial array ships to the host in one
#: small transfer.
REDUCTION_STAGE2_GPU_MIN_PARTIALS = 4096


@functools.lru_cache(maxsize=4096)
def border_on_gpu(flags: OptimizationFlags, h: int, w: int) -> bool:
    """Resolve the border placement for an ``h x w`` image.

    Pure in hashable inputs (``OptimizationFlags`` is frozen), so the
    per-frame resolution is memoized."""
    if flags.border_place == "gpu":
        return True
    if flags.border_place == "cpu":
        return False
    return min(h, w) >= BORDER_GPU_MIN_SIDE


@functools.lru_cache(maxsize=4096)
def reduction_stage2_on_gpu(flags: OptimizationFlags,
                            n_partials: int) -> bool:
    """Resolve the stage-2 placement given the stage-1 partial count
    (memoized, like :func:`border_on_gpu`)."""
    if flags.reduction_stage2 == "gpu":
        return True
    if flags.reduction_stage2 == "cpu":
        return False
    return n_partials > REDUCTION_STAGE2_GPU_MIN_PARTIALS


def border_gpu_time(h: int, w: int, device: DeviceSpec = W8000,
                    *, builtins: bool = False) -> float:
    """Model time of the GPU border path (kernel only)."""
    from ..kernels.upscale_border import (
        BORDER_GLOBAL,
        BORDER_LOCAL,
        make_upscale_border_spec,
    )
    from ..simgpu.costmodel import kernel_time

    spec = make_upscale_border_spec(builtins=builtins)
    cost = spec.cost(device, BORDER_GLOBAL, BORDER_LOCAL,
                     (None, None, h, w))
    return kernel_time(cost, device)


def border_cpu_time(h: int, w: int, device: DeviceSpec = W8000,
                    cpu: CPUSpec = I5_3470, *,
                    transfer_mode: str = "rw") -> float:
    """Model time of the CPU border path, including its PCI-E round trip.

    The CPU path reads the downscaled matrix back, computes the four lines
    on the host, and writes the upscaled buffer (with only its border
    populated) to the device — the transfers the paper calls "a huge
    performance cost".
    """
    from ..cpu.cost import border_host_time

    down_bytes = (h // 4) * (w // 4) * 4
    up_bytes = h * w * 4
    pcie = device.pcie
    if transfer_mode == "rw":
        transfers = pcie.rw_time(down_bytes) + pcie.rw_time(up_bytes)
    else:
        transfers = pcie.map_time(down_bytes) + pcie.map_time(up_bytes)
    return transfers + border_host_time(h, w, cpu)


@functools.lru_cache(maxsize=128)
def border_crossover_side(device: DeviceSpec = W8000,
                          cpu: CPUSpec = I5_3470, *,
                          transfer_mode: str = "rw",
                          lo: int = 64, hi: int = 8192) -> int:
    """Smallest side (multiple of 64) from which the GPU border path wins
    for *every* larger size.

    This is the model-side analogue of the paper's advance testing of the
    critical value.  The comparison is not monotone at tiny sizes (the CPU
    path's fixed per-transfer overheads briefly exceed the GPU launch cost),
    so the scan runs from the top down to find the last CPU win.
    """
    crossover = lo
    side = hi
    while side >= lo:
        gpu = border_gpu_time(side, side, device)
        cpu_t = border_cpu_time(side, side, device, cpu,
                                transfer_mode=transfer_mode)
        if gpu > cpu_t:
            crossover = side + 64
            break
        side -= 64
    return min(crossover, hi)
