"""Kernel-set construction: which kernels exist under which flags.

This is the simulated analogue of compiling different kernel source for
different optimization levels.  The unfused tail is three kernels (pError,
prelim, overshoot); fusion replaces them with the single sharpness kernel of
section V.B.  Vectorization swaps Sobel / sharpness / upscale-center for
their 4-wide variants; ``builtins`` recompiles everything with built-in
functions and shift/mask instruction selection.
"""

from __future__ import annotations

from ..cl.kernel import KernelSpec
from ..kernels import (
    make_downscale_spec,
    make_overshoot_spec,
    make_perror_spec,
    make_prelim_spec,
    make_reduction_spec,
    make_sharpness_fused_spec,
    make_sobel_spec,
    make_upscale_border_spec,
    make_upscale_center_spec,
)
from .config import OptimizationFlags


def build_kernel_set(flags: OptimizationFlags) -> dict[str, KernelSpec]:
    """Return the kernel specs the pipeline enqueues under ``flags``.

    Keys are role names (stable across variants): ``downscale``, ``center``,
    ``border``, ``sobel``, ``reduction``, and either ``sharpness`` (fused)
    or ``perror`` + ``prelim`` + ``overshoot`` (unfused).
    """
    padded = flags.transfer_padded_only
    vec = flags.vectorize
    b = flags.builtins

    kernels: dict[str, KernelSpec] = {
        "downscale": make_downscale_spec(padded=padded, builtins=b),
        "center": make_upscale_center_spec(vector=vec, builtins=b),
        "border": make_upscale_border_spec(builtins=b),
        "sobel": make_sobel_spec(padded=padded, vector=vec, builtins=b),
        "reduction": make_reduction_spec(unroll=flags.reduction_unroll,
                                         builtins=b),
    }
    if flags.fuse_sharpness:
        kernels["sharpness"] = make_sharpness_fused_spec(
            padded=padded, vector=vec, builtins=b
        )
    else:
        kernels["perror"] = make_perror_spec(padded=padded, builtins=b)
        kernels["prelim"] = make_prelim_spec(builtins=b)
        # The overshoot kernel always reads the padded original (that is
        # why the base pipeline transfers the padded matrix at all).
        kernels["overshoot"] = make_overshoot_spec(padded=True, builtins=b)
    return kernels
