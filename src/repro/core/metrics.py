"""Stage-level aggregation of the simulated timeline (Fig. 13 reports).

The pipeline tags every event with a stage label; this module groups them
into the stage vocabulary of Fig. 13(b)/(c): ``data_init`` (all host<->device
traffic of the original and final images), ``padding``, ``downscale``,
``border``, ``center``, ``sobel``, ``reduction``, ``sharpness``.
"""

from __future__ import annotations

from ..simgpu.profiling import Timeline
from ..types import StageTimes

#: Fig. 13(b)/(c) stage order for reports.
GPU_STAGE_ORDER = (
    "data_init",
    "padding",
    "downscale",
    "border",
    "center",
    "sobel",
    "reduction",
    "sharpness",
)

#: Sub-stage labels folded into the Fig. 13 vocabulary.  The unfused
#: pipeline's pError / prelim / overshoot kernels report as "sharpness",
#: matching how the paper groups them in Fig. 13(b); ``clFinish`` overhead
#: is attributed to the synchronization-heavy launch path.
STAGE_MERGE = {
    "perror": "sharpness",
    "prelim": "sharpness",
    "overshoot": "sharpness",
    "sync": "data_init",
    "readback": "data_init",
}


def stage_times_from_timeline(timeline: Timeline) -> StageTimes:
    """Aggregate a pipeline timeline into the Fig. 13 stage vocabulary."""
    times = StageTimes()
    for stage, seconds in timeline.by_stage().items():
        times.add(STAGE_MERGE.get(stage, stage), seconds)
    return times


def ordered_fractions(times: StageTimes) -> dict[str, float]:
    """Stage fractions in Fig. 13 order (missing stages reported as 0)."""
    fracs = times.fractions()
    out = {stage: fracs.pop(stage, 0.0) for stage in GPU_STAGE_ORDER}
    out.update(fracs)  # anything unexpected goes last, visibly
    return out
