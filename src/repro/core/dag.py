"""Intra-frame dependency analysis: what a single run could overlap.

The paper's host code is one in-order queue: every command waits for the
previous one.  But the algorithm's true dependency graph is looser — Sobel
only needs the uploaded original, so it can run while the upscale branch's
border round-trip is in flight; the final readback is the only consumer of
the sharpness kernel.  This module reconstructs that stage DAG from a
recorded in-order timeline and re-schedules it on the DMA/compute/host
engines (:mod:`repro.simgpu.schedule`), quantifying how much of the
remaining time is serialization the paper's queue structure imposes rather
than inherent work.

Stage dependencies (events within one stage stay chained in recorded
order):

* ``upload`` (the data_init writes) waits only for host ``padding``;
* ``downscale`` and ``sobel`` wait for the upload;
* ``border`` waits for downscale; ``center`` for downscale *and* border
  (the CPU border path rewrites the whole upscaled buffer);
* ``reduction`` waits for sobel;
* the sharpness tail (fused ``sharpness``, or ``perror``/``prelim``/
  ``overshoot``) waits for its actual inputs;
* ``readback`` waits for the tail.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..simgpu.profiling import Event, Timeline
from ..simgpu.schedule import KIND_TO_RESOURCE, ResourceScheduler

#: Virtual stages: the pipeline labels both directions of host<->device
#: traffic "data_init"; the DAG needs them apart.
UPLOAD = "upload"
READBACK = "readback"

#: Prerequisite stages of each stage's first event.
STAGE_DEPS: dict[str, tuple[str, ...]] = {
    "padding": (),
    UPLOAD: ("padding",),
    "downscale": (UPLOAD,),
    "sobel": (UPLOAD,),
    "border": ("downscale",),
    "center": ("downscale", "border"),
    "reduction": ("sobel",),
    "sharpness": ("center", "border", "reduction", UPLOAD),
    "perror": ("center", "border", UPLOAD),
    "prelim": ("perror", "reduction"),
    "overshoot": ("prelim", UPLOAD),
    READBACK: ("sharpness", "overshoot"),
}


def _classify(event: Event) -> str:
    if event.stage == "data_init":
        if event.name.startswith(("read:", "map-read:", "read-part:")):
            return READBACK
        return UPLOAD
    return event.stage


def _add_run(sched: ResourceScheduler, timeline: Timeline,
             prefix: str = "") -> None:
    """Register one run's events on ``sched`` with stage-DAG dependencies."""
    if not timeline.events:
        raise ValidationError("empty timeline")
    last_op_of_stage: dict[str, int] = {}
    for event in timeline.events:
        stage = _classify(event)
        if stage in last_op_of_stage:
            deps: tuple[int, ...] = (last_op_of_stage[stage],)
        else:
            prereqs = STAGE_DEPS.get(stage)
            if prereqs is None:
                raise ValidationError(
                    f"unknown pipeline stage {stage!r} in timeline"
                )
            deps = tuple(
                last_op_of_stage[p] for p in prereqs
                if p in last_op_of_stage
            )
        resource = KIND_TO_RESOURCE.get(event.kind, "compute")
        last_op_of_stage[stage] = sched.add(
            prefix + event.name, event.kind, event.duration, resource,
            deps, stage=event.stage,
        )


def overlap_single_run(timeline: Timeline) -> Timeline:
    """Re-schedule one pipeline timeline along its true stage DAG.

    Returns the overlapped timeline; its makespan is the run's critical
    path over the three engines.
    """
    sched = ResourceScheduler()
    _add_run(sched, timeline)
    return sched.schedule()


def overlap_stream(timelines: list[Timeline]) -> Timeline:
    """Re-schedule a frame stream with per-frame stage DAGs.

    Strictly more overlap than
    :func:`repro.simgpu.schedule.pipelined_schedule` (which keeps each
    frame's events serially chained): here frames exploit both intra-frame
    slack and cross-frame engine pipelining.
    """
    if not timelines:
        raise ValidationError("no timelines to schedule")
    sched = ResourceScheduler()
    for f, tl in enumerate(timelines):
        _add_run(sched, tl, prefix=f"f{f}:")
    return sched.schedule()


def serialization_overhead(timeline: Timeline) -> float:
    """Fraction of the in-order run that is queue serialization.

    ``0`` means the in-order queue is already optimal for this run;
    ``0.3`` means 30% of the time could be hidden by expressing the true
    dependencies across multiple queues.
    """
    overlapped = overlap_single_run(timeline)
    if timeline.total <= 0:
        return 0.0
    return 1.0 - overlapped.total / timeline.total
