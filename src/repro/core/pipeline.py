"""The GPU sharpness pipeline under arbitrary optimization flags.

``GPUPipeline.run`` executes the whole algorithm on the simulated device the
way the paper's host code does: allocate buffers, move the input according
to the transfer strategy, enqueue the kernel sequence the flag set implies
(with or without fusion / vectorization / GPU reduction / GPU border), and
read the final image back.  The result carries the output plane, the full
simulated event timeline, and the Fig.-13-style stage breakdown.

The functional execution mode computes real pixel values (all flag
combinations produce the same image up to float64 round-off — the test
suite asserts this); the emulate mode additionally runs every kernel
work-item by work-item for small images.

Frame streams reuse work across runs: the first functional run of a given
``(shape, flags, device, cpu)`` captures an
:class:`~repro.core.plan.ExecutionPlan` and later frames replay it through
the :class:`~repro.core.bufferpool.BufferPool` — bit-identical output,
identical simulated timeline, a fraction of the host cost (see
``docs/performance.md``; disable with ``caching=False``).
"""

from __future__ import annotations

import functools

from dataclasses import dataclass, field

import numpy as np

from ..cl.buffer import Buffer
from ..cl.context import Context
from ..cl.queue import CommandQueue
from ..cpu.cost import border_host_time, reduction_host_time
from ..algo import stages as algo
from ..kernels.base import round_up
from ..kernels.reduction import GROUP_SPAN, reduction_layout
from ..kernels.upscale_border import BORDER_GLOBAL, BORDER_LOCAL
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..simgpu.device import CPUSpec, DeviceSpec, I5_3470, W8000
from ..simgpu.profiling import Timeline
from ..types import Image, SharpnessParams, StageTimes
from . import heuristics
from .bufferpool import BufferPool
from .config import OPTIMIZED, OptimizationFlags
from .fusion import build_kernel_set
from .metrics import GPU_STAGE_ORDER, stage_times_from_timeline
from .plan import ExecutionPlan, PlanCache, PlanKey
from .transfer import TransferPlanner

#: Workgroup tile for 2-D pixel kernels (16x16 = 256 = the W8000 limit).
_TILE = 16


@functools.lru_cache(maxsize=4096)
def _grid2d(nx: int, ny: int, tile: int = _TILE) -> tuple[tuple[int, int],
                                                           tuple[int, int]]:
    """NDRange covering an ``nx x ny`` output with bounds-checked padding
    (pure in its integer inputs, hence memoized)."""
    return (round_up(nx, tile), round_up(ny, tile)), (tile, tile)


@dataclass
class GPUResult:
    """Output of one simulated GPU pipeline run."""

    final: np.ndarray
    times: StageTimes
    timeline: Timeline
    edge_mean: float
    flags: OptimizationFlags
    border_ran_on_gpu: bool
    reduction_stage2_on_gpu: bool
    kernel_launches: int = 0
    intermediates: dict[str, np.ndarray] = field(default_factory=dict)
    #: Which backend produced the pixels: ``"gpu"`` for the simulated
    #: device path, ``"cpu-fallback"`` when the resilience layer served
    #: the frame from :class:`~repro.cpu.CPUPipeline`.
    backend: str = "gpu"

    @property
    def total_time(self) -> float:
        return self.timeline.total

    def final_u8(self) -> np.ndarray:
        return np.clip(np.rint(self.final), 0, 255).astype(np.uint8)


class GPUPipeline:
    """The paper's sharpness pipeline on the simulated FirePro W8000.

    Parameters
    ----------
    flags:
        Optimization configuration (defaults to the fully optimized preset).
    params:
        Sharpening tuning parameters.
    device / cpu:
        Hardware specs (Table I defaults).
    mode:
        ``"functional"`` (fast) or ``"emulate"`` (per-work-item, small
        images only).
    keep_intermediates:
        Retain intermediate device buffers on the result.
    obs:
        Optional :class:`~repro.obs.RunContext`.  When given, every run
        emits host spans per stage, merges the simulated device timeline
        into the trace, and records per-stage duration histograms
        (``repro_stage_seconds``) plus transfer/kernel counters.
    label:
        Pipeline label used in metrics and logs (``"gpu"`` by default;
        experiments use e.g. ``"base"`` / ``"optimized"``).
    caching:
        Reuse an :class:`~repro.core.plan.ExecutionPlan` across frames of
        the same shape (on by default).  The first run of a shape executes
        the fully generic path and captures a plan; later runs replay it
        through pooled buffers, producing bit-identical images, the same
        simulated timeline, and the same metrics at a fraction of the
        wall-clock cost.  ``caching=False`` restores the plan-free
        per-frame behaviour (the throughput benchmark's baseline).
        Emulate/dry-run modes and ``keep_intermediates`` always take the
        generic path.
    plan_cache / buffer_pool:
        Share a :class:`~repro.core.plan.PlanCache` /
        :class:`~repro.core.bufferpool.BufferPool` across pipelines (the
        batch engine does); by default each caching pipeline owns its own.
    """

    def __init__(self, flags: OptimizationFlags = OPTIMIZED,
                 params: SharpnessParams | None = None,
                 device: DeviceSpec = W8000, cpu: CPUSpec = I5_3470,
                 *, mode: str = "functional",
                 keep_intermediates: bool = False,
                 obs: RunContext | None = None,
                 label: str = "gpu",
                 caching: bool = True,
                 plan_cache: PlanCache | None = None,
                 buffer_pool: BufferPool | None = None) -> None:
        from ..errors import ConfigError
        from ..kernels.reduction import KERNEL_WAVEFRONT

        if (flags.reduction_on_gpu and flags.reduction_unroll > 0
                and device.wavefront_size < KERNEL_WAVEFRONT):
            raise ConfigError(
                f"reduction_unroll={flags.reduction_unroll} assumes "
                f"{KERNEL_WAVEFRONT}-lane wavefronts; {device.name} has "
                f"{device.wavefront_size} (would corrupt results) — use "
                f"reduction_unroll=0 or core.portability.retune()"
            )
        self.flags = flags
        self.params = params or SharpnessParams()
        self.device = device
        self.cpu = cpu
        self.mode = mode
        self.keep_intermediates = keep_intermediates
        self.obs = obs or NULL_CONTEXT
        self.label = label
        self.caching = caching
        self.plan_cache = plan_cache if plan_cache is not None else (
            PlanCache() if caching else None)
        self.buffer_pool = buffer_pool if buffer_pool is not None else (
            BufferPool(device=device, obs=self.obs) if caching else None)

    # -- helpers -------------------------------------------------------------

    def _launch(self, queue: CommandQueue, spec, args, global_size,
                local_size, stage: str) -> None:
        kernel = spec.create().set_args(*args)
        queue.enqueue_nd_range(kernel, global_size, local_size, stage=stage)
        if not self.flags.eliminate_sync:
            queue.finish(stage=stage)

    # -- main entry -----------------------------------------------------------

    def run(self, image: Image | np.ndarray) -> GPUResult:
        if not isinstance(image, Image):
            image = Image.from_array(np.asarray(image))
        obs = self.obs
        with obs.trace.span("gpu.run", pipeline=self.label,
                            h=image.height, w=image.width, mode=self.mode):
            key = self._plan_key(image) if self._plan_eligible() else None
            plan = self.plan_cache.get(key) if key is not None else None
            if key is not None and obs.enabled:
                obs.metrics.counter(
                    "repro_plan_cache_requests_total",
                    "ExecutionPlan cache lookups by outcome",
                    ("outcome",),
                ).labels(outcome="hit" if plan is not None else "miss").inc()
            if plan is not None:
                result = self._run_planned(image, plan, obs)
            else:
                result, queue = self._run_instrumented(image, obs)
                if key is not None:
                    self.plan_cache.put(
                        key, self._capture_plan(key, result, queue))
        obs.observe_stages(self.label, result.times.times,
                           declare=GPU_STAGE_ORDER)
        obs.record_run(self.label, result.total_time)
        if obs.enabled:
            obs.trace.merge_timeline(
                result.timeline,
                label=f"{self.device.name} [{self.label}]",
            )
            obs.log.info(
                "pipeline.complete", pipeline=self.label,
                h=image.height, w=image.width,
                simulated_ms=result.total_time * 1e3,
                kernel_launches=result.kernel_launches,
                border_on_gpu=result.border_ran_on_gpu,
                reduction_stage2_on_gpu=result.reduction_stage2_on_gpu,
            )
        return result

    # -- execution-plan caching ------------------------------------------------

    def _plan_eligible(self) -> bool:
        """Cached execution covers the pixel-producing functional mode only;
        emulation, dry runs and intermediate capture stay fully generic."""
        return (self.caching and self.plan_cache is not None
                and self.buffer_pool is not None
                and self.mode == "functional"
                and not self.keep_intermediates)

    def _plan_key(self, image: Image) -> PlanKey:
        return PlanKey(
            height=image.height, width=image.width, flags=self.flags,
            device=self.device, cpu=self.cpu, mode=self.mode,
            params_structure=type(self.params).__name__,
        )

    def _plan_geometry(self, h: int, w: int) -> dict:
        """The NDRange geometry of every launch the flag set implies."""
        flags = self.flags
        geometry = {"downscale": _grid2d(w // 4, h // 4)}
        if heuristics.border_on_gpu(flags, h, w):
            geometry["border"] = (BORDER_GLOBAL, BORDER_LOCAL)
        if flags.vectorize:
            geometry["center"] = _grid2d((w - 4) // 4, (h - 4) // 4)
            geometry["sobel"] = _grid2d(round_up(w, 4) // 4, h)
        else:
            geometry["center"] = _grid2d(w - 4, h - 4)
            geometry["sobel"] = _grid2d(w, h)
        if flags.reduction_on_gpu:
            n_groups, gsz, lsz = reduction_layout(h * w)
            geometry["reduction0"] = (gsz, lsz)
            stage2 = heuristics.reduction_stage2_on_gpu(flags, n_groups)
            count, level = n_groups, 1
            while stage2 and count > GROUP_SPAN:
                n_groups, gsz, lsz = reduction_layout(count)
                geometry[f"reduction{level}"] = (gsz, lsz)
                count, level = n_groups, level + 1
        if flags.fuse_sharpness:
            geometry["sharpness"] = (_grid2d(round_up(w, 4) // 4, h)
                                     if flags.vectorize else _grid2d(w, h))
        else:
            geometry["perror"] = geometry["prelim"] = \
                geometry["overshoot"] = _grid2d(w, h)
        return geometry

    def _capture_plan(self, key: PlanKey, result: GPUResult,
                      queue: CommandQueue) -> ExecutionPlan:
        kernels = build_kernel_set(self.flags)
        plan = ExecutionPlan.capture(
            key,
            timeline=result.timeline,
            times=result.times,
            border_gpu=result.border_ran_on_gpu,
            stage2_gpu=result.reduction_stage2_on_gpu,
            kernels=tuple(sorted(kernels)),
            geometry=self._plan_geometry(key.height, key.width),
            transfer_bytes=queue.transfer_bytes,
        )
        if self.obs.enabled:
            self.obs.log.debug(
                "plan.captured", pipeline=self.label,
                h=key.height, w=key.width,
                kernels=",".join(plan.kernels),
                levels=len(plan.reduction_levels),
            )
        return plan

    def _run_planned(self, image: Image, plan: ExecutionPlan,
                     obs) -> GPUResult:
        """Replay a cached plan: pooled buffers, zero per-frame setup.

        Pixels come from the plan's specialized executor (bit-identical to
        the generic path); the timeline/stage times are the capture's
        immutable template, valid because simulated costs never depend on
        pixel values.  Queue-level metrics are replayed from the capture;
        per-stage host spans are not re-emitted for cached frames.
        """
        faults = obs.faults
        if faults is not None:
            # Replayed frames never touch a CommandQueue, so the queue's
            # transfer/kernel fault sites would go dark after the first
            # (instrumented) frame of a shape.  One check per site per
            # replayed frame stands in for the replayed commands.
            faults.check("transfer", obs, detail="plan-replay")
            faults.check("kernel", obs, detail="plan-replay")
        pool = self.buffer_pool
        ws = pool.checkout(image.height, image.width)
        try:
            final, edge_mean = plan.execute(image.plane, self.params, ws)
        finally:
            pool.checkin(ws)
        if obs.enabled:
            plan.replay_observability(obs)
            stats = pool.stats()
            obs.metrics.gauge(
                "repro_bufferpool_in_use",
                "Workspaces currently checked out of the buffer pool",
            ).set(stats["in_use"])
            obs.metrics.gauge(
                "repro_bufferpool_idle",
                "Idle workspaces parked in the buffer pool",
            ).set(stats["idle"])
        return GPUResult(
            final=final,
            times=plan.times,
            timeline=plan.timeline,
            edge_mean=edge_mean,
            flags=self.flags,
            border_ran_on_gpu=plan.border_gpu,
            reduction_stage2_on_gpu=plan.stage2_gpu,
            kernel_launches=plan.kernel_launches,
            intermediates={},
        )

    def _run_instrumented(self, image: Image,
                          obs) -> tuple[GPUResult, CommandQueue]:
        flags = self.flags
        plane = image.plane
        h, w = plane.shape
        n = h * w

        ctx = Context(self.device, self.mode)
        queue = CommandQueue(ctx, obs=obs)
        planner = TransferPlanner(queue, flags.transfer_mode, self.cpu)
        kernels = build_kernel_set(flags)
        if obs.enabled:
            obs.log.debug(
                "pipeline.start", pipeline=self.label, h=h, w=w,
                mode=self.mode, kernels=",".join(sorted(kernels)),
                transfer_mode=flags.transfer_mode,
            )

        # ---- buffers --------------------------------------------------------
        padded_buf = ctx.create_buffer((h + 2, w + 2), transfer_itemsize=1,
                                       name="padded")
        src_buf: Buffer | None = None
        if not flags.transfer_padded_only:
            src_buf = ctx.create_buffer((h, w), transfer_itemsize=1,
                                        name="src")
        down_buf = ctx.create_buffer((h // 4, w // 4), transfer_itemsize=4,
                                     name="down")
        up_buf = ctx.create_buffer((h, w), transfer_itemsize=4, name="up")
        pedge_buf = ctx.create_buffer((h, w), transfer_itemsize=4,
                                      name="pedge")
        final_buf = ctx.create_buffer((h, w), transfer_itemsize=1,
                                      name="final")

        # ---- data init (section V.A) ----------------------------------------
        with obs.trace.span("gpu.data_init"):
            planner.upload_padded(padded_buf, plane,
                                  pad_on_transfer=flags.pad_on_transfer,
                                  stage="data_init")
            if src_buf is not None:
                planner.upload(src_buf, plane, stage="data_init")
        src_for_kernels = padded_buf if flags.transfer_padded_only else src_buf

        # ---- downscale -------------------------------------------------------
        with obs.trace.span("gpu.downscale"):
            gsz, lsz = _grid2d(w // 4, h // 4)
            self._launch(queue, kernels["downscale"],
                         (src_for_kernels, down_buf, h, w), gsz, lsz,
                         "downscale")

        # ---- upscale border (section V.E) ------------------------------------
        border_gpu = heuristics.border_on_gpu(flags, h, w)
        with obs.trace.span("gpu.border", on_gpu=border_gpu):
            if border_gpu:
                self._launch(queue, kernels["border"],
                             (down_buf, up_buf, h, w),
                             BORDER_GLOBAL, BORDER_LOCAL, "border")
            else:
                # CPU path: download the downscaled matrix, build the border
                # on the host, upload the upscaled buffer (border populated,
                # body still zero) — the transfers the paper calls a huge
                # cost.
                down_host = planner.download(down_buf, stage="border")
                queue.host_step("border_host",
                                border_host_time(h, w, self.cpu),
                                stage="border")
                up_host = np.zeros((h, w), dtype=np.float64)
                algo.upscale_border_apply(up_host, down_host)
                planner.upload(up_buf, up_host, stage="border")

        # ---- upscale center ---------------------------------------------------
        with obs.trace.span("gpu.center"):
            if flags.vectorize:
                gsz, lsz = _grid2d((w - 4) // 4, (h - 4) // 4)
            else:
                gsz, lsz = _grid2d(w - 4, h - 4)
            self._launch(queue, kernels["center"], (down_buf, up_buf, h, w),
                         gsz, lsz, "center")

        # ---- Sobel -------------------------------------------------------------
        with obs.trace.span("gpu.sobel"):
            if flags.vectorize:
                gsz, lsz = _grid2d(round_up(w, 4) // 4, h)
            else:
                gsz, lsz = _grid2d(w, h)
            self._launch(queue, kernels["sobel"],
                         (src_for_kernels, pedge_buf, h, w), gsz, lsz,
                         "sobel")

        # ---- reduction (section V.C) -------------------------------------------
        with obs.trace.span("gpu.reduction"):
            edge_mean, stage2_gpu = self._reduce(ctx, queue, planner,
                                                 kernels, pedge_buf, n)

        # ---- sharpness tail (section V.B) ---------------------------------------
        with obs.trace.span("gpu.sharpness", fused=flags.fuse_sharpness):
            if flags.fuse_sharpness:
                if flags.vectorize:
                    gsz, lsz = _grid2d(round_up(w, 4) // 4, h)
                else:
                    gsz, lsz = _grid2d(w, h)
                self._launch(
                    queue, kernels["sharpness"],
                    (up_buf, pedge_buf, src_for_kernels, final_buf,
                     edge_mean, self.params, h, w),
                    gsz, lsz, "sharpness",
                )
            else:
                perror_buf = ctx.create_buffer((h, w), transfer_itemsize=4,
                                               name="perror")
                prelim_buf = ctx.create_buffer((h, w), transfer_itemsize=4,
                                               name="prelim")
                gsz, lsz = _grid2d(w, h)
                self._launch(queue, kernels["perror"],
                             (src_for_kernels, up_buf, perror_buf, h, w),
                             gsz, lsz, "perror")
                self._launch(
                    queue, kernels["prelim"],
                    (up_buf, pedge_buf, perror_buf, prelim_buf, edge_mean,
                     self.params, h, w),
                    gsz, lsz, "prelim",
                )
                self._launch(
                    queue, kernels["overshoot"],
                    (prelim_buf, padded_buf, final_buf, self.params, h, w),
                    gsz, lsz, "overshoot",
                )

        # ---- readback ------------------------------------------------------------
        with obs.trace.span("gpu.readback"):
            final = planner.download(final_buf, stage="data_init")

        intermediates: dict[str, np.ndarray] = {}
        if self.keep_intermediates:
            intermediates = {
                "downscaled": down_buf.data.copy(),
                "upscaled": up_buf.data.copy(),
                "p_edge": pedge_buf.data.copy(),
            }
        result = GPUResult(
            final=final,
            times=stage_times_from_timeline(ctx.timeline),
            timeline=ctx.timeline,
            edge_mean=edge_mean,
            flags=flags,
            border_ran_on_gpu=border_gpu,
            reduction_stage2_on_gpu=stage2_gpu,
            kernel_launches=len(ctx.timeline.of_kind("kernel")),
            intermediates=intermediates,
        )
        return result, queue

    # -- reduction sub-flow -----------------------------------------------------

    def _reduce(self, ctx: Context, queue: CommandQueue,
                planner: TransferPlanner, kernels, pedge_buf: Buffer,
                n: int) -> tuple[float, bool]:
        """Compute the mean of pEdge per the reduction flags.

        Returns ``(mean, stage2_ran_on_gpu)``.
        """
        flags = self.flags
        if not flags.reduction_on_gpu:
            # Naive placement: ship the whole pEdge matrix to the host and
            # sum it there (the Fig. 16 "on CPU" curve).
            pedge_host = planner.download(pedge_buf, stage="reduction")
            queue.host_step("reduction_host",
                            reduction_host_time(n, self.cpu),
                            stage="reduction")
            return float(pedge_host.sum()) / n, False

        # Stage 1: workgroup tree reduction on the device.
        n_groups, gsz, lsz = reduction_layout(n)
        partial_buf = ctx.create_buffer((n_groups,), transfer_itemsize=4,
                                        name="partial0")
        self._launch(queue, kernels["reduction"],
                     (pedge_buf, partial_buf, n), gsz, lsz, "reduction")

        stage2_gpu = heuristics.reduction_stage2_on_gpu(flags, n_groups)
        count = n_groups
        current = partial_buf
        level = 1
        while stage2_gpu and count > GROUP_SPAN:
            ng2, gsz2, lsz2 = reduction_layout(count)
            nxt = ctx.create_buffer((ng2,), transfer_itemsize=4,
                                    name=f"partial{level}")
            self._launch(queue, kernels["reduction"],
                         (current, nxt, count), gsz2, lsz2, "reduction")
            current, count, level = nxt, ng2, level + 1

        # Final: the surviving partials come back in one small transfer and
        # the host adds them up.
        partials = planner.download(current, stage="reduction")
        queue.host_step("reduction_final",
                        reduction_host_time(count, self.cpu),
                        stage="reduction")
        return float(partials.sum()) / n, stage2_gpu
