"""Buffer pool: reusable device buffers + host scratch for cached runs.

A :class:`Workspace` bundles everything a plan's specialized executor
(:meth:`~repro.core.plan.ExecutionPlan.execute`) writes into for one frame
shape: the device-resident buffers of the pipeline proper (downscaled,
upscaled, pEdge — real :class:`~repro.cl.Buffer` objects on a private
context, recycled with :meth:`~repro.cl.buffer.Buffer.reset`) and the host
scratch arrays of the separable stages.  Checking one out, running a frame,
and checking it back in allocates nothing; ``reset`` only re-zeros the
pEdge border ring (four thin slices — O(h + w) work), which is the sole
cross-frame invariant the executor relies on.

:class:`BufferPool` keeps at most ``max_entries`` idle workspaces per
shape.  Checkouts beyond the bound still succeed (a fresh workspace is
built) but the surplus is dropped at check-in, so a burst never grows the
steady-state footprint.  All operations are thread-safe: the batch
engine's workers share one pool.

Memory note: one 512x512 float64 workspace is ~27 MB; at 4096x4096 it is
~1.7 GB, so size ``max_entries`` (and the batch worker count) to the frame
resolution.
"""

from __future__ import annotations

import threading

import numpy as np

from ..cl.context import Context
from ..errors import ConfigError
from ..simgpu.device import DeviceSpec, W8000
from ..types import FLOAT


class Workspace:
    """Preallocated per-shape scratch for one in-flight frame."""

    def __init__(self, h: int, w: int, *,
                 device: DeviceSpec = W8000) -> None:
        if h % 4 or w % 4 or h < 16 or w < 16:
            raise ConfigError(
                f"workspace sides must be multiples of 4 and >= 16, "
                f"got {h}x{w}"
            )
        self.h, self.w = h, w
        hd, wd = h // 4, w // 4
        # Device-resident buffers (zero-initialized, like clCreateBuffer
        # in the rest of the simulation).
        self.context = Context(device, "functional")
        self.down_buf = self.context.create_buffer(
            (hd, wd), transfer_itemsize=4, name="pool_down")
        self.up_buf = self.context.create_buffer(
            (h, w), transfer_itemsize=4, name="pool_up")
        self.pedge_buf = self.context.create_buffer(
            (h, w), transfer_itemsize=4, name="pool_pedge")
        self.down = self.down_buf.data
        self.up = self.up_buf.data
        self.edge = self.pedge_buf.data
        # Host scratch of the separable stages.  The sharpness-tail arrays
        # (err/strength/prelim) only cover the interior: on the one-pixel
        # border the edge map is zero, so the sharpen strength is zero and
        # the preliminary image equals the upscaled plane — the executor
        # takes the final border straight from ``up``.
        self.colsum = np.empty((h, wd), dtype=FLOAT)
        self.rows = np.empty((4 * (hd - 1), wd), dtype=FLOAT)
        self.tcol = np.empty((h - 2, w), dtype=FLOAT)
        self.urow = np.empty((h, w - 2), dtype=FLOAT)
        self.gx = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.gy = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.err = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.strength = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.prelim = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.mnc = np.empty((h, w - 2), dtype=FLOAT)
        self.mxc = np.empty((h, w - 2), dtype=FLOAT)
        self.mn = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.mx = np.empty((h - 2, w - 2), dtype=FLOAT)
        self.over = np.empty((h - 2, w - 2), dtype=bool)
        self.under = np.empty((h - 2, w - 2), dtype=bool)

    @property
    def nbytes(self) -> int:
        """Total scratch footprint (device buffers + host arrays)."""
        arrays = (self.down, self.up, self.edge, self.colsum, self.rows,
                  self.tcol, self.urow, self.gx, self.gy, self.err,
                  self.strength, self.prelim, self.mnc, self.mxc,
                  self.mn, self.mx, self.over, self.under)
        return sum(a.nbytes for a in arrays)

    def reset(self) -> None:
        """Make the workspace frame-clean.

        The executor overwrites every cell it reads except the pEdge border
        ring (Sobel leaves the border zero by construction), so only that
        ring needs restoring; everything else is recycled dirty.
        """
        for buf in (self.down_buf, self.up_buf, self.pedge_buf):
            buf.reset()
        h, w = self.h, self.w
        self.edge[0] = 0.0
        self.edge[h - 1] = 0.0
        self.edge[:, 0] = 0.0
        self.edge[:, w - 1] = 0.0


class BufferPool:
    """Bounded, thread-safe pool of :class:`Workspace` objects per shape."""

    def __init__(self, max_entries: int = 4, *,
                 device: DeviceSpec = W8000, obs=None) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"buffer pool max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.device = device
        #: Optional RunContext; its fault plan's ``oom`` site makes
        #: checkouts simulate CL_MEM_OBJECT_ALLOCATION_FAILURE.
        self.obs = obs
        self._idle: dict[tuple[int, int], list[Workspace]] = {}
        self._lock = threading.Lock()
        self.in_use = 0
        self.created = 0
        self.reused = 0
        self.discarded = 0

    def checkout(self, h: int, w: int) -> Workspace:
        """Borrow a frame-clean workspace for an ``h x w`` frame."""
        obs = self.obs
        if obs is not None and obs.faults is not None:
            # Simulated device OOM fires before any pool state changes, so
            # a retried checkout starts from a clean slate.
            obs.faults.check("oom", obs, detail=f"checkout:{h}x{w}")
        with self._lock:
            stack = self._idle.get((h, w))
            ws = stack.pop() if stack else None
            self.in_use += 1
            if ws is not None:
                self.reused += 1
            else:
                self.created += 1
        if ws is None:
            ws = Workspace(h, w, device=self.device)
        else:
            ws.reset()
        return ws

    def checkin(self, ws: Workspace) -> None:
        """Return a workspace; surplus beyond the bound is dropped."""
        with self._lock:
            self.in_use -= 1
            stack = self._idle.setdefault((ws.h, ws.w), [])
            if len(stack) < self.max_entries:
                stack.append(ws)
            else:
                self.discarded += 1

    def lease(self, h: int, w: int):
        """``with pool.lease(h, w) as ws:`` checkout/checkin guard."""
        return _Lease(self, h, w)

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._idle.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            idle = sum(len(s) for s in self._idle.values())
            return {
                "in_use": self.in_use,
                "idle": idle,
                "created": self.created,
                "reused": self.reused,
                "discarded": self.discarded,
            }


class _Lease:
    """Context manager backing :meth:`BufferPool.lease`."""

    def __init__(self, pool: BufferPool, h: int, w: int) -> None:
        self._pool = pool
        self._h, self._w = h, w
        self._ws: Workspace | None = None

    def __enter__(self) -> Workspace:
        self._ws = self._pool.checkout(self._h, self._w)
        return self._ws

    def __exit__(self, *exc) -> None:
        if self._ws is not None:
            self._pool.checkin(self._ws)
            self._ws = None
