"""The paper's contribution: the optimized GPU sharpness pipeline.

:class:`~repro.core.config.OptimizationFlags` exposes each of the five
optimization techniques as an independent toggle; the named presets form the
step-wise ladder of Fig. 14.  :class:`~repro.core.pipeline.GPUPipeline` runs
the pipeline on the simulated device under any flag combination, producing
the final image, a simulated event timeline, and a Fig.-13-style stage
breakdown.
"""

from .batch import BatchEngine, BatchResult, FrameFailure
from .bufferpool import BufferPool, Workspace
from .dag import overlap_single_run, overlap_stream, serialization_overhead
from .config import (
    BASE,
    LADDER,
    OPTIMIZED,
    STEP_REDUCTION,
    STEP_TRANSFER_FUSION,
    STEP_VECTOR_BORDER,
    OptimizationFlags,
)
from .heuristics import (
    BORDER_GPU_MIN_SIDE,
    REDUCTION_STAGE2_GPU_MIN_PARTIALS,
    border_on_gpu,
    reduction_stage2_on_gpu,
)
from .metrics import GPU_STAGE_ORDER, stage_times_from_timeline
from .pipeline import GPUPipeline, GPUResult
from .plan import ExecutionPlan, PlanCache, PlanKey
from .portability import check_flags, device_tuning_summary, retune
from .stream import FrameStats, StreamProcessor, StreamResult

__all__ = [
    "BatchEngine",
    "BatchResult",
    "FrameFailure",
    "BufferPool",
    "Workspace",
    "ExecutionPlan",
    "PlanCache",
    "PlanKey",
    "BASE",
    "LADDER",
    "OPTIMIZED",
    "STEP_REDUCTION",
    "STEP_TRANSFER_FUSION",
    "STEP_VECTOR_BORDER",
    "OptimizationFlags",
    "BORDER_GPU_MIN_SIDE",
    "REDUCTION_STAGE2_GPU_MIN_PARTIALS",
    "border_on_gpu",
    "reduction_stage2_on_gpu",
    "GPU_STAGE_ORDER",
    "stage_times_from_timeline",
    "GPUPipeline",
    "GPUResult",
    "overlap_single_run",
    "overlap_stream",
    "serialization_overhead",
    "check_flags",
    "device_tuning_summary",
    "retune",
    "FrameStats",
    "StreamProcessor",
    "StreamResult",
]
