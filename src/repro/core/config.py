"""Pipeline configuration: the five optimization techniques as toggles.

The flags map one-to-one onto the paper's sections:

* **V.A — Data Transfer Optimization**: ``transfer_mode`` (map/unmap vs
  read/write), ``transfer_padded_only`` (ship only the padded original) and
  ``pad_on_transfer`` (pad via ``clEnqueueWriteBufferRect`` instead of a
  host-side copy).
* **V.B — Kernel Fusion**: ``fuse_sharpness`` collapses the pError /
  preliminary-sharpen / overshoot kernels into one.
* **V.C — Reduction Optimization**: ``reduction_on_gpu`` with the tree
  ``reduction_unroll`` variant (0 = plain tree, 1 = unroll last wavefront,
  2 = unroll last two wavefronts) and the ``reduction_stage2`` placement.
* **V.D — Vectorization for Data Locality**: ``vectorize`` switches Sobel,
  the fused sharpness kernel and upscale-center to 4-wide work-items.
* **V.E/V.F — Border and other optimizations**: ``border_place`` (cpu / gpu /
  auto with the 768 crossover), ``eliminate_sync`` (drop ``clFinish``),
  ``builtins`` (built-in functions + shift/mask instruction selection).

The named presets form the cumulative ladder benchmarked in Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError

_TRANSFER_MODES = ("map", "rw")
_PLACEMENTS = ("cpu", "gpu", "auto")


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of the paper's optimizations are active."""

    transfer_mode: str = "map"
    transfer_padded_only: bool = False
    pad_on_transfer: bool = False
    fuse_sharpness: bool = False
    reduction_on_gpu: bool = False
    reduction_unroll: int = 1
    reduction_stage2: str = "auto"
    vectorize: bool = False
    border_place: str = "cpu"
    eliminate_sync: bool = False
    builtins: bool = False

    def __post_init__(self) -> None:
        if self.transfer_mode not in _TRANSFER_MODES:
            raise ConfigError(
                f"transfer_mode must be one of {_TRANSFER_MODES}, got "
                f"{self.transfer_mode!r}"
            )
        if self.reduction_unroll not in (0, 1, 2):
            raise ConfigError(
                f"reduction_unroll must be 0, 1 or 2, got "
                f"{self.reduction_unroll}"
            )
        if self.reduction_stage2 not in _PLACEMENTS:
            raise ConfigError(
                f"reduction_stage2 must be one of {_PLACEMENTS}, got "
                f"{self.reduction_stage2!r}"
            )
        if self.border_place not in _PLACEMENTS:
            raise ConfigError(
                f"border_place must be one of {_PLACEMENTS}, got "
                f"{self.border_place!r}"
            )
        if self.pad_on_transfer and not self.transfer_padded_only:
            raise ConfigError(
                "pad_on_transfer requires transfer_padded_only (the rect "
                "write produces the padded matrix)"
            )
        if self.vectorize and not self.transfer_padded_only:
            raise ConfigError(
                "vectorize requires transfer_padded_only: the 4-wide "
                "kernels read the padded original"
            )

    def with_(self, **kwargs) -> "OptimizationFlags":
        """Return a copy with some flags replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line summary for reports."""
        bits = [f"transfer={self.transfer_mode}"]
        if self.transfer_padded_only:
            bits.append("padded-only" + ("(rect)" if self.pad_on_transfer
                                         else "(host-pad)"))
        if self.fuse_sharpness:
            bits.append("fused")
        if self.reduction_on_gpu:
            bits.append(f"red-gpu(u{self.reduction_unroll},"
                        f"s2={self.reduction_stage2})")
        else:
            bits.append("red-cpu")
        if self.vectorize:
            bits.append("vec4")
        bits.append(f"border={self.border_place}")
        if self.eliminate_sync:
            bits.append("nosync")
        if self.builtins:
            bits.append("builtins")
        return " ".join(bits)


#: The naive GPU port of section IV: map/unmap transfers of both the
#: original and the padded matrix, six scalar kernels with a ``clFinish``
#: after each, reduction and border on the CPU.
BASE = OptimizationFlags()

#: Fig. 14 step 1: "data transmission and kernel fusion" (section V.A + V.B).
STEP_TRANSFER_FUSION = BASE.with_(
    transfer_mode="rw",
    transfer_padded_only=True,
    pad_on_transfer=True,
    fuse_sharpness=True,
)

#: Fig. 14 step 2: "+ optimizing the reduction" (section V.C).
STEP_REDUCTION = STEP_TRANSFER_FUSION.with_(
    reduction_on_gpu=True,
    reduction_unroll=1,
    reduction_stage2="auto",
)

#: Fig. 14 step 3: "+ vectorization for data share and border optimization"
#: (sections V.D + V.E).
STEP_VECTOR_BORDER = STEP_REDUCTION.with_(
    vectorize=True,
    border_place="auto",
)

#: Fig. 14 step 4: "+ others" (section V.F) — the fully optimized pipeline.
OPTIMIZED = STEP_VECTOR_BORDER.with_(
    eliminate_sync=True,
    builtins=True,
)

#: The cumulative ladder of Fig. 14, in order.
LADDER: tuple[tuple[str, OptimizationFlags], ...] = (
    ("base", BASE),
    ("transfer+fusion", STEP_TRANSFER_FUSION),
    ("+reduction", STEP_REDUCTION),
    ("+vector+border", STEP_VECTOR_BORDER),
    ("+others", OPTIMIZED),
)
