"""Frame-stream processing: the paper's real-time TV/camera use case.

:class:`StreamProcessor` runs a sharpness pipeline over a sequence of
frames and aggregates throughput statistics.  It also models the natural
next optimization the paper's pipeline enables but does not implement:
**copy/compute overlap** (double buffering).  With two sets of device
buffers and an out-of-order queue, frame N's PCI-E transfers can hide under
frame N-1's kernels, so the steady-state frame time is
``max(transfer_time, device_time) + host_time`` instead of their sum.

The overlap model is derived from the same per-event timeline the in-order
pipeline produces, so its speedup is exactly the transfer share the
Fig. 13(c) breakdown reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..simgpu.profiling import Timeline
from .dag import overlap_stream
from ..types import Image, SharpnessParams
from .config import OPTIMIZED, OptimizationFlags
from .pipeline import GPUPipeline, GPUResult


def default_frame_id(index: int) -> str:
    """Stable fallback frame id when the caller has no natural key.

    Zero-padded so lexicographic order matches submission order; callers
    with durable identities (file names, content hashes) should pass their
    own ids — positional ids do not survive reordered inputs.
    """
    return f"{index:06d}"


@dataclass
class FrameStats:
    """Per-frame record of one stream run.

    ``backend`` says who produced the frame (``"gpu"``, ``"cpu-fallback"``
    when the resilience layer degraded, ``"failed"`` for an isolated
    per-frame failure); ``error``/``attempts`` carry the failure message
    and the number of execution attempts the frame took.  ``frame_id`` is
    the frame's *stable* identity (input file name, content hash, or the
    positional :func:`default_frame_id`) — checkpoints and journals key on
    it so a resumed job survives reordered or renamed inputs.
    """

    index: int
    serial_time: float
    overlapped_time: float
    transfer_time: float
    device_time: float
    host_time: float
    backend: str = "gpu"
    error: str | None = None
    attempts: int = 1
    frame_id: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class StreamResult:
    """Aggregate result of a stream run."""

    frames: list[FrameStats] = field(default_factory=list)
    overlap: bool = False
    outputs: list[np.ndarray] = field(default_factory=list)
    #: Exact resource-scheduled timeline across all frames (DMA / compute /
    #: host engines overlap); its makespan refines the per-frame analytic
    #: overlap estimate.
    pipelined_timeline: Timeline | None = None

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def total_time(self) -> float:
        if self.overlap:
            if self.pipelined_timeline is not None:
                return self.pipelined_timeline.total
            return sum(f.overlapped_time for f in self.frames)
        return sum(f.serial_time for f in self.frames)

    @property
    def mean_frame_time(self) -> float:
        if not self.frames:
            raise ValidationError("stream produced no frames")
        return self.total_time / self.n_frames

    @property
    def fps(self) -> float:
        return 1.0 / self.mean_frame_time

    def sustains(self, target_fps: float) -> bool:
        """Can this configuration hold ``target_fps`` in steady state?"""
        if target_fps <= 0:
            raise ValidationError(
                f"target_fps must be > 0, got {target_fps}"
            )
        return self.fps >= target_fps

    @property
    def transfer_share(self) -> float:
        """Fraction of serial time spent on PCI-E (the overlap headroom)."""
        total = sum(f.serial_time for f in self.frames)
        if total <= 0:
            return 0.0
        return sum(f.transfer_time for f in self.frames) / total


def _overlapped_frame_time(transfer: float, device: float,
                           host: float) -> float:
    """Steady-state frame time with double-buffered transfers."""
    return max(transfer, device) + host


def resolve_frame_id(frame_ids, index: int, frame) -> str:
    """Resolve one frame's stable id from a ``frame_ids`` argument.

    ``frame_ids`` is either ``None`` (positional fallback), a sequence
    aligned with the frame stream, or a ``callable(index, frame) -> str``.
    """
    if frame_ids is None:
        return default_frame_id(index)
    if callable(frame_ids):
        return str(frame_ids(index, frame))
    return str(frame_ids[index])


def frame_stats(index: int, result: GPUResult,
                attempts: int = 1, frame_id: str = "") -> FrameStats:
    """Decompose one pipeline result into per-frame stream statistics."""
    by_kind = result.timeline.by_kind()
    transfer = by_kind.get("transfer", 0.0)
    host = by_kind.get("host", 0.0)
    device = result.total_time - transfer - host
    return FrameStats(
        index=index,
        serial_time=result.total_time,
        overlapped_time=_overlapped_frame_time(transfer, device, host),
        transfer_time=transfer,
        device_time=device,
        host_time=host,
        backend=getattr(result, "backend", "gpu"),
        attempts=attempts,
        frame_id=frame_id or default_frame_id(index),
    )


class StreamProcessor:
    """Run a sharpness pipeline over a frame sequence.

    Parameters
    ----------
    flags / params / device / cpu:
        Forwarded to :class:`~repro.core.pipeline.GPUPipeline`.
    overlap_transfers:
        Model double-buffered copy/compute overlap (see module docstring).
    keep_outputs:
        Retain every sharpened frame on the result (memory-heavy for long
        streams).
    obs:
        Optional :class:`~repro.obs.RunContext`, forwarded to the
        underlying :class:`~repro.core.pipeline.GPUPipeline`, so stream
        runs show up in logs/metrics/traces like single-frame runs do; the
        stream itself contributes a ``stream.run`` span, a
        ``repro_stream_fps`` gauge and a completion log record.
    pipeline:
        Reuse an existing pipeline (plan cache and buffer pool included)
        instead of building one; ``flags``/``params``/``device``/``cpu``
        are ignored when given.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  When given,
        the stream's pipeline is wrapped in a
        :class:`~repro.resilience.FallbackPipeline`: transient faults are
        retried, a tripped breaker routes frames to the CPU pipeline, and
        degraded frames show up as ``FrameStats.backend ==
        "cpu-fallback"``.
    """

    def __init__(self, flags: OptimizationFlags = OPTIMIZED,
                 params: SharpnessParams | None = None, *,
                 device=None, cpu=None, overlap_transfers: bool = False,
                 keep_outputs: bool = False,
                 obs: RunContext | None = None,
                 pipeline: GPUPipeline | None = None,
                 resilience=None) -> None:
        self.obs = obs or NULL_CONTEXT
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            kwargs = {}
            if device is not None:
                kwargs["device"] = device
            if cpu is not None:
                kwargs["cpu"] = cpu
            self.pipeline = GPUPipeline(flags, params, obs=obs, **kwargs)
        if resilience is not None:
            from ..resilience.fallback import FallbackPipeline
            if not isinstance(self.pipeline, FallbackPipeline):
                self.pipeline = FallbackPipeline(
                    self.pipeline, resilience, obs=self.obs)
        self.overlap_transfers = overlap_transfers
        self.keep_outputs = keep_outputs

    def _frame_stats(self, index: int, result: GPUResult) -> FrameStats:
        return frame_stats(index, result)

    def run(self, frames, *, frame_ids=None) -> StreamResult:
        """Process ``frames`` (arrays or :class:`~repro.types.Image`).

        ``frame_ids`` optionally names each frame durably (a sequence
        aligned with ``frames`` or a ``callable(index, frame) -> str``);
        omitted, frames get positional :func:`default_frame_id` ids.
        """
        obs = self.obs
        result = StreamResult(overlap=self.overlap_transfers)
        timelines: list[Timeline] = []
        with obs.trace.span("stream.run", overlap=self.overlap_transfers):
            for index, frame in enumerate(frames):
                if not isinstance(frame, Image):
                    frame = Image.from_array(np.asarray(frame))
                fid = resolve_frame_id(frame_ids, index, frame)
                res = self.pipeline.run(frame)
                result.frames.append(frame_stats(index, res, frame_id=fid))
                timelines.append(res.timeline)
                if self.keep_outputs:
                    result.outputs.append(res.final)
            if not result.frames:
                raise ValidationError("empty frame sequence")
            if self.overlap_transfers:
                result.pipelined_timeline = overlap_stream(timelines)
        if obs.enabled:
            obs.metrics.gauge(
                "repro_stream_fps",
                "Simulated steady-state frames per second of the last "
                "stream run",
            ).set(result.fps)
            obs.log.info(
                "stream.complete", frames=result.n_frames,
                simulated_fps=result.fps,
                overlap=self.overlap_transfers,
            )
        return result
