"""Per-work-item functional emulator for simulated OpenCL kernels.

Kernels are written as Python *generator functions* in an OpenCL-C style::

    def reduce_kernel(ctx, src, partial, local_sum):
        lid = ctx.get_local_id(0)
        local_sum[lid] = src[ctx.get_global_id(0)]
        yield BARRIER                      # barrier(CLK_LOCAL_MEM_FENCE)
        ...
        yield WF_SYNC                      # wavefront lock-step boundary

Two synchronization primitives are modelled:

``BARRIER``
    A workgroup-wide barrier.  Every work-item of the group must reach it
    (reaching the end of the kernel instead is a
    :class:`~repro.errors.BarrierDivergenceError`, as on real hardware).

``WF_SYNC``
    A wavefront lock-step boundary.  On GCN hardware the 64 lanes of a
    wavefront execute each instruction together, which is what makes the
    paper's *unrolled last wavefront* reduction (Algorithm 1/2) correct
    without barriers.  A Python emulator cannot interleave per instruction,
    so kernels mark the points where they rely on lock-step with
    ``yield WF_SYNC``; the emulator synchronizes the items of each wavefront
    there.  Crucially, WF_SYNC does **not** synchronize across wavefronts —
    running the unrolled kernel on a device with a smaller wavefront than the
    kernel assumes produces wrong results, exactly like real hardware (the
    test suite demonstrates this).

Execution order is deterministic: workgroups run one after another, and
within a wavefront items advance in local-id order between sync points.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import (
    BarrierDivergenceError,
    DeviceFault,
    InvalidWorkGroupError,
)
from .device import DeviceSpec
from .memory import CheckedArray, LocalMemory
from .racecheck import RaceTracker, TrackedArray

#: Yield this to synchronize the whole workgroup.
BARRIER = "barrier"
#: Yield this to mark a wavefront lock-step boundary.
WF_SYNC = "wf_sync"

_RUNNING = 0
_AT_BARRIER = 1
_AT_WFSYNC = 2
_DONE = 3


@dataclass(frozen=True)
class WorkItemCtx:
    """Identity of one work-item, mirroring the OpenCL work-item functions.

    Dimension 0 is x (fastest-varying / column), dimension 1 is y (row),
    exactly as in OpenCL C.
    """

    global_id: tuple[int, ...]
    local_id: tuple[int, ...]
    group_id: tuple[int, ...]
    local_size: tuple[int, ...]
    global_size: tuple[int, ...]

    def get_global_id(self, dim: int) -> int:
        return self.global_id[dim]

    def get_local_id(self, dim: int) -> int:
        return self.local_id[dim]

    def get_group_id(self, dim: int) -> int:
        return self.group_id[dim]

    def get_local_size(self, dim: int) -> int:
        return self.local_size[dim]

    def get_global_size(self, dim: int) -> int:
        return self.global_size[dim]

    def get_num_groups(self, dim: int) -> int:
        return self.global_size[dim] // self.local_size[dim]

    @property
    def local_linear_id(self) -> int:
        """OpenCL ``get_local_linear_id()``: lid0 + lid1*ls0 + lid2*ls0*ls1."""
        lin = 0
        stride = 1
        for lid, ls in zip(self.local_id, self.local_size):
            lin += lid * stride
            stride *= ls
        return lin

    def wavefront(self, wavefront_size: int) -> int:
        return self.local_linear_id // wavefront_size


@dataclass
class EmulatedKernelLaunch:
    """Statistics collected while emulating one kernel launch."""

    n_groups: int = 0
    n_work_items: int = 0
    barrier_releases: int = 0
    wf_sync_releases: int = 0
    local_mem_bytes: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _validate_ndrange(
    global_size: tuple[int, ...], local_size: tuple[int, ...],
    device: DeviceSpec,
) -> tuple[int, ...]:
    if len(global_size) != len(local_size):
        raise InvalidWorkGroupError(
            f"global_size rank {len(global_size)} != local_size rank "
            f"{len(local_size)}"
        )
    if not 1 <= len(global_size) <= 3:
        raise InvalidWorkGroupError(
            f"NDRange rank must be 1..3, got {len(global_size)}"
        )
    groups = []
    wg_items = 1
    for g, loc in zip(global_size, local_size):
        if g <= 0 or loc <= 0:
            raise InvalidWorkGroupError(
                f"sizes must be positive, got global={global_size} "
                f"local={local_size}"
            )
        if g % loc:
            raise InvalidWorkGroupError(
                f"global size {g} not divisible by local size {loc}"
            )
        groups.append(g // loc)
        wg_items *= loc
    if wg_items > device.max_workgroup_size:
        raise InvalidWorkGroupError(
            f"workgroup of {wg_items} items exceeds device limit "
            f"{device.max_workgroup_size}"
        )
    return tuple(groups)


class _Item:
    __slots__ = ("ctx", "gen", "status", "wavefront")

    def __init__(self, ctx: WorkItemCtx, gen, wavefront: int) -> None:
        self.ctx = ctx
        self.gen = gen
        self.status = _RUNNING if gen is not None else _DONE
        self.wavefront = wavefront

    def advance(self) -> None:
        """Run until the next yield or the end of the kernel."""
        try:
            marker = next(self.gen)
        except StopIteration:
            self.status = _DONE
            return
        if marker == BARRIER:
            self.status = _AT_BARRIER
        elif marker == WF_SYNC:
            self.status = _AT_WFSYNC
        else:
            raise DeviceFault(
                f"kernel yielded unknown sync marker {marker!r}"
            )


def _run_group(items: list[_Item], stats: EmulatedKernelLaunch,
               tracker: RaceTracker | None = None) -> None:
    """Execute one workgroup to completion."""
    wavefronts: dict[int, list[_Item]] = {}
    for item in items:
        wavefronts.setdefault(item.wavefront, []).append(item)
    wf_order = sorted(wavefronts)
    item_ids = {id(item): i for i, item in enumerate(items)}

    def advance(item: _Item) -> None:
        if tracker is not None:
            tracker.current_item = item_ids[id(item)]
        item.advance()

    while True:
        # Advance every wavefront until it is finished or parked at a
        # workgroup barrier.
        for wf in wf_order:
            group = wavefronts[wf]
            while True:
                for item in group:
                    if item.status == _RUNNING:
                        advance(item)
                statuses = {item.status for item in group}
                if statuses <= {_DONE}:
                    break
                if statuses <= {_AT_BARRIER, _DONE}:
                    if _DONE in statuses and _AT_BARRIER in statuses:
                        raise BarrierDivergenceError(
                            "work-items of one wavefront diverged: some "
                            "finished while others wait at a barrier"
                        )
                    break
                if statuses <= {_AT_WFSYNC, _DONE}:
                    # Wavefront-internal sync point: release and continue.
                    stats.wf_sync_releases += 1
                    if tracker is not None:
                        tracker.bump()
                    for item in group:
                        if item.status == _AT_WFSYNC:
                            item.status = _RUNNING
                    continue
                raise BarrierDivergenceError(
                    "work-items of one wavefront reached different "
                    "synchronization points (barrier vs wavefront sync)"
                )

        statuses = {item.status for item in items}
        if statuses == {_DONE}:
            return
        if _DONE in statuses:
            raise BarrierDivergenceError(
                "workgroup diverged: some work-items finished while "
                "others wait at a barrier"
            )
        # Everyone is at the barrier: release the whole group.
        stats.barrier_releases += 1
        if tracker is not None:
            tracker.bump()
        for item in items:
            item.status = _RUNNING


def run_kernel(
    kernel_fn: Callable[..., Any],
    global_size: tuple[int, ...],
    local_size: tuple[int, ...],
    args: tuple[Any, ...] = (),
    *,
    device: DeviceSpec,
    local_mem: dict[str, int] | None = None,
    local_itemsize: int = 4,
    race_check: bool = False,
    obs=None,
) -> EmulatedKernelLaunch:
    """Emulate ``kernel_fn`` over the given NDRange on ``device``.

    ``local_mem`` maps local-buffer argument names to element counts; one
    fresh :class:`~repro.simgpu.memory.LocalMemory` per buffer is allocated
    for every workgroup and appended to ``args`` in declaration order
    (matching how OpenCL passes ``__local`` pointers as kernel arguments).

    With ``race_check=True`` every buffer/local-memory argument is wrapped
    in a :class:`~repro.simgpu.racecheck.TrackedArray` and same-epoch
    conflicting accesses by different work-items raise
    :class:`~repro.errors.RaceConditionError` (see
    :mod:`repro.simgpu.racecheck` for the epoch model and its limits).

    ``obs`` (a :class:`~repro.obs.RunContext`) records the launch statistics
    as ``repro_emulator_*`` counters plus one debug log line per launch.
    """
    faults = getattr(obs, "faults", None)
    if faults is not None:
        faults.check("kernel", obs,
                     detail=f"emulate:{kernel_fn.__name__}")
    groups = _validate_ndrange(tuple(global_size), tuple(local_size), device)
    stats = EmulatedKernelLaunch(
        n_groups=int(np.prod(groups)),
        n_work_items=int(np.prod(global_size)),
    )
    local_mem = local_mem or {}

    for group_id in np.ndindex(*groups[::-1]):
        group_id = tuple(int(g) for g in group_id[::-1])  # dim-0-fastest
        tracker = RaceTracker() if race_check else None
        group_args = args
        if tracker is not None:
            group_args = tuple(
                TrackedArray(a, getattr(a, "_name", f"arg{i}"), tracker)
                if isinstance(a, CheckedArray) else a
                for i, a in enumerate(args)
            )
        locals_for_group = []
        lm_bytes = 0
        for name, n_elements in local_mem.items():
            lm = LocalMemory(
                n_elements,
                capacity_bytes=device.local_mem_per_cu,
                itemsize=local_itemsize,
                name=name,
            )
            lm_bytes += lm.nbytes
            if tracker is not None:
                lm = TrackedArray(lm, name, tracker)
            locals_for_group.append(lm)
        if lm_bytes > device.local_mem_per_cu:
            raise InvalidWorkGroupError(
                f"workgroup requests {lm_bytes} bytes of local memory, "
                f"device CU has {device.local_mem_per_cu}"
            )
        stats.local_mem_bytes = max(stats.local_mem_bytes, lm_bytes)

        items: list[_Item] = []
        for local_idx in np.ndindex(*tuple(local_size)[::-1]):
            lid = tuple(int(i) for i in local_idx[::-1])
            gid = tuple(
                g * loc + i
                for g, loc, i in zip(group_id, local_size, lid)
            )
            ctx = WorkItemCtx(
                global_id=gid,
                local_id=lid,
                group_id=group_id,
                local_size=tuple(local_size),
                global_size=tuple(global_size),
            )
            if tracker is not None:
                # Plain-function kernels run their whole body right here;
                # generator kernels only run when advanced, at which point
                # _run_group re-sets the current item.
                tracker.current_item = len(items)
            result = kernel_fn(ctx, *group_args, *locals_for_group)
            gen = result if inspect.isgenerator(result) else None
            items.append(_Item(ctx, gen, ctx.wavefront(device.wavefront_size)))
        _run_group(items, stats, tracker)

    if obs is not None and obs.enabled:
        _observe_launch(obs, kernel_fn, stats)
    return stats


def _observe_launch(obs, kernel_fn: Callable[..., Any],
                    stats: EmulatedKernelLaunch) -> None:
    """Record one emulated launch into an obs RunContext."""
    counters = (
        ("repro_emulator_launches_total", "Emulated kernel launches", 1),
        ("repro_emulator_work_items_total",
         "Work-items executed by the emulator", stats.n_work_items),
        ("repro_emulator_barrier_releases_total",
         "Workgroup barrier releases during emulation",
         stats.barrier_releases),
        ("repro_emulator_wf_sync_releases_total",
         "Wavefront lock-step releases during emulation",
         stats.wf_sync_releases),
    )
    for name, help_text, amount in counters:
        if amount:
            obs.metrics.counter(name, help_text).inc(amount)
    obs.log.debug(
        "emulator.launch",
        kernel=getattr(kernel_fn, "__name__", str(kernel_fn)),
        groups=stats.n_groups, work_items=stats.n_work_items,
        barrier_releases=stats.barrier_releases,
        wf_sync_releases=stats.wf_sync_releases,
        local_mem_bytes=stats.local_mem_bytes,
    )
