"""Simulated OpenCL GPU substrate.

This package replaces the AMD FirePro W8000 + OpenCL runtime the paper used
(unavailable in this environment) with:

* :mod:`~repro.simgpu.device` — device specifications taken from Table I of
  the paper plus microarchitectural constants (wavefront size, compute units,
  launch overheads) with documented calibration;
* :mod:`~repro.simgpu.pcie` — a PCI-E transfer-time model covering the
  read/write, map/unmap and ``clEnqueueWriteBufferRect`` paths;
* :mod:`~repro.simgpu.memory` — global buffers and checked local memory;
* :mod:`~repro.simgpu.emulator` — a per-work-item functional emulator with
  workgroup barriers and wavefront-lockstep semantics;
* :mod:`~repro.simgpu.costmodel` — a roofline kernel-timing model;
* :mod:`~repro.simgpu.scheduler` — workgroup dispatch/occupancy effects;
* :mod:`~repro.simgpu.profiling` — simulated event timelines.
"""

from .device import CPUSpec, DeviceSpec, I5_3470, W8000
from .emulator import EmulatedKernelLaunch, WorkItemCtx, run_kernel
from .costmodel import KernelCost, kernel_time
from .memory import CheckedArray, GlobalBuffer, LocalMemory
from .pcie import PCIeSpec
from .profiling import Event, Timeline
from .schedule import ResourceScheduler, pipelined_schedule
from .scheduler import parallel_utilization

__all__ = [
    "CPUSpec",
    "DeviceSpec",
    "I5_3470",
    "W8000",
    "EmulatedKernelLaunch",
    "WorkItemCtx",
    "run_kernel",
    "KernelCost",
    "kernel_time",
    "CheckedArray",
    "GlobalBuffer",
    "LocalMemory",
    "PCIeSpec",
    "Event",
    "Timeline",
    "ResourceScheduler",
    "pipelined_schedule",
    "parallel_utilization",
]
