"""Roofline timing model for simulated kernels.

Each kernel launch is characterized by a :class:`KernelCost` — how much
arithmetic it does, how many bytes of global memory it moves, how much local
memory traffic and how many barriers it needs, and two behavioural flags
(branch divergence, built-in function usage).  :func:`kernel_time` turns that
into seconds on a :class:`~repro.simgpu.device.DeviceSpec`:

``time = launch + max(compute, global_mem, local_mem) / utilization
       + barrier_time``

* *compute* counts simple FLOPs plus FLOP-equivalents for heavy ops
  (pow/exp/div) and slow integer ops (divide/modulo before the
  instruction-selection optimization), divided by the device's effective
  FLOP rate; branch-divergent kernels pay the device's divergence penalty.
* *global_mem* is total bytes moved over the DRAM interface at effective
  bandwidth.  The "Vectorization for Data Locality" optimization manifests
  here: the vectorized Sobel reads 18 values per 4 outputs instead of
  4 x 9, so its ``global_bytes_read`` is roughly half the scalar kernel's.
* *utilization* models occupancy (see :mod:`~repro.simgpu.scheduler`):
  small launches cannot saturate the chip.
* *barrier_time* charges each workgroup barrier per resident wavefront,
  serialized over the compute units — the term that separates the
  unroll-one-wavefront and unroll-two-wavefront reductions (Fig. 15).

The same methodology prices CPU stages via :func:`cpu_stage_time` so the
CPU/GPU comparison is apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ValidationError
from .device import GIGA, CPUSpec, DeviceSpec
from .scheduler import parallel_utilization


@dataclass(frozen=True)
class KernelCost:
    """Work characterization of one kernel launch (totals, not per-item)."""

    work_items: int
    flops: float = 0.0
    heavy_ops: float = 0.0
    slow_int_ops: float = 0.0
    global_bytes_read: float = 0.0
    global_bytes_written: float = 0.0
    local_bytes: float = 0.0
    barriers_per_group: float = 0.0
    n_groups: int = 1
    workgroup_size: int = 64
    divergent: bool = False
    uses_builtins: bool = False
    #: Latency-bound serial time the roofline cannot see: the length of the
    #: longest dependent-access chain a single work-item executes (e.g. the
    #: per-line loop of the naive border kernel), in seconds.  Added to the
    #: launch time verbatim.
    serial_latency_s: float = 0.0
    label: str = ""
    notes: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.work_items <= 0:
            raise ValidationError(
                f"work_items must be > 0, got {self.work_items}"
            )
        if self.n_groups <= 0 or self.workgroup_size <= 0:
            raise ValidationError("n_groups and workgroup_size must be > 0")
        for attr in (
            "flops",
            "heavy_ops",
            "slow_int_ops",
            "global_bytes_read",
            "global_bytes_written",
            "local_bytes",
            "barriers_per_group",
            "serial_latency_s",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be >= 0")


def flop_equivalents(cost: KernelCost, device: DeviceSpec) -> float:
    """Total FLOP-equivalents of a launch on ``device``."""
    heavy_rate = (
        device.builtin_heavy_op_flops
        if cost.uses_builtins
        else device.heavy_op_flops
    )
    int_rate = (
        device.fast_int_op_flops
        if cost.uses_builtins
        else device.slow_int_op_flops
    )
    return (
        cost.flops
        + cost.heavy_ops * heavy_rate
        + cost.slow_int_ops * int_rate
    )


def kernel_time(cost: KernelCost, device: DeviceSpec,
                *, include_launch: bool = True) -> float:
    """Simulated execution time of one kernel launch, in seconds."""
    compute = flop_equivalents(cost, device) / (device.effective_gflops * GIGA)
    if cost.divergent:
        compute *= device.divergent_branch_penalty
    global_mem = (
        cost.global_bytes_read + cost.global_bytes_written
    ) / device.effective_bandwidth_bps
    local_mem = cost.local_bytes / (device.lds_bandwidth_gbps * GIGA)

    utilization = parallel_utilization(cost.work_items, device)
    body = max(compute, global_mem, local_mem) / utilization

    wavefronts_per_group = math.ceil(
        cost.workgroup_size / device.wavefront_size
    )
    barrier_time = (
        cost.barriers_per_group
        * cost.n_groups
        * wavefronts_per_group
        * device.barrier_wavefront_s
        / device.n_compute_units
    )

    launch = device.launch_overhead_s if include_launch else 0.0
    return launch + body + barrier_time + cost.serial_latency_s


def kernel_breakdown(cost: KernelCost, device: DeviceSpec) -> dict[str, float]:
    """Per-component times (for reports and model sanity tests)."""
    compute = flop_equivalents(cost, device) / (device.effective_gflops * GIGA)
    if cost.divergent:
        compute *= device.divergent_branch_penalty
    global_mem = (
        cost.global_bytes_read + cost.global_bytes_written
    ) / device.effective_bandwidth_bps
    local_mem = cost.local_bytes / (device.lds_bandwidth_gbps * GIGA)
    utilization = parallel_utilization(cost.work_items, device)
    return {
        "compute": compute,
        "global_mem": global_mem,
        "local_mem": local_mem,
        "utilization": utilization,
        "total": kernel_time(cost, device),
    }


# ---------------------------------------------------------------------------
# CPU stage pricing (same roofline methodology)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CpuStageCost:
    """Work characterization of one CPU pipeline stage."""

    flops: float = 0.0
    heavy_ops: float = 0.0
    slow_int_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    branchy: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        for attr in (
            "flops",
            "heavy_ops",
            "slow_int_ops",
            "bytes_read",
            "bytes_written",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be >= 0")


def cpu_stage_time(cost: CpuStageCost, cpu: CPUSpec) -> float:
    """Simulated execution time of one CPU stage, in seconds."""
    flops = (
        cost.flops
        + cost.heavy_ops * cpu.heavy_op_flops
        + cost.slow_int_ops * cpu.slow_int_op_flops
    )
    compute = flops / (cpu.effective_gflops * GIGA)
    if cost.branchy:
        compute *= cpu.branch_penalty
    memory = (cost.bytes_read + cost.bytes_written) / (
        cpu.effective_bandwidth_bps
    )
    return max(compute, memory)
