"""Device specifications for the simulated platform.

The headline numbers (clock, core count, peak GFLOPS, memory bandwidth) come
straight from Table I of the paper.  The microarchitectural and overhead
constants are documented calibration choices: they are set to publicly-known
values for GCN-era AMD GPUs / Ivy Bridge CPUs where available, and otherwise
tuned (see EXPERIMENTS.md, "Calibration") so the reproduced figures match the
paper's *shapes* — the absolute times produced by the model are simulated,
not measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ValidationError
from .pcie import PCIeSpec

GIGA = 1.0e9


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated OpenCL GPU device.

    Attributes
    ----------
    name:
        Marketing name (for reports).
    n_compute_units:
        Number of compute units (GCN CUs).  ``cores = n_compute_units *
        wavefront_size`` matches the paper's "number of cores".
    wavefront_size:
        Work-items executed in lock-step (64 on GCN).
    clock_ghz:
        Core clock in GHz (Table I: 0.88 for the W8000).
    peak_gflops:
        Peak single-precision GFLOPS (Table I: 3230 for the W8000).
    mem_bandwidth_gbps:
        Peak global-memory bandwidth in GB/s (Table I: 176).
    lds_bandwidth_gbps:
        Aggregate local-data-share bandwidth in GB/s.
    local_mem_per_cu:
        Local memory per compute unit in bytes (64 KiB on GCN).
    max_workgroup_size:
        Maximum work-items per workgroup (256 on GCN).
    compute_efficiency / mem_efficiency:
        Achievable fraction of peak for real kernels (calibrated).
    mem_latency_s:
        Latency of one dependent global-memory access (used by
        latency-bound kernels such as the naive border port, whose serial
        per-line loops the throughput roofline cannot see).
    launch_overhead_s:
        Host-side cost of enqueuing + dispatching one kernel.
    sync_overhead_s:
        Extra cost of a ``clFinish`` host synchronization.
    barrier_wavefront_s:
        Cost of one workgroup barrier per resident wavefront.
    heavy_op_flops:
        FLOP-equivalents charged per transcendental (pow/exp) op.
    builtin_heavy_op_flops:
        Same, when the kernel uses native built-in functions (``native_powr``
        etc.) — the "Build-in Function" optimization of section V.F.
    divergent_branch_penalty:
        Multiplier applied to compute time of kernels flagged as
        branch-divergent (border handling without padding, overshoot
        without padding, ...).
    slow_int_op_flops / fast_int_op_flops:
        FLOP-equivalents for integer divide/modulo before and after the
        "instruction selection" optimization (shift/bitwise-and).
    pcie:
        The PCI-E link model used for host<->device transfers.
    """

    name: str
    n_compute_units: int
    wavefront_size: int
    clock_ghz: float
    peak_gflops: float
    mem_bandwidth_gbps: float
    lds_bandwidth_gbps: float
    mem_latency_s: float
    local_mem_per_cu: int
    max_workgroup_size: int
    compute_efficiency: float
    mem_efficiency: float
    launch_overhead_s: float
    sync_overhead_s: float
    barrier_wavefront_s: float
    heavy_op_flops: float
    builtin_heavy_op_flops: float
    divergent_branch_penalty: float
    slow_int_op_flops: float
    fast_int_op_flops: float
    pcie: PCIeSpec = field(default_factory=PCIeSpec)

    def __post_init__(self) -> None:
        if self.n_compute_units <= 0:
            raise ValidationError("n_compute_units must be > 0")
        if self.wavefront_size <= 0 or (
            self.wavefront_size & (self.wavefront_size - 1)
        ):
            raise ValidationError(
                f"wavefront_size must be a power of two, got "
                f"{self.wavefront_size}"
            )
        if self.max_workgroup_size % self.wavefront_size:
            raise ValidationError(
                "max_workgroup_size must be a multiple of wavefront_size"
            )
        for attr in ("compute_efficiency", "mem_efficiency"):
            v = getattr(self, attr)
            if not 0.0 < v <= 1.0:
                raise ValidationError(f"{attr} must lie in (0, 1], got {v}")

    @property
    def n_cores(self) -> int:
        """Paper-style "number of cores" = CUs x wavefront lanes."""
        return self.n_compute_units * self.wavefront_size

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.compute_efficiency

    @property
    def effective_bandwidth_bps(self) -> float:
        return self.mem_bandwidth_gbps * GIGA * self.mem_efficiency

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CPUSpec:
    """The CPU of Table I, modelled with the same roofline methodology.

    The paper's baseline is a carefully optimized (``-O3``) C implementation;
    ``efficiency`` expresses how much of the 4-core SIMD peak such scalar-ish
    compiled image code typically achieves (calibrated — see EXPERIMENTS.md).
    """

    name: str
    n_cores: int
    clock_ghz: float
    peak_gflops: float
    mem_bandwidth_gbps: float
    efficiency: float
    mem_efficiency: float
    heavy_op_flops: float
    branch_penalty: float
    slow_int_op_flops: float
    fast_int_op_flops: float

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.efficiency

    @property
    def effective_bandwidth_bps(self) -> float:
        return self.mem_bandwidth_gbps * GIGA * self.mem_efficiency

    def with_(self, **kwargs) -> "CPUSpec":
        return replace(self, **kwargs)


#: AMD FirePro W8000 (Table I row 1).  1792 cores = 28 CUs x 64 lanes;
#: 0.88 GHz; 3.23 TFLOPS SP; 176 GB/s.  Overheads calibrated per
#: EXPERIMENTS.md.
W8000 = DeviceSpec(
    name="AMD FirePro W8000 (simulated)",
    n_compute_units=28,
    wavefront_size=64,
    clock_ghz=0.88,
    peak_gflops=3230.0,
    mem_bandwidth_gbps=176.0,
    lds_bandwidth_gbps=1400.0,
    mem_latency_s=850.0e-9,
    local_mem_per_cu=64 * 1024,
    max_workgroup_size=256,
    compute_efficiency=0.60,
    mem_efficiency=0.45,
    launch_overhead_s=22.0e-6,
    sync_overhead_s=16.0e-6,
    barrier_wavefront_s=60.0e-9,
    heavy_op_flops=16.0,
    builtin_heavy_op_flops=6.0,
    divergent_branch_penalty=2.0,
    slow_int_op_flops=16.0,
    fast_int_op_flops=1.0,
    pcie=PCIeSpec(),
)

#: Intel Core i5-3470 (Table I row 2).  4 cores at 3.2 GHz; 57.76 GFLOPS;
#: 25 GB/s.  The compiled baseline achieves a modest fraction of SIMD peak
#: (calibrated so the paper's CPU-vs-GPU speedup range is reproduced).
I5_3470 = CPUSpec(
    name="Intel Core i5-3470",
    n_cores=4,
    clock_ghz=3.2,
    peak_gflops=57.76,
    mem_bandwidth_gbps=25.0,
    efficiency=0.030,
    mem_efficiency=0.60,
    heavy_op_flops=40.0,
    branch_penalty=1.6,
    slow_int_op_flops=20.0,
    fast_int_op_flops=1.0,
)


#: An NVIDIA-Kepler-like contemporary of the W8000 (GTX-680 class):
#: 32-wide warps, 8 SMX "compute units", similar peak FLOPS and bandwidth.
#: Used by the portability experiments — note the unrolled reduction
#: kernels are *invalid* on a 32-wide device (they hardcode 64-lane
#: lock-step).
WARP32 = DeviceSpec(
    name="Warp-32 contemporary (simulated)",
    n_compute_units=48,
    wavefront_size=32,
    clock_ghz=1.006,
    peak_gflops=3090.0,
    mem_bandwidth_gbps=192.0,
    lds_bandwidth_gbps=1300.0,
    mem_latency_s=800.0e-9,
    local_mem_per_cu=48 * 1024,
    max_workgroup_size=256,
    compute_efficiency=0.60,
    mem_efficiency=0.45,
    launch_overhead_s=18.0e-6,
    sync_overhead_s=14.0e-6,
    barrier_wavefront_s=60.0e-9,
    heavy_op_flops=16.0,
    builtin_heavy_op_flops=6.0,
    divergent_branch_penalty=2.0,
    slow_int_op_flops=16.0,
    fast_int_op_flops=1.0,
    pcie=PCIeSpec(),
)

#: A handheld-class GPU in the spirit of Singhal et al. (the paper's
#: reference [17]): few wide-SIMD cores, unified memory (cheap host<->device
#: moves, low bandwidth).  Used to ask how the paper's optimizations
#: transfer to embedded silicon.
EMBEDDED = DeviceSpec(
    name="Handheld-class GPU (simulated)",
    n_compute_units=4,
    wavefront_size=64,
    clock_ghz=0.45,
    peak_gflops=115.0,
    mem_bandwidth_gbps=12.8,
    lds_bandwidth_gbps=100.0,
    mem_latency_s=1200.0e-9,
    local_mem_per_cu=32 * 1024,
    max_workgroup_size=256,
    compute_efficiency=0.55,
    mem_efficiency=0.50,
    launch_overhead_s=60.0e-6,
    sync_overhead_s=30.0e-6,
    barrier_wavefront_s=120.0e-9,
    heavy_op_flops=24.0,
    builtin_heavy_op_flops=8.0,
    divergent_branch_penalty=2.5,
    slow_int_op_flops=20.0,
    fast_int_op_flops=1.0,
    # Unified memory: no discrete PCI-E link; copies are cheap but the
    # shared LPDDR is slow.
    pcie=PCIeSpec(bandwidth_gbps=6.0, rw_call_overhead_s=15.0e-6,
                  map_bandwidth_gbps=6.4, map_call_overhead_s=2.0e-6),
)
