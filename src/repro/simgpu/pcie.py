"""PCI-E host<->device transfer model.

Section V.A of the paper contrasts two OpenCL transfer modes:

* **read/write** (``clEnqueueReadBuffer`` / ``clEnqueueWriteBuffer``): one
  explicit bulk copy per call.  Each call pays a fixed driver/validation
  overhead but then streams at full link efficiency.
* **map/unmap** (``clEnqueueMapBuffer`` / ``clEnqueueUnmapMemObject``): data
  moves on demand as it is accessed.  There is no per-call setup cost, but
  the on-demand streaming achieves a slightly lower effective bandwidth.

These two cost curves cross: map/unmap wins for small images, read/write for
large — exactly the behaviour the paper reports in the Fig. 14 discussion
("the map/unmap mode is effective with small data size").  The crossover
point of the default constants sits at ``rw_call_overhead_s /
(1/map_bw - 1/rw_bw)`` bytes ~ 8 MiB, i.e. between the 2048^2 and 4096^2
test images, matching the paper's observation that the read/write switch
only pays off at 4096^2.

``clEnqueueWriteBufferRect`` (used to pad the original matrix during the
transfer itself) is modelled as a strided row-by-row copy: full bandwidth
plus a small per-row cost.  The alternative — padding on the CPU then doing
a bulk write — pays a host-side memcpy at CPU memory bandwidth instead,
which is more expensive for realistic row counts, matching section V.A.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

GIGA = 1.0e9


@dataclass(frozen=True)
class PCIeSpec:
    """PCI-E 3.0 x16-era link model (defaults calibrated per EXPERIMENTS.md).

    Attributes
    ----------
    bandwidth_gbps:
        Effective bulk-copy bandwidth of read/write calls.
    rw_call_overhead_s:
        Fixed per-call cost of an explicit read/write (driver entry,
        validation, DMA setup).
    map_bandwidth_gbps:
        Effective bandwidth of on-demand mapped access.
    map_call_overhead_s:
        Cost of establishing/releasing a mapping (pointer bookkeeping only).
    rect_row_overhead_s:
        Extra per-row cost of a strided ``WriteBufferRect`` copy.
    """

    bandwidth_gbps: float = 4.0
    rw_call_overhead_s: float = 50.0e-6
    map_bandwidth_gbps: float = 3.9
    map_call_overhead_s: float = 4.0e-6
    rect_row_overhead_s: float = 120.0e-9

    def __post_init__(self) -> None:
        for attr in ("bandwidth_gbps", "map_bandwidth_gbps"):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"{attr} must be > 0")

    # -- read/write ---------------------------------------------------------

    def rw_time(self, nbytes: int) -> float:
        """Time of one explicit read or write of ``nbytes``."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return self.rw_call_overhead_s
        return self.rw_call_overhead_s + nbytes / (self.bandwidth_gbps * GIGA)

    # -- map/unmap ----------------------------------------------------------

    def map_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` through a mapped region (map+access+unmap).

        The map/unmap calls themselves are cheap; the data streams on demand
        at the reduced mapped bandwidth.
        """
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        return (
            2.0 * self.map_call_overhead_s
            + nbytes / (self.map_bandwidth_gbps * GIGA)
        )

    # -- WriteBufferRect ----------------------------------------------------

    def rect_time(self, nbytes: int, n_rows: int) -> float:
        """Time of a strided rect write of ``nbytes`` spread over ``n_rows``."""
        if nbytes < 0 or n_rows <= 0:
            raise ValidationError(
                f"invalid rect transfer: nbytes={nbytes}, n_rows={n_rows}"
            )
        return (
            self.rw_call_overhead_s
            + n_rows * self.rect_row_overhead_s
            + nbytes / (self.bandwidth_gbps * GIGA)
        )

    # -- helpers ------------------------------------------------------------

    def crossover_bytes(self) -> float:
        """Buffer size above which read/write beats map/unmap."""
        per_byte_gain = 1.0 / (self.map_bandwidth_gbps * GIGA) - 1.0 / (
            self.bandwidth_gbps * GIGA
        )
        if per_byte_gain <= 0:
            return float("inf")
        fixed_loss = self.rw_call_overhead_s - 2.0 * self.map_call_overhead_s
        return max(fixed_loss, 0.0) / per_byte_gain
