"""Memory-access counting for emulated kernels.

The cost model *declares* how many global bytes each kernel moves; the
emulator *performs* the accesses.  :class:`CountingArray` records every
element read/write so the test suite can check the declaration against
reality for every kernel — the cost model must never undercount actual
traffic, and may overcount only by the documented transaction-granularity
factor (scalar byte loads are charged as 4-byte transactions,
``repro.kernels.base.U8_SCATTERED``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessCounts:
    """Element-level access totals per buffer name."""

    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def read_elements(self, name: str | None = None) -> int:
        if name is not None:
            return self.reads.get(name, 0)
        return sum(self.reads.values())

    def write_elements(self, name: str | None = None) -> int:
        if name is not None:
            return self.writes.get(name, 0)
        return sum(self.writes.values())

    def read_bytes(self, itemsizes: dict[str, int]) -> float:
        """Total read bytes given each buffer's transfer element size."""
        return float(sum(n * itemsizes.get(name, 4)
                         for name, n in self.reads.items()))

    def write_bytes(self, itemsizes: dict[str, int]) -> float:
        return float(sum(n * itemsizes.get(name, 4)
                         for name, n in self.writes.items()))


class CountingArray:
    """Proxy over anything indexable that counts element accesses."""

    __slots__ = ("_inner", "_name", "_counts")

    def __init__(self, inner, name: str, counts: AccessCounts) -> None:
        self._inner = inner
        self._name = name
        self._counts = counts

    def __getitem__(self, idx):
        value = self._inner[idx]
        self._counts.reads[self._name] = (
            self._counts.reads.get(self._name, 0) + 1
        )
        return value

    def __setitem__(self, idx, value) -> None:
        self._inner[idx] = value
        self._counts.writes[self._name] = (
            self._counts.writes.get(self._name, 0) + 1
        )

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def shape(self):
        return self._inner.shape
