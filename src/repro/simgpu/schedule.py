"""Dependency-aware resource scheduling (copy/compute overlap).

The in-order command queue serializes everything — faithful to the paper's
host code.  Real OpenCL applications overlap transfers with kernels using
multiple queues/events and a second DMA engine; this module provides the
generic machinery to model that:

:class:`ResourceScheduler` performs classic list scheduling of operations
over named exclusive resources (``dma`` for the PCI-E copy engine,
``compute`` for the shader core, ``host`` for CPU-side steps): an operation
starts when its dependencies have finished *and* its resource is free.

:func:`pipelined_schedule` applies it to a sequence of recorded per-frame
timelines: each frame keeps its internal (data-dependent) order, frames
compete for resources — so frame N's transfers hide under frame N-1's
kernels exactly as with double buffering.  Used by
:class:`repro.core.stream.StreamProcessor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from .profiling import Timeline

#: Which exclusive engine executes each event kind.
KIND_TO_RESOURCE = {
    "transfer": "dma",
    "host": "host",
    "kernel": "compute",
    "sync": "compute",
}

RESOURCES = ("dma", "compute", "host")


@dataclass
class ScheduledOp:
    """One operation to schedule."""

    name: str
    kind: str
    duration: float
    resource: str
    deps: tuple[int, ...] = ()
    stage: str = ""
    # filled by schedule():
    start: float = field(default=-1.0, compare=False)
    end: float = field(default=-1.0, compare=False)


class ResourceScheduler:
    """List scheduler over exclusive resources with dependencies."""

    def __init__(self, resources: tuple[str, ...] = RESOURCES) -> None:
        if not resources:
            raise ValidationError("need at least one resource")
        self.resources = tuple(resources)
        self.ops: list[ScheduledOp] = []

    def add(self, name: str, kind: str, duration: float, resource: str,
            deps: tuple[int, ...] | list[int] = (), *,
            stage: str = "") -> int:
        """Register an operation; returns its id for use in later deps."""
        if resource not in self.resources:
            raise ValidationError(
                f"unknown resource {resource!r}; have {self.resources}"
            )
        if duration < 0:
            raise ValidationError(f"{name}: negative duration {duration}")
        op_id = len(self.ops)
        for d in deps:
            if not 0 <= d < op_id:
                raise ValidationError(
                    f"{name}: dependency {d} is not an earlier op"
                )
        self.ops.append(ScheduledOp(
            name=name, kind=kind, duration=float(duration),
            resource=resource, deps=tuple(deps), stage=stage,
        ))
        return op_id

    @staticmethod
    def _earliest_fit(busy: list[tuple[float, float]], ready: float,
                      duration: float) -> float:
        """Earliest start >= ready where ``duration`` fits between the
        sorted busy intervals (gap-filling insertion scheduling)."""
        candidate = ready
        for s, e in busy:
            if candidate + duration <= s:
                break  # fits in the gap before this interval
            candidate = max(candidate, e)
        return candidate

    def schedule(self) -> Timeline:
        """Assign start/end times; return the overlapped timeline.

        Ready-time-priority list scheduling with gap filling: among all
        operations whose dependencies have completed, the one that can
        start earliest is placed next (ties broken by registration order),
        into the earliest idle gap of its resource.  This is what a
        dual-queue OpenCL application achieves with events — a later
        frame's upload slots into the DMA engine's idle time under an
        earlier frame's kernels instead of waiting for the whole frame.
        """
        import heapq

        busy: dict[str, list[tuple[float, float]]] = {
            r: [] for r in self.resources
        }
        n = len(self.ops)
        remaining_deps = [len(op.deps) for op in self.ops]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for i, op in enumerate(self.ops):
            for d in op.deps:
                dependents[d].append(i)

        heap: list[tuple[float, int]] = []
        for i, op in enumerate(self.ops):
            if remaining_deps[i] == 0:
                heapq.heappush(heap, (0.0, i))

        scheduled: list[int] = []
        while heap:
            ready, i = heapq.heappop(heap)
            op = self.ops[i]
            op.start = self._earliest_fit(busy[op.resource], ready,
                                          op.duration)
            op.end = op.start + op.duration
            intervals = busy[op.resource]
            intervals.append((op.start, op.end))
            intervals.sort()
            scheduled.append(i)
            for j in dependents[i]:
                remaining_deps[j] -= 1
                if remaining_deps[j] == 0:
                    dep_ready = max(self.ops[d].end
                                    for d in self.ops[j].deps)
                    heapq.heappush(heap, (dep_ready, j))

        if len(scheduled) != n:  # pragma: no cover - guarded by add()
            raise ValidationError("dependency cycle in schedule")
        timeline = Timeline()
        for i in sorted(scheduled, key=lambda k: (self.ops[k].start, k)):
            op = self.ops[i]
            timeline.record_interval(op.name, op.kind, op.start, op.end,
                                     stage=op.stage)
        return timeline

    def resource_busy_times(self) -> dict[str, float]:
        """Total busy time per resource (call after :meth:`schedule`)."""
        out = {r: 0.0 for r in self.resources}
        for op in self.ops:
            out[op.resource] += op.duration
        return out


def pipelined_schedule(timelines: list[Timeline]) -> Timeline:
    """Overlap a sequence of serially-recorded frame timelines.

    Within a frame the recorded order is preserved as a dependency chain
    (the pipeline's stages are data-dependent); across frames only the
    resources serialize, so DMA/compute/host phases of consecutive frames
    overlap.
    """
    if not timelines:
        raise ValidationError("no timelines to schedule")
    sched = ResourceScheduler()
    for f, tl in enumerate(timelines):
        prev: int | None = None
        for e in tl.events:
            resource = KIND_TO_RESOURCE.get(e.kind, "compute")
            deps = (prev,) if prev is not None else ()
            prev = sched.add(f"f{f}:{e.name}", e.kind, e.duration,
                             resource, deps, stage=e.stage)
    return sched.schedule()
