"""Workgroup dispatch and occupancy effects.

A GPU only reaches its roofline when there are enough wavefronts in flight
to saturate every compute unit and hide memory latency.  Small NDRanges — a
256x256 image, the border kernel, the second reduction stage — leave most of
the chip idle, which is the main reason the paper's speedups grow with image
size (Fig. 12) and why the border kernel loses to the CPU below 768x768
(Fig. 17).  ``parallel_utilization`` captures this with a simple saturation
model; ``tail_factor`` adds the quantization effect of the last partial wave
of workgroups.
"""

from __future__ import annotations

import math

from ..errors import InvalidWorkGroupError
from .device import DeviceSpec

#: Wavefronts per compute unit needed to hide memory latency (GCN can hold
#: 40; a handful in flight already reaches most of the bandwidth).
_SATURATING_WAVEFRONTS_PER_CU = 8.0

#: Utilization floor: even a single wavefront makes some progress.
_MIN_UTILIZATION = 0.01


def wavefronts_for(global_items: int, device: DeviceSpec) -> int:
    """Number of wavefronts a launch of ``global_items`` work-items needs."""
    if global_items <= 0:
        raise InvalidWorkGroupError(
            f"global_items must be > 0, got {global_items}"
        )
    return math.ceil(global_items / device.wavefront_size)


def parallel_utilization(global_items: int, device: DeviceSpec) -> float:
    """Fraction of the device's roofline a launch can use, in (0, 1].

    Saturates once the launch supplies `_SATURATING_WAVEFRONTS_PER_CU`
    wavefronts per compute unit; below that, throughput degrades
    proportionally (bounded away from zero — one wavefront still runs).
    """
    wf = wavefronts_for(global_items, device)
    saturating = _SATURATING_WAVEFRONTS_PER_CU * device.n_compute_units
    return max(min(wf / saturating, 1.0), _MIN_UTILIZATION)


def tail_factor(n_groups: int, device: DeviceSpec,
                groups_per_cu: int = 4) -> float:
    """Slowdown from the final partial wave of workgroups (>= 1).

    If the device can co-schedule ``n_compute_units * groups_per_cu`` groups
    per wave, a grid of ``n_groups`` takes ``ceil(waves)`` wave-times instead
    of the ideal fractional number.
    """
    if n_groups <= 0:
        raise InvalidWorkGroupError(f"n_groups must be > 0, got {n_groups}")
    per_wave = device.n_compute_units * groups_per_cu
    ideal_waves = n_groups / per_wave
    actual_waves = math.ceil(ideal_waves)
    return actual_waves / ideal_waves if ideal_waves > 0 else 1.0
