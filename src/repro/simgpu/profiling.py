"""Simulated event timelines (the OpenCL profiling-events analogue).

Every enqueued command (transfer, kernel, host step) appends an
:class:`Event` with simulated start/end timestamps to a :class:`Timeline`.
The pipeline's Fig.-13-style stage breakdowns are aggregations over these
events, so the reports are backed by the same records a real OpenCL
profiling run would produce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ValidationError

#: Chrome-trace row per event kind (keeps transfers, kernels and host work
#: on separate "threads" in the viewer).
_TRACE_ROWS = {"kernel": 1, "transfer": 2, "host": 3, "sync": 4}


@dataclass(frozen=True)
class Event:
    """One completed command on the simulated timeline."""

    name: str
    kind: str  # "kernel" | "transfer" | "host" | "sync"
    start: float
    end: float
    stage: str = ""  # pipeline stage this event belongs to (Fig. 13 label)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(
                f"event {self.name}: end {self.end} before start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An append-only sequence of simulated events with a running clock."""

    events: list[Event] = field(default_factory=list)
    now: float = 0.0

    def record(self, name: str, kind: str, duration: float,
               stage: str = "") -> Event:
        """Append an event of ``duration`` seconds starting at the clock."""
        if duration < 0:
            raise ValidationError(
                f"event {name}: negative duration {duration}"
            )
        event = Event(
            name=name, kind=kind, start=self.now, end=self.now + duration,
            stage=stage or name,
        )
        self.events.append(event)
        self.now = event.end
        return event

    def record_interval(self, name: str, kind: str, start: float,
                        end: float, stage: str = "") -> Event:
        """Append an event with explicit timestamps (events may overlap).

        Used by the resource scheduler; advances the clock to the latest
        end seen so ``total`` stays the makespan.
        """
        event = Event(name=name, kind=kind, start=start, end=end,
                      stage=stage or name)
        self.events.append(event)
        self.now = max(self.now, event.end)
        return event

    @property
    def total(self) -> float:
        return self.now

    def by_stage(self) -> dict[str, float]:
        """Total duration per stage label."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.stage] = out.get(e.stage, 0.0) + e.duration
        return out

    def by_kind(self) -> dict[str, float]:
        """Total duration per event kind."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0.0) + e.duration
        return out

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    # -- export ----------------------------------------------------------

    def chrome_trace(self) -> list[dict]:
        """Events in Chrome trace-event format (load via chrome://tracing
        or https://ui.perfetto.dev).  Timestamps are microseconds."""
        out = []
        for e in self.events:
            out.append({
                "name": e.name,
                "cat": e.kind,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": 1,
                "tid": _TRACE_ROWS.get(e.kind, 9),
                "args": {"stage": e.stage},
            })
        return out

    def write_chrome_trace(self, path) -> None:
        """Write the timeline as a Chrome trace JSON file.

        Accepts ``str`` or :class:`pathlib.Path`; the write is atomic
        (temp file + rename) so a crashed run never leaves a truncated
        trace behind.
        """
        from ..util.io import atomic_write_text

        atomic_write_text(path, json.dumps(
            {"traceEvents": self.chrome_trace(), "displayTimeUnit": "ms"},
            indent=1,
        ))

    def ascii_gantt(self, width: int = 72) -> str:
        """Render the timeline as a monospace Gantt chart.

        One row per event; the bar position/length shows when the command
        ran on the simulated clock.
        """
        if not self.events:
            return "(empty timeline)"
        total = self.total or 1.0
        label_w = max(len(e.name) for e in self.events)
        lines = [
            f"{'event'.ljust(label_w)} |{'simulated time'.center(width)}|"
        ]
        for e in self.events:
            start = int(round(e.start / total * width))
            length = max(int(round(e.duration / total * width)), 1)
            length = min(length, width - start)
            bar = " " * start + "#" * length
            lines.append(
                f"{e.name.ljust(label_w)} |{bar.ljust(width)}| "
                f"{e.duration * 1e6:9.1f} us"
            )
        lines.append(f"{'total'.ljust(label_w)} |{' ' * width}| "
                     f"{total * 1e6:9.1f} us")
        return "\n".join(lines)
