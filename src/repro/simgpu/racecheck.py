"""Data-race detection for emulated kernels.

When :func:`repro.simgpu.emulator.run_kernel` is called with
``race_check=True``, every buffer and local-memory argument is wrapped in a
:class:`TrackedArray` and accesses are checked against a simple epoch model:

* the *epoch* advances at every synchronization release (workgroup barrier
  or wavefront ``WF_SYNC``);
* two accesses to the same cell in the same epoch by *different* work-items
  conflict if at least one is a write.

This catches the classic kernel bugs — two items writing one output cell,
reading a neighbour's local-memory slot before the barrier — in exactly the
kernels where the paper's optimizations make ordering subtle (the tree
reductions, the cooperatively-loaded Sobel tile, the parallel border
lines).

Limitation (documented): treating a ``WF_SYNC`` as a group-wide epoch bump
is coarser than real lock-step, so a cross-wavefront conflict that happens
to straddle another wavefront's sync can go undetected.  The
wavefront-portability hazard itself is covered separately (the unrolled
reduction produces *wrong sums* on narrow-wavefront devices, which the test
suite asserts directly).

This tracker is the *dynamic* half of race coverage: it only sees the
cells the launched NDRange actually touches.  The static ``KA-RACE`` rule
of :mod:`repro.analysis.kernels` proves the complementary half before any
launch — it flags writes whose index does not depend on the work-item id
at all, and write pairs it cannot prove disjoint over *every* legal
NDRange.  A kernel should be clean under both.
"""

from __future__ import annotations

from ..errors import RaceConditionError


class RaceTracker:
    """Per-workgroup access bookkeeping."""

    def __init__(self) -> None:
        self.epoch = 0
        self.current_item: int | None = None
        # (array_name, cell) -> (epoch, item) of the last write
        self._writes: dict[tuple[str, object], tuple[int, int]] = {}
        # (array_name, cell) -> (epoch, item, multiple_items)
        self._reads: dict[tuple[str, object], tuple[int, int, bool]] = {}

    def bump(self) -> None:
        """A synchronization point was released: start a new epoch."""
        self.epoch += 1

    def _key(self, name: str, cell) -> tuple[str, object]:
        return (name, cell)

    def on_read(self, name: str, cell) -> None:
        item = self.current_item
        if item is None:  # pragma: no cover - defensive
            return
        key = self._key(name, cell)
        write = self._writes.get(key)
        if write is not None and write[0] == self.epoch \
                and write[1] != item:
            raise RaceConditionError(
                f"{name}[{cell}]: work-item {item} reads a value written "
                f"by work-item {write[1]} in the same epoch (missing "
                f"barrier?)"
            )
        read = self._reads.get(key)
        if read is None or read[0] != self.epoch:
            self._reads[key] = (self.epoch, item, False)
        elif read[1] != item and not read[2]:
            self._reads[key] = (self.epoch, read[1], True)

    def on_write(self, name: str, cell) -> None:
        item = self.current_item
        if item is None:  # pragma: no cover - defensive
            return
        key = self._key(name, cell)
        write = self._writes.get(key)
        if write is not None and write[0] == self.epoch \
                and write[1] != item:
            raise RaceConditionError(
                f"{name}[{cell}]: work-items {write[1]} and {item} both "
                f"write in the same epoch"
            )
        read = self._reads.get(key)
        if read is not None and read[0] == self.epoch and (
            read[2] or read[1] != item
        ):
            raise RaceConditionError(
                f"{name}[{cell}]: work-item {item} writes a cell that "
                f"work-item {read[1]} read in the same epoch"
            )
        self._writes[key] = (self.epoch, item)


class TrackedArray:
    """Race-checking proxy over anything with ``__getitem__/__setitem__``."""

    __slots__ = ("_inner", "_name", "_tracker")

    def __init__(self, inner, name: str, tracker: RaceTracker) -> None:
        self._inner = inner
        self._name = name
        self._tracker = tracker

    def __getitem__(self, idx):
        value = self._inner[idx]  # bounds-check first
        self._tracker.on_read(self._name, idx)
        return value

    def __setitem__(self, idx, value) -> None:
        self._inner[idx] = value
        self._tracker.on_write(self._name, idx)

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def shape(self):
        return self._inner.shape
