"""Simulated device memory: global buffers, checked arrays, local memory.

The functional fast path of a kernel operates on the backing NumPy arrays of
:class:`GlobalBuffer` directly; the per-work-item emulator instead goes
through :class:`CheckedArray` views that enforce explicit bounds (no Python
negative-index wrap-around — an out-of-bounds access in a kernel is a device
fault, not a convenience).  :class:`LocalMemory` models workgroup-private
``__local`` storage with a per-CU capacity limit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import (
    GlobalMemoryError,
    InvalidBufferError,
    LocalMemoryError,
)


class CheckedArray:
    """A bounds-checked view of an ndarray for kernel emulation.

    Supports integer and integer-tuple indexing only — kernels address
    memory one element at a time, like real OpenCL C code.  Any index
    outside ``[0, shape)`` raises a device fault; negative indices are
    faults too (OpenCL has no wrap-around).
    """

    __slots__ = ("_data", "_fault", "_name")

    def __init__(self, data: np.ndarray, *, name: str = "buffer",
                 fault: type[Exception] = GlobalMemoryError) -> None:
        self._data = data
        self._name = name
        self._fault = fault

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def size(self) -> int:
        return int(self._data.size)

    def _check(self, idx) -> tuple | int:
        if not isinstance(idx, tuple):
            idx = (idx,)
        if len(idx) == 1 and self._data.ndim > 1:
            # OpenCL buffers are flat: a single index into a multi-dim
            # buffer is a linear (row-major) address.
            i = int(idx[0])
            if i < 0 or i >= self._data.size:
                raise self._fault(
                    f"{self._name}: linear index {i} out of bounds for "
                    f"size {self._data.size}"
                )
            return i
        if len(idx) != self._data.ndim:
            raise self._fault(
                f"{self._name}: expected {self._data.ndim} indices, "
                f"got {len(idx)}"
            )
        out = []
        for axis, (i, n) in enumerate(zip(idx, self._data.shape)):
            i = int(i)
            if i < 0 or i >= n:
                raise self._fault(
                    f"{self._name}: index {i} out of bounds for axis "
                    f"{axis} with size {n}"
                )
            out.append(i)
        return tuple(out)

    def __getitem__(self, idx) -> float:
        checked = self._check(idx)
        if isinstance(checked, int):
            return float(self._data.flat[checked])
        return float(self._data[checked])

    def __setitem__(self, idx, value) -> None:
        checked = self._check(idx)
        if isinstance(checked, int):
            self._data.flat[checked] = value
        else:
            self._data[checked] = value

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def __iter__(self) -> Iterator[float]:  # pragma: no cover - convenience
        for i in range(len(self)):
            yield self[i]


class GlobalBuffer:
    """A device global-memory buffer backed by a NumPy array.

    ``nbytes`` is the *transfer* size of the buffer, i.e. what a PCI-E copy
    of it costs.  For 8-bit image planes that are promoted to float for
    arithmetic, the transfer dtype (1 byte/pixel) differs from the compute
    dtype; ``transfer_itemsize`` captures that.
    """

    _counter = 0

    def __init__(self, shape: tuple[int, ...], *, dtype=np.float64,
                 transfer_itemsize: int | None = None,
                 name: str | None = None) -> None:
        if any(int(s) <= 0 for s in shape):
            raise InvalidBufferError(f"invalid buffer shape {shape}")
        GlobalBuffer._counter += 1
        self.name = name or f"buf{GlobalBuffer._counter}"
        self.data = np.zeros(shape, dtype=dtype)
        self.transfer_itemsize = (
            int(transfer_itemsize)
            if transfer_itemsize is not None
            else int(self.data.itemsize)
        )
        self.released = False
        self._mapped = False

    # -- lifecycle ----------------------------------------------------------

    def release(self) -> None:
        self.released = True

    def _check_alive(self) -> None:
        if self.released:
            raise InvalidBufferError(f"{self.name}: used after release")

    # -- host access (used by the cl layer) ---------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def nbytes(self) -> int:
        """Transfer size in bytes."""
        return int(self.data.size) * self.transfer_itemsize

    def write(self, host: np.ndarray) -> None:
        self._check_alive()
        host = np.asarray(host)
        if host.shape != self.data.shape:
            raise InvalidBufferError(
                f"{self.name}: write shape {host.shape} != buffer shape "
                f"{self.data.shape}"
            )
        self.data[...] = host

    def read(self) -> np.ndarray:
        self._check_alive()
        return self.data.copy()

    # -- kernel access ------------------------------------------------------

    def checked(self) -> CheckedArray:
        """Bounds-checked view for the per-work-item emulator."""
        self._check_alive()
        return CheckedArray(self.data, name=self.name)

    # -- map/unmap state (used by the cl layer) ------------------------------

    @property
    def mapped(self) -> bool:
        return self._mapped

    def set_mapped(self, value: bool) -> None:
        self._mapped = bool(value)


class LocalMemory:
    """Workgroup-private ``__local`` memory with a capacity limit."""

    def __init__(self, n_elements: int, *, capacity_bytes: int,
                 itemsize: int = 4, name: str = "local") -> None:
        if n_elements <= 0:
            raise LocalMemoryError(f"{name}: invalid size {n_elements}")
        if n_elements * itemsize > capacity_bytes:
            raise LocalMemoryError(
                f"{name}: {n_elements * itemsize} bytes requested, "
                f"compute unit has {capacity_bytes}"
            )
        self.nbytes = n_elements * itemsize
        self._store = CheckedArray(
            np.zeros(n_elements, dtype=np.float64),
            name=name,
            fault=LocalMemoryError,
        )

    def __getitem__(self, idx) -> float:
        return self._store[idx]

    def __setitem__(self, idx, value) -> None:
        self._store[idx] = value

    def __len__(self) -> int:
        return len(self._store)
