"""CPU substrate: scalar golden reference, optimized baseline, cost model.

``naive`` is an independent, loop-based implementation of every stage used to
cross-check the vectorized canonical implementations; ``optimized`` is the
paper's "well-optimized CPU version" baseline; ``cost`` models its running
time on the Intel Core i5-3470 of Table I.
"""

from .pipeline import CPUPipeline, CPUResult

__all__ = ["CPUPipeline", "CPUResult"]
