"""Scalar golden reference for every sharpness stage.

These are direct transliterations of the paper's stage descriptions into
explicit Python loops.  They share **no code** with the vectorized canonical
implementations in :mod:`repro.algo.stages`, which makes them a meaningful
cross-check; the test suite asserts the two agree to float64 precision on a
battery of synthetic images.

They are intentionally simple and slow — use them on small images only.
"""

from __future__ import annotations

import numpy as np

from ..algo.stages import BORDER_WEIGHTS, SOBEL_GX, SOBEL_GY, UPSCALE_P
from ..types import FLOAT, SCALE, SharpnessParams


def downscale(src: np.ndarray) -> np.ndarray:
    arr = np.asarray(src, dtype=FLOAT)
    h, w = arr.shape
    nr, nc = h // SCALE, w // SCALE
    out = np.zeros((nr, nc), dtype=FLOAT)
    for i in range(nr):
        for j in range(nc):
            acc = 0.0
            for di in range(SCALE):
                for dj in range(SCALE):
                    acc += arr[SCALE * i + di, SCALE * j + dj]
            out[i, j] = acc / (SCALE * SCALE)
    return out


def upscale_border_line(line: np.ndarray, out_len: int) -> np.ndarray:
    d = np.asarray(line, dtype=FLOAT)
    n = d.shape[0]
    out = np.zeros(out_len, dtype=FLOAT)
    for c in range(n):
        out[SCALE * c] = d[c]
    for c in range(n - 1):
        for k in range(1, SCALE):
            wl, wr = BORDER_WEIGHTS[k]
            out[SCALE * c + k] = wl * d[c] + wr * d[c + 1]
    for j in (out_len - 3, out_len - 2, out_len - 1):
        out[j] = out[out_len - SCALE]
    return out


def upscale_body(down: np.ndarray) -> np.ndarray:
    d = np.asarray(down, dtype=FLOAT)
    nr, nc = d.shape
    out = np.zeros((SCALE * (nr - 1), SCALE * (nc - 1)), dtype=FLOAT)
    p = UPSCALE_P
    for r in range(nr - 1):
        for c in range(nc - 1):
            block = p @ d[r : r + 2, c : c + 2] @ p.T
            out[SCALE * r : SCALE * r + SCALE,
                SCALE * c : SCALE * c + SCALE] = block
    return out


def upscale(down: np.ndarray) -> np.ndarray:
    d = np.asarray(down, dtype=FLOAT)
    nr, nc = d.shape
    h, w = SCALE * nr, SCALE * nc
    up = np.zeros((h, w), dtype=FLOAT)
    up[2 : h - 2, 2 : w - 2] = upscale_body(d)
    row0 = upscale_border_line(d[0], w)
    up[0, :] = row0
    up[1, :] = row0
    rowl = upscale_border_line(d[nr - 1], w)
    up[h - 2, :] = rowl
    up[h - 1, :] = rowl
    col0 = upscale_border_line(d[:, 0], h)
    up[:, 0] = col0
    up[:, 1] = col0
    coll = upscale_border_line(d[:, nc - 1], h)
    up[:, w - 2] = coll
    up[:, w - 1] = coll
    corner = up[h - 3, w - 1]
    for i in (h - 2, h - 1):
        for j in (w - 2, w - 1):
            up[i, j] = corner
    return up


def perror(src: np.ndarray, upscaled: np.ndarray) -> np.ndarray:
    a = np.asarray(src, dtype=FLOAT)
    b = np.asarray(upscaled, dtype=FLOAT)
    h, w = a.shape
    out = np.zeros((h, w), dtype=FLOAT)
    for i in range(h):
        for j in range(w):
            out[i, j] = a[i, j] - b[i, j]
    return out


def sobel(src: np.ndarray) -> np.ndarray:
    arr = np.asarray(src, dtype=FLOAT)
    h, w = arr.shape
    out = np.zeros((h, w), dtype=FLOAT)
    for i in range(1, h - 1):
        for j in range(1, w - 1):
            gx = 0.0
            gy = 0.0
            for di in range(-1, 2):
                for dj in range(-1, 2):
                    v = arr[i + di, j + dj]
                    gx += SOBEL_GX[di + 1, dj + 1] * v
                    gy += SOBEL_GY[di + 1, dj + 1] * v
            out[i, j] = abs(gx) + abs(gy)
    return out


def reduce_sum(values: np.ndarray) -> float:
    arr = np.asarray(values, dtype=FLOAT)
    acc = 0.0
    for v in arr.ravel():
        acc += float(v)
    return acc


def reduce_mean(values: np.ndarray) -> float:
    arr = np.asarray(values, dtype=FLOAT)
    return reduce_sum(arr) / float(arr.size)


def strength_map(
    p_edge: np.ndarray, edge_mean: float, params: SharpnessParams
) -> np.ndarray:
    edge = np.asarray(p_edge, dtype=FLOAT)
    h, w = edge.shape
    out = np.zeros((h, w), dtype=FLOAT)
    if edge_mean <= 0.0:
        return out
    for i in range(h):
        for j in range(w):
            norm = edge[i, j] / edge_mean
            s = params.gain * norm**params.gamma
            out[i, j] = min(max(s, 0.0), params.strength_max)
    return out


def preliminary_sharpen(
    upscaled: np.ndarray, p_error: np.ndarray, strength: np.ndarray
) -> np.ndarray:
    u = np.asarray(upscaled, dtype=FLOAT)
    e = np.asarray(p_error, dtype=FLOAT)
    s = np.asarray(strength, dtype=FLOAT)
    h, w = u.shape
    out = np.zeros((h, w), dtype=FLOAT)
    for i in range(h):
        for j in range(w):
            out[i, j] = u[i, j] + s[i, j] * e[i, j]
    return out


def overshoot_control(
    preliminary: np.ndarray, src: np.ndarray, params: SharpnessParams
) -> np.ndarray:
    p = np.asarray(preliminary, dtype=FLOAT)
    o = np.asarray(src, dtype=FLOAT)
    h, w = p.shape
    osc = params.overshoot
    out = np.zeros((h, w), dtype=FLOAT)
    # Border: copy preliminary (clamped).
    for j in range(w):
        out[0, j] = min(max(p[0, j], 0.0), 255.0)
        out[h - 1, j] = min(max(p[h - 1, j], 0.0), 255.0)
    for i in range(h):
        out[i, 0] = min(max(p[i, 0], 0.0), 255.0)
        out[i, w - 1] = min(max(p[i, w - 1], 0.0), 255.0)
    # Body: Fig. 8 decision diagram.
    for i in range(1, h - 1):
        for j in range(1, w - 1):
            mx = -np.inf
            mn = np.inf
            for di in range(-1, 2):
                for dj in range(-1, 2):
                    v = o[i + di, j + dj]
                    mx = max(mx, v)
                    mn = min(mn, v)
            val = p[i, j]
            if val > mx:
                out[i, j] = min(mx + osc * (val - mx), 255.0)
            elif val < mn:
                out[i, j] = max(mn - osc * (mn - val), 0.0)
            else:
                out[i, j] = min(max(val, 0.0), 255.0)
    return out


def sharpen(
    src: np.ndarray, params: SharpnessParams | None = None
) -> dict[str, np.ndarray | float]:
    """Full scalar pipeline; mirrors :func:`repro.algo.stages.sharpen`."""
    params = params or SharpnessParams()
    arr = np.asarray(src, dtype=FLOAT)
    down = downscale(arr)
    up = upscale(down)
    err = perror(arr, up)
    edge = sobel(arr)
    edge_mean = reduce_mean(edge)
    strength = strength_map(edge, edge_mean, params)
    prelim = preliminary_sharpen(up, err, strength)
    final = overshoot_control(prelim, arr, params)
    return {
        "downscaled": down,
        "upscaled": up,
        "p_error": err,
        "p_edge": edge,
        "edge_mean": edge_mean,
        "strength": strength,
        "preliminary": prelim,
        "final": final,
    }
