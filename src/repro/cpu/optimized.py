"""The "well-optimized CPU version" of each stage.

These delegate to the canonical vectorized implementations in
:mod:`repro.algo.stages` — the NumPy equivalents of the compiled ``-O3``
loops the paper benchmarks against.  They exist as a named module so the
pipeline and tests can speak about the CPU baseline explicitly, and so the
golden-reference tests compare *three* implementations (naive scalar,
optimized CPU, simulated-GPU kernels) pairwise.
"""

from __future__ import annotations

from ..algo.stages import (
    downscale,
    overshoot_control,
    perror,
    preliminary_sharpen,
    reduce_mean,
    reduce_sum,
    sharpen,
    sobel,
    strength_map,
    upscale,
    upscale_body,
    upscale_border_apply,
    upscale_border_line,
)

__all__ = [
    "downscale",
    "overshoot_control",
    "perror",
    "preliminary_sharpen",
    "reduce_mean",
    "reduce_sum",
    "sharpen",
    "sobel",
    "strength_map",
    "upscale",
    "upscale_body",
    "upscale_border_apply",
    "upscale_border_line",
]
