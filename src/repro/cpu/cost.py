"""Analytic cost model of the CPU baseline (Intel Core i5-3470, Table I).

Each stage is characterized with the same flops/bytes methodology the GPU
cost model uses (:mod:`repro.simgpu.costmodel`), so CPU-vs-GPU comparisons
are apples-to-apples.  The per-pixel work counts below mirror what the
compiled C loops of each stage perform; the exponent-heavy strength stage
and the branchy overshoot stage dominate, reproducing the Fig. 13(a)
breakdown.

Stage labels follow Fig. 13: ``downscale``, ``upscale`` (body + border),
``perror``, ``sobel``, ``reduction``, ``strength`` (brightness strength +
preliminary sharpening), ``overshoot``.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..simgpu.costmodel import CpuStageCost, cpu_stage_time
from ..simgpu.device import CPUSpec, I5_3470
from ..types import SCALE, StageTimes

#: Bytes per element: 8-bit pixels and float intermediates, as in the
#: compiled baseline.
_U8 = 1
_F32 = 4

#: Fig. 13 stage order for reports.
CPU_STAGE_ORDER = (
    "downscale",
    "upscale",
    "perror",
    "sobel",
    "reduction",
    "strength",
    "overshoot",
)


def stage_costs(h: int, w: int) -> dict[str, CpuStageCost]:
    """Work characterization of every CPU stage for an ``h x w`` image."""
    if h <= 0 or w <= 0 or h % SCALE or w % SCALE:
        raise ValidationError(f"invalid image size {h}x{w}")
    n = h * w
    n_down = (h // SCALE) * (w // SCALE)
    n_body = (h - 4) * (w - 4)
    n_border = 2 * (h + w)

    return {
        # 16 loads, 15 adds, 1 scale per output pixel.
        "downscale": CpuStageCost(
            flops=17.0 * n_down,
            bytes_read=16.0 * _U8 * n_down,
            bytes_written=_F32 * n_down,
            label="downscale",
        ),
        # Body: 2x2 blend per output pixel (cache keeps the downscaled
        # reads cheap); border: branchy line interpolation.
        "upscale": CpuStageCost(
            flops=8.0 * n_body + 8.0 * n_border,
            bytes_read=4.0 * _F32 * n_body,
            bytes_written=_F32 * (n_body + 2.0 * n_border),
            branchy=True,
            label="upscale",
        ),
        "perror": CpuStageCost(
            flops=1.0 * n,
            bytes_read=(_U8 + _F32) * n,
            bytes_written=_F32 * n,
            label="perror",
        ),
        # 3x3 convolution pair: ~14 multiply/adds + 2 abs + 1 add.
        "sobel": CpuStageCost(
            flops=17.0 * n,
            bytes_read=8.0 * _U8 * n,
            bytes_written=_F32 * n,
            label="sobel",
        ),
        "reduction": CpuStageCost(
            flops=1.0 * n,
            bytes_read=_F32 * n,
            label="reduction",
        ),
        # Brightness strength (divide + pow, the "many exponentiations")
        # plus the preliminary sharpened matrix.
        "strength": CpuStageCost(
            flops=8.0 * n,
            heavy_ops=1.5 * n,
            bytes_read=3.0 * _F32 * n,
            bytes_written=_F32 * n,
            label="strength",
        ),
        # 3x3 min/max (16 compares) + the Fig. 8 decision tree; branchy.
        "overshoot": CpuStageCost(
            flops=30.0 * n,
            bytes_read=(9.0 * _U8 + _F32) * n,
            bytes_written=_U8 * n,
            branchy=True,
            label="overshoot",
        ),
    }


def stage_times(h: int, w: int, cpu: CPUSpec = I5_3470) -> StageTimes:
    """Simulated per-stage times of the CPU baseline."""
    times = StageTimes()
    for name, cost in stage_costs(h, w).items():
        times.add(name, cpu_stage_time(cost, cpu))
    return times


def total_time(h: int, w: int, cpu: CPUSpec = I5_3470) -> float:
    """Simulated total CPU pipeline time."""
    return stage_times(h, w, cpu).total


# ---------------------------------------------------------------------------
# Host-side helpers used by the GPU pipeline (border / reduction on CPU)
# ---------------------------------------------------------------------------


def border_host_time(h: int, w: int, cpu: CPUSpec = I5_3470) -> float:
    """CPU time to compute the four upscaled border lines (transfer billed
    separately by the pipeline)."""
    n_border = 2 * (h + w)
    cost = CpuStageCost(
        flops=8.0 * n_border,
        bytes_read=2.0 * _F32 * n_border,
        bytes_written=2.0 * _F32 * n_border,
        branchy=True,
        label="border_host",
    )
    return cpu_stage_time(cost, cpu)


def reduction_host_time(n_elements: int, cpu: CPUSpec = I5_3470) -> float:
    """CPU time to sum ``n_elements`` floats (transfer billed separately)."""
    cost = CpuStageCost(
        flops=1.0 * n_elements,
        bytes_read=_F32 * n_elements,
        label="reduction_host",
    )
    return cpu_stage_time(cost, cpu)


def padding_host_time(h: int, w: int, cpu: CPUSpec = I5_3470) -> float:
    """CPU time to copy the image into a padded matrix row by row — the
    host-side padding the ``WriteBufferRect`` optimization eliminates."""
    n = h * w
    cost = CpuStageCost(
        flops=0.0,
        bytes_read=_U8 * n,
        bytes_written=_U8 * n,
        label="padding_host",
    )
    return cpu_stage_time(cost, cpu)
