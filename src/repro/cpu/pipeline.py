"""The CPU baseline pipeline (the comparator of Fig. 12/13a).

Runs the canonical vectorized stages and attaches the i5-3470 cost model's
per-stage simulated times, so experiments can report both the baseline's
output image and its Fig.-13(a)-style time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algo import stages as algo
from ..obs.runctx import NULL_CONTEXT, RunContext
from ..simgpu.device import CPUSpec, I5_3470
from ..types import Image, SharpnessParams, StageTimes
from . import cost


@dataclass
class CPUResult:
    """Output of one CPU pipeline run."""

    final: np.ndarray
    times: StageTimes
    edge_mean: float
    intermediates: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.times.total

    def final_u8(self) -> np.ndarray:
        return np.clip(np.rint(self.final), 0, 255).astype(np.uint8)


class CPUPipeline:
    """The paper's well-optimized CPU implementation of sharpness.

    Parameters
    ----------
    params:
        Sharpening tuning parameters.
    cpu:
        CPU spec used for the simulated timing (defaults to Table I's
        i5-3470).
    keep_intermediates:
        Retain every intermediate matrix on the result (tests/examples).
    obs:
        Optional :class:`~repro.obs.RunContext`.  When given, every stage
        runs inside a host span and the cost model's per-stage simulated
        times land in the ``repro_stage_seconds`` histogram under
        ``pipeline=<label>``.
    label:
        Pipeline label used in metrics and logs (defaults to ``"cpu"``).
    """

    def __init__(self, params: SharpnessParams | None = None,
                 cpu: CPUSpec = I5_3470, *,
                 keep_intermediates: bool = False,
                 obs: RunContext | None = None,
                 label: str = "cpu") -> None:
        self.params = params or SharpnessParams()
        self.cpu = cpu
        self.keep_intermediates = keep_intermediates
        self.obs = obs or NULL_CONTEXT
        self.label = label

    def run(self, image: Image | np.ndarray) -> CPUResult:
        if not isinstance(image, Image):
            image = Image.from_array(np.asarray(image))
        src = image.plane
        h, w = src.shape
        obs = self.obs
        times = cost.stage_times(h, w, self.cpu)

        with obs.trace.span("cpu.run", pipeline=self.label, h=h, w=w):
            with obs.trace.span("cpu.downscale"):
                down = algo.downscale(src)
            with obs.trace.span("cpu.upscale"):
                up = algo.upscale(down)
            with obs.trace.span("cpu.perror"):
                err = algo.perror(src, up)
            with obs.trace.span("cpu.sobel"):
                edge = algo.sobel(src)
            with obs.trace.span("cpu.reduction"):
                edge_mean = algo.reduce_mean(edge)
            with obs.trace.span("cpu.strength"):
                strength = algo.strength_map(edge, edge_mean, self.params)
                prelim = algo.preliminary_sharpen(up, err, strength)
            with obs.trace.span("cpu.overshoot"):
                final = algo.overshoot_control(prelim, src, self.params)

        obs.observe_stages(self.label, times.times,
                           declare=cost.CPU_STAGE_ORDER)
        obs.record_run(self.label, times.total)
        if obs.enabled:
            obs.log.info(
                "pipeline.complete", pipeline=self.label, h=h, w=w,
                simulated_ms=times.total * 1e3,
            )

        intermediates: dict[str, np.ndarray] = {}
        if self.keep_intermediates:
            intermediates = {
                "downscaled": down,
                "upscaled": up,
                "p_error": err,
                "p_edge": edge,
                "strength": strength,
                "preliminary": prelim,
            }
        return CPUResult(
            final=final,
            times=times,
            edge_mean=edge_mean,
            intermediates=intermediates,
        )
