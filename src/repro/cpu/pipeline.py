"""The CPU baseline pipeline (the comparator of Fig. 12/13a).

Runs the canonical vectorized stages and attaches the i5-3470 cost model's
per-stage simulated times, so experiments can report both the baseline's
output image and its Fig.-13(a)-style time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algo import stages as algo
from ..simgpu.device import CPUSpec, I5_3470
from ..types import Image, SharpnessParams, StageTimes
from . import cost


@dataclass
class CPUResult:
    """Output of one CPU pipeline run."""

    final: np.ndarray
    times: StageTimes
    edge_mean: float
    intermediates: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.times.total

    def final_u8(self) -> np.ndarray:
        return np.clip(np.rint(self.final), 0, 255).astype(np.uint8)


class CPUPipeline:
    """The paper's well-optimized CPU implementation of sharpness.

    Parameters
    ----------
    params:
        Sharpening tuning parameters.
    cpu:
        CPU spec used for the simulated timing (defaults to Table I's
        i5-3470).
    keep_intermediates:
        Retain every intermediate matrix on the result (tests/examples).
    """

    def __init__(self, params: SharpnessParams | None = None,
                 cpu: CPUSpec = I5_3470, *,
                 keep_intermediates: bool = False) -> None:
        self.params = params or SharpnessParams()
        self.cpu = cpu
        self.keep_intermediates = keep_intermediates

    def run(self, image: Image | np.ndarray) -> CPUResult:
        if not isinstance(image, Image):
            image = Image.from_array(np.asarray(image))
        src = image.plane
        h, w = src.shape
        times = cost.stage_times(h, w, self.cpu)

        down = algo.downscale(src)
        up = algo.upscale(down)
        err = algo.perror(src, up)
        edge = algo.sobel(src)
        edge_mean = algo.reduce_mean(edge)
        strength = algo.strength_map(edge, edge_mean, self.params)
        prelim = algo.preliminary_sharpen(up, err, strength)
        final = algo.overshoot_control(prelim, src, self.params)

        intermediates: dict[str, np.ndarray] = {}
        if self.keep_intermediates:
            intermediates = {
                "downscaled": down,
                "upscaled": up,
                "p_error": err,
                "p_edge": edge,
                "strength": strength,
                "preliminary": prelim,
            }
        return CPUResult(
            final=final,
            times=times,
            edge_mean=edge_mean,
            intermediates=intermediates,
        )
