"""Core value types shared across the library.

The paper operates on the *brightness plane* of an image: a 2-D matrix of
8-bit pixels that is promoted to floating point for the arithmetic stages.
:class:`Image` wraps such a plane with the validation rules the sharpness
pipeline requires (sides divisible by 4, minimum size), and
:class:`SharpnessParams` carries the user-defined tuning parameters the paper
mentions (sharpening gain/gamma for the brightness-strength step and the
overshoot-control tuning factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ValidationError

#: dtype used for all intermediate floating-point arithmetic.  The paper's
#: OpenCL kernels compute in ``float``; float64 here keeps the CPU golden
#: reference and the simulated kernels bit-identical without juggling ULPs.
FLOAT = np.float64

#: dtype of input/output pixel planes.
PIXEL = np.uint8

#: Downscale factor fixed by the algorithm (4x4 block mean).
SCALE = 4

#: Minimum side length: the upscale border logic needs at least 4 downscaled
#: samples per side, i.e. a 16-pixel original side.
MIN_SIDE = 16


def validate_plane(array: np.ndarray) -> np.ndarray:
    """Validate an input brightness plane and return it as ``FLOAT``.

    Requirements (documented in DESIGN.md section 3):

    * 2-D array;
    * both sides divisible by :data:`SCALE`;
    * both sides at least :data:`MIN_SIDE`;
    * values representable in [0, 255].

    Raises :class:`~repro.errors.ValidationError` on violation.
    """
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ValidationError(f"expected a 2-D brightness plane, got ndim={arr.ndim}")
    h, w = arr.shape
    if h < MIN_SIDE or w < MIN_SIDE:
        raise ValidationError(
            f"image sides must be >= {MIN_SIDE}, got {h}x{w}"
        )
    if h % SCALE or w % SCALE:
        raise ValidationError(
            f"image sides must be divisible by {SCALE}, got {h}x{w}"
        )
    out = arr.astype(FLOAT, copy=True)
    if np.isnan(out).any():
        raise ValidationError("image contains NaN values")
    lo, hi = float(out.min()), float(out.max())
    if lo < 0.0 or hi > 255.0:
        raise ValidationError(
            f"pixel values must lie in [0, 255], got range [{lo}, {hi}]"
        )
    return out


@dataclass(frozen=True)
class Image:
    """A validated single-channel brightness plane.

    Parameters
    ----------
    plane:
        2-D array of pixels; stored as ``float64`` in [0, 255].
    """

    plane: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "plane", validate_plane(self.plane))

    @property
    def height(self) -> int:
        return int(self.plane.shape[0])

    @property
    def width(self) -> int:
        return int(self.plane.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    @property
    def nbytes_u8(self) -> int:
        """Size of the plane in bytes when stored as 8-bit pixels."""
        return self.height * self.width

    def to_u8(self) -> np.ndarray:
        """Return the plane rounded and clamped to ``uint8``."""
        return np.clip(np.rint(self.plane), 0, 255).astype(PIXEL)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "Image":
        return cls(plane=array)


@dataclass(frozen=True)
class SharpnessParams:
    """User-defined tuning parameters of the sharpness algorithm.

    The paper says the brightness strength is "worked out from the mean value
    and user-defined parameters" and involves "many exponentiations"; and that
    overshoot control adjusts by "user-defined tuning parameters".  The
    concrete functional forms are given in DESIGN.md section 3.

    Attributes
    ----------
    gain:
        Multiplier of the normalized edge response (sharpening amount).
    gamma:
        Exponent applied to the normalized edge response.  Values below 1
        boost weak edges; values above 1 emphasize strong edges.
    strength_max:
        Upper clamp of the per-pixel strength factor.
    overshoot:
        Overshoot-control tuning factor in [0, 1]; 0 clips hard at the local
        min/max, 1 keeps the full overshoot.
    """

    gain: float = 1.0
    gamma: float = 0.5
    strength_max: float = 4.0
    overshoot: float = 0.25

    def __post_init__(self) -> None:
        if self.gain < 0:
            raise ValidationError(f"gain must be >= 0, got {self.gain}")
        if self.gamma <= 0:
            raise ValidationError(f"gamma must be > 0, got {self.gamma}")
        if self.strength_max <= 0:
            raise ValidationError(
                f"strength_max must be > 0, got {self.strength_max}"
            )
        if not 0.0 <= self.overshoot <= 1.0:
            raise ValidationError(
                f"overshoot must lie in [0, 1], got {self.overshoot}"
            )


@dataclass
class StageTimes:
    """Per-stage simulated time breakdown of one pipeline run (seconds).

    Stage names follow Fig. 13 of the paper.  ``extra`` collects stages that
    only exist in some configurations (e.g. ``data_init`` for GPU transfer
    time).  All times are simulated-model times, not wall clock.
    """

    times: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        self.times[stage] = self.times.get(stage, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        return float(sum(self.times.values()))

    def fractions(self) -> dict[str, float]:
        """Return each stage's share of the total (sums to 1.0)."""
        tot = self.total
        if tot <= 0:
            return {k: 0.0 for k in self.times}
        return {k: v / tot for k, v in self.times.items()}

    def merged(self, mapping: dict[str, str]) -> "StageTimes":
        """Return a new breakdown with stages renamed/merged via ``mapping``.

        Stages absent from ``mapping`` keep their name.
        """
        out = StageTimes()
        for k, v in self.times.items():
            out.add(mapping.get(k, k), v)
        return out
