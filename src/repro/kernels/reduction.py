"""Two-stage tree reduction (section V.C, Fig. 9/10, Algorithms 1 and 2).

Stage 1 splits the array across workgroups; each workgroup tree-reduces its
slice in local memory and writes one partial sum.  Stage 2 (pipeline-level)
either ships the partials to the CPU or launches this kernel again.

Kernel layout (the paper fixes "the amount of data processed per thread"):

* workgroup size ``REDUCTION_WG = 128`` — two FirePro wavefronts;
* each work-item first-adds ``REDUCTION_ELEMENTS_PER_THREAD = 8`` elements
  during load (Harris' "first add during load"), so one workgroup covers
  1024 elements;
* the in-group tree then reduces the 128 partials to 1.

Both constants are exposed as factory parameters so the ablation experiments
can sweep them; the pipeline uses the defaults above.

Three tree variants, matching the paper's comparison (Fig. 15):

* ``unroll=0`` — plain tree: a barrier per halving step;
* ``unroll=1`` — Algorithm 1: barriers only for the cross-wavefront steps
  (one, for the default 128-item workgroup), the rest unrolled relying on
  wavefront lock-step (``WF_SYNC``);
* ``unroll=2`` — Algorithm 2: each of the two wavefronts reduces its own
  half in lock-step, then a barrier and a final combine — one *more*
  barrier than Algorithm 1, which is exactly why the paper measures it
  slower.  (Defined for the two-wavefront 128-item workgroup only.)

The unrolled kernels hardcode the GCN wavefront size of 64, like the
paper's OpenCL source.  Running them on a simulated device with a smaller
wavefront produces wrong sums (the test suite demonstrates this), faithfully
modelling why such code is device-specific.
"""

from __future__ import annotations

import functools
import math

from ..cl.kernel import KernelSpec
from ..errors import ConfigError
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..simgpu.emulator import BARRIER, WF_SYNC
from ..util.validation import require_power_of_two
from .base import F32

REDUCTION_WG = 128
REDUCTION_ELEMENTS_PER_THREAD = 8
#: Elements one workgroup consumes with the default layout.
GROUP_SPAN = REDUCTION_WG * REDUCTION_ELEMENTS_PER_THREAD
#: Wavefront size the unrolled kernels are written for (GCN).
KERNEL_WAVEFRONT = 64


@functools.lru_cache(maxsize=4096)
def reduction_layout(n: int, *, wg: int = REDUCTION_WG,
                     ept: int = REDUCTION_ELEMENTS_PER_THREAD
                     ) -> tuple[int, tuple[int], tuple[int]]:
    """Grid for reducing ``n`` elements: (n_groups, global, local).

    Pure and called per frame per reduction level; memoized."""
    if n <= 0:
        raise ConfigError(f"cannot reduce {n} elements")
    require_power_of_two(wg, "workgroup size")
    if ept <= 0:
        raise ConfigError(f"elements per thread must be > 0, got {ept}")
    n_groups = math.ceil(n / (wg * ept))
    return n_groups, (n_groups * wg,), (wg,)


def barriers_for(unroll: int, wg: int) -> int:
    """Workgroup barriers one group executes, per tree variant.

    * plain tree: one after the load plus one per halving step;
    * Algorithm 1: the load barrier plus one per halving step that still
      crosses the 64-lane wavefront boundary (zero extra for ``wg=128``);
    * Algorithm 2: Algorithm 1 plus the combine barrier.
    """
    if unroll == 0:
        return int(math.log2(wg)) + 1
    cross_wavefront_steps = max(
        int(math.log2(wg)) - int(math.log2(2 * KERNEL_WAVEFRONT)), 0
    )
    if unroll == 1:
        return 1 + cross_wavefront_steps
    return 2 + cross_wavefront_steps  # unroll == 2


def _make_load_phase(wg: int, ept: int):
    def load_phase(ctx, src, n, local_sum):
        """First-add-during-load: accumulate this item's strided elements."""
        lid = ctx.get_local_id(0)
        group = ctx.get_group_id(0)
        base = group * wg * ept
        acc = 0.0
        for j in range(ept):
            idx = base + lid + j * wg
            if idx < n:
                acc += src[idx]
        local_sum[lid] = acc

    return load_phase


def _make_emulator_naive(wg: int, ept: int):
    load_phase = _make_load_phase(wg, ept)

    def emulator(ctx, src, partial, n, local_sum):
        """Plain tree: one barrier per halving step."""
        lid = ctx.get_local_id(0)
        load_phase(ctx, src, n, local_sum)
        s = wg // 2
        while s >= 1:
            yield BARRIER
            if lid < s:
                local_sum[lid] = local_sum[lid] + local_sum[lid + s]
            s >>= 1
        yield BARRIER
        if lid == 0:
            partial[ctx.get_group_id(0)] = local_sum[0]

    return emulator


def _make_emulator_unroll1(wg: int, ept: int):
    load_phase = _make_load_phase(wg, ept)

    def emulator(ctx, src, partial, n, local_sum):
        """Algorithm 1: barriers only while the step spans wavefronts."""
        lid = ctx.get_local_id(0)
        load_phase(ctx, src, n, local_sum)
        yield BARRIER
        s = wg // 2
        # Steps whose reads cross the 64-lane boundary need barriers...
        while s > KERNEL_WAVEFRONT:
            if lid < s:
                local_sum[lid] = local_sum[lid] + local_sum[lid + s]
            yield BARRIER
            s >>= 1
        # ...the rest relies on 64-wide lock-step (WF_SYNC markers).
        while s >= 1:
            if lid < s:
                local_sum[lid] = local_sum[lid] + local_sum[lid + s]
            yield WF_SYNC
            s >>= 1
        if lid == 0:
            partial[ctx.get_group_id(0)] = local_sum[0]

    return emulator


def _make_emulator_unroll2(wg: int, ept: int):
    if wg != 2 * KERNEL_WAVEFRONT:
        raise ConfigError(
            "Algorithm 2 (unroll=2) is written for exactly two wavefronts "
            f"(workgroup {2 * KERNEL_WAVEFRONT}), got {wg}"
        )
    load_phase = _make_load_phase(wg, ept)

    def emulator(ctx, src, partial, n, local_sum):
        """Algorithm 2: both wavefronts reduce their half concurrently,
        then a barrier and a combine — one extra barrier vs Algorithm 1."""
        lid = ctx.get_local_id(0)
        load_phase(ctx, src, n, local_sum)
        yield BARRIER
        s = KERNEL_WAVEFRONT // 2
        while s >= 1:
            if lid < s:
                # wavefront 0 reduces local_sum[0 .. 63]
                local_sum[lid] = local_sum[lid] + local_sum[lid + s]
            if KERNEL_WAVEFRONT <= lid < KERNEL_WAVEFRONT + s:
                # wavefront 1 reduces local_sum[64 .. 127]
                local_sum[lid] = local_sum[lid] + local_sum[lid + s]
            yield WF_SYNC
            s >>= 1
        yield BARRIER
        if lid == 0:
            partial[ctx.get_group_id(0)] = (
                local_sum[0] + local_sum[KERNEL_WAVEFRONT]
            )

    return emulator


_EMULATOR_FACTORIES = {
    0: _make_emulator_naive,
    1: _make_emulator_unroll1,
    2: _make_emulator_unroll2,
}


def make_reduction_spec(*, unroll: int = 1, wg: int = REDUCTION_WG,
                        ept: int = REDUCTION_ELEMENTS_PER_THREAD,
                        builtins: bool = False) -> KernelSpec:
    """Build a stage-1 reduction spec; args are ``(src, partial, n)``.

    ``src`` holds at least ``n`` elements (flattened); ``partial`` receives
    one sum per workgroup.  ``wg``/``ept`` override the paper's layout for
    ablation studies.
    """
    if unroll not in _EMULATOR_FACTORIES:
        raise ConfigError(f"unroll must be 0, 1 or 2, got {unroll}")
    require_power_of_two(wg, "workgroup size")
    if ept <= 0:
        raise ConfigError(f"elements per thread must be > 0, got {ept}")
    emulator = _EMULATOR_FACTORIES[unroll](wg, ept)
    span = wg * ept
    n_barriers = barriers_for(unroll, wg)

    def functional(global_size, local_size, src, partial, n):
        flat = src.ravel()[:n]
        n_groups = global_size[0] // wg
        out = partial.ravel()
        for g in range(n_groups):
            out[g] = flat[g * span : (g + 1) * span].sum()

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        n = int(args[2])
        n_groups = global_size[0] // local_size[0]
        items = global_size[0]
        # Load: ept adds per item; tree: ~2 ops per item amortized.
        flops = items * (ept + 2.0)
        # Local traffic: each item stores its partial, the tree moves about
        # 3 more values per item through the LDS.
        local_bytes = items * 4.0 * F32
        return KernelCost(
            work_items=items,
            flops=flops,
            heavy_ops=0.0,
            slow_int_ops=items * 4.0,
            global_bytes_read=n * F32,
            global_bytes_written=n_groups * F32,
            local_bytes=local_bytes,
            barriers_per_group=float(n_barriers),
            n_groups=n_groups,
            workgroup_size=local_size[0],
            divergent=False,
            uses_builtins=builtins,
            label=f"reduction_u{unroll}",
        )

    return KernelSpec(
        name=f"reduction_u{unroll}",
        functional=functional,
        emulator=emulator,
        cost=cost,
        local_mem=lambda local_size, args: {"local_sum": local_size[0]},
        arg_names=("src", "partial", "n"),
    )
