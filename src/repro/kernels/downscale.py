"""Downscale kernel: one work-item per output pixel (Fig. 2).

Each item averages its 4x4 source block.  The ``padded`` variant reads the
same pixels out of the padded original buffer (offset by one) — the change
section V.A makes so only the padded matrix needs transferring.
"""

from __future__ import annotations


from .. import algo
from ..cl.kernel import KernelSpec
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..types import SCALE
from .base import F32, U8, pixel_kernel_cost

#: Per-item work: 16 loads + 15 adds + 1 multiply (1/16 scale).
_FLOPS_PER_ITEM = 17.0
_READS_PER_ITEM = 16.0 * U8
_WRITES_PER_ITEM = 1.0 * F32


def make_downscale_spec(*, padded: bool = False,
                        builtins: bool = False) -> KernelSpec:
    """Build the downscale kernel spec.

    Arguments at launch: ``(src, dst, h, w)`` where ``src`` is the original
    (or padded original) buffer, ``dst`` the ``(h/4, w/4)`` output, and
    ``h, w`` the *original* image dimensions.
    """
    off = 1 if padded else 0

    def functional(global_size, local_size, src, dst, h, w):
        view = src[off : off + h, off : off + w]
        dst[...] = algo.downscale(view)

    def emulator(ctx, src, dst, h, w):
        gx = ctx.get_global_id(0)
        gy = ctx.get_global_id(1)
        if gx >= w // SCALE or gy >= h // SCALE:
            return
        acc = 0.0
        for di in range(SCALE):
            for dj in range(SCALE):
                acc += src[off + SCALE * gy + di, off + SCALE * gx + dj]
        dst[gy, gx] = acc / (SCALE * SCALE)

    def cost(device: DeviceSpec, global_size, local_size, args) -> KernelCost:
        return pixel_kernel_cost(
            device, global_size, local_size,
            label="downscale",
            flops_per_item=_FLOPS_PER_ITEM,
            read_bytes_per_item=_READS_PER_ITEM,
            write_bytes_per_item=_WRITES_PER_ITEM,
            int_ops_per_item=6.0,
            divergent=False,
            uses_builtins=builtins,
        )

    return KernelSpec(
        name="downscale",
        functional=functional,
        emulator=emulator,
        cost=cost,
        arg_names=("src", "dst", "h", "w"),
    )
