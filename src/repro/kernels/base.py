"""Shared helpers for kernel specifications.

``pixel_kernel_cost`` converts a per-work-item work characterization into
the launch-level :class:`~repro.simgpu.costmodel.KernelCost` the timing
model consumes; ``pick_local_size`` chooses a legal workgroup shape for an
NDRange the way the paper's host code would (largest square tile that
divides the grid, capped by the device limit).
"""

from __future__ import annotations

import math

from ..errors import InvalidWorkGroupError
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for grid sizing.

    Grid extents are counts, so both operands must be non-negative (and
    the divisor positive) — a negative extent is always an upstream bug,
    and ``-(-a // b)`` would silently round it toward zero instead.
    """
    if a < 0:
        raise InvalidWorkGroupError(f"extent must be >= 0, got {a}")
    if b <= 0:
        raise InvalidWorkGroupError(f"divisor must be > 0, got {b}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to a non-negative multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def pick_local_size(global_size: tuple[int, ...], device: DeviceSpec,
                    preferred: int = 16) -> tuple[int, ...]:
    """Choose a workgroup shape that divides ``global_size``.

    For each dimension the largest power-of-two divisor up to ``preferred``
    is used, additionally capped so the workgroup does not exceed the
    device's limit.  1-D ranges prefer a full wavefront multiple.
    """
    if not global_size:
        raise InvalidWorkGroupError("empty global size")
    if any(g <= 0 for g in global_size):
        raise InvalidWorkGroupError(
            f"global size must be positive in every dimension, "
            f"got {global_size}"
        )
    if len(global_size) == 1:
        g = global_size[0]
        limit = min(device.max_workgroup_size, 4 * device.wavefront_size)
        size = limit
        while size > 1 and g % size:
            size //= 2
        return (size,)
    local: list[int] = []
    budget = device.max_workgroup_size
    for g in global_size:
        size = preferred
        while size > 1 and (g % size or size > budget):
            size //= 2
        local.append(size)
        budget = max(budget // size, 1)
    return tuple(local)


def n_groups_of(global_size: tuple[int, ...],
                local_size: tuple[int, ...]) -> int:
    groups = 1
    for g, loc in zip(global_size, local_size):
        if g % loc:
            raise InvalidWorkGroupError(
                f"global size {g} not divisible by local size {loc}"
            )
        groups *= g // loc
    return groups


def pixel_kernel_cost(
    device: DeviceSpec,
    global_size: tuple[int, ...],
    local_size: tuple[int, ...],
    *,
    label: str,
    flops_per_item: float,
    read_bytes_per_item: float,
    write_bytes_per_item: float,
    heavy_per_item: float = 0.0,
    int_ops_per_item: float = 4.0,
    local_bytes_per_item: float = 0.0,
    barriers_per_group: float = 0.0,
    divergent: bool = False,
    uses_builtins: bool = False,
) -> KernelCost:
    """Launch cost of a kernel doing uniform per-item work.

    ``int_ops_per_item`` defaults to 4: the index arithmetic
    (divide/modulo/multiply for 2-D addressing) that the paper's
    "instruction selection" optimization replaces with shifts and masks —
    when ``uses_builtins`` is set the device charges these at the fast rate.
    """
    items = math.prod(global_size)
    wg = math.prod(local_size)
    return KernelCost(
        work_items=items,
        flops=flops_per_item * items,
        heavy_ops=heavy_per_item * items,
        slow_int_ops=int_ops_per_item * items,
        global_bytes_read=read_bytes_per_item * items,
        global_bytes_written=write_bytes_per_item * items,
        local_bytes=local_bytes_per_item * items,
        barriers_per_group=barriers_per_group,
        n_groups=n_groups_of(global_size, local_size),
        workgroup_size=wg,
        divergent=divergent,
        uses_builtins=uses_builtins,
        label=label,
    )


#: Bytes per element of the 8-bit image buffers.
U8 = 1
#: Effective bytes charged per *unaligned, per-item* byte load: single
#: uchar reads at neighbour offsets occupy a full 4-byte memory transaction
#: on GCN.  Scalar stencil kernels (Sobel, overshoot, fused sharpness) pay
#: this; the vectorized variants amortize it with aligned ``vload4`` reads
#: shared across four outputs, which is the mechanism behind the
#: "Vectorization for Data Locality" gains of section V.D.
U8_SCATTERED = 4
#: Bytes per element of float intermediate buffers (device float).
F32 = 4
