"""pError kernel: the elementwise difference matrix (base pipeline only).

After kernel fusion (section V.B) this kernel disappears — the difference is
computed inside the fused sharpness kernel and lives in registers.
"""

from __future__ import annotations

from .. import algo
from ..cl.kernel import KernelSpec
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from .base import F32, U8, pixel_kernel_cost


def make_perror_spec(*, padded: bool = False,
                     builtins: bool = False) -> KernelSpec:
    """Build the pError spec; args are ``(src, up, dst, h, w)``."""
    off = 1 if padded else 0

    def functional(global_size, local_size, src, up, dst, h, w):
        view = src[off : off + h, off : off + w]
        dst[...] = algo.perror(view, up)

    def emulator(ctx, src, up, dst, h, w):
        gx = ctx.get_global_id(0)
        gy = ctx.get_global_id(1)
        if gx >= w or gy >= h:
            return
        dst[gy, gx] = src[gy + off, gx + off] - up[gy, gx]

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        return pixel_kernel_cost(
            device, global_size, local_size,
            label="perror",
            flops_per_item=1.0,
            read_bytes_per_item=1.0 * U8 + 1.0 * F32,
            write_bytes_per_item=1.0 * F32,
            int_ops_per_item=4.0,
            divergent=False,
            uses_builtins=builtins,
        )

    return KernelSpec(
        name="perror",
        functional=functional,
        emulator=emulator,
        cost=cost,
        arg_names=("src", "up", "dst", "h", "w"),
    )
