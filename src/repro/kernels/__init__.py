"""Device kernels of the sharpness pipeline.

Each module defines the kernels of one pipeline stage as
:class:`~repro.cl.kernel.KernelSpec` factories.  Every kernel has a
*functional* face (whole-array NumPy, delegating to :mod:`repro.algo` so all
configurations agree bit-for-bit), a *cost* face (launch characterization
for the timing model) and — for the kernels whose device-side structure the
paper optimizes — an *emulator* face written per-work-item in OpenCL style.

Factories take the optimization knobs that change the kernel's code in the
paper (``padded``, ``vector``, ``builtins``, reduction ``unroll`` level) and
return the corresponding spec, exactly like recompiling a different kernel
source.
"""

from .base import ceil_div, pick_local_size, pixel_kernel_cost
from .downscale import make_downscale_spec
from .perror import make_perror_spec
from .reduction import (
    REDUCTION_ELEMENTS_PER_THREAD,
    REDUCTION_WG,
    make_reduction_spec,
    reduction_layout,
)
from .sharpness import (
    make_overshoot_spec,
    make_prelim_spec,
    make_sharpness_fused_spec,
)
from .sobel import make_sobel_spec
from .upscale_border import make_upscale_border_spec
from .upscale_center import make_upscale_center_spec

__all__ = [
    "ceil_div",
    "pick_local_size",
    "pixel_kernel_cost",
    "make_downscale_spec",
    "make_perror_spec",
    "REDUCTION_ELEMENTS_PER_THREAD",
    "REDUCTION_WG",
    "make_reduction_spec",
    "reduction_layout",
    "make_overshoot_spec",
    "make_prelim_spec",
    "make_sharpness_fused_spec",
    "make_sobel_spec",
    "make_upscale_border_spec",
    "make_upscale_center_spec",
]
