"""Upscale-border kernel (Fig. 3) — the branchy stage of section V.E.

The paper describes this stage as "lots of conditional statements, which are
inefficient to be processed on GPU and also affects the degree of
parallelism", and finds the CPU faster below 768x768 with the GPU winning
above.  Both properties follow from the natural naive port the paper
implies: **one work-item per border line pair**, each looping serially over
its whole line with data-dependent branches (interpolate / copy / duplicate).

* item 0 — top pair: computes the upscaled first border line and writes it
  to rows 0 and 1, columns ``[2, w-2)`` (the four border columns belong to
  the column items, so concurrent items never write conflicting values);
* item 1 — bottom pair: rows ``h-2`` and ``h-1``;
* item 2 — left pair: columns 0 and 1, all rows;
* item 3 — right pair: columns ``w-2`` and ``w-1``, all rows.

The launch is four work-items: its time is dominated by the dependent
per-element global accesses of the serial loops (``serial_latency_s`` in the
cost model), which grows linearly in the image side — while the CPU
alternative pays the PCI-E round-trip of the downscaled matrix and the
upscaled buffer, which grows quadratically.  The two curves cross near
768x768, reproducing Fig. 17.
"""

from __future__ import annotations

from .. import algo
from ..algo.stages import BORDER_WEIGHTS
from ..cl.kernel import KernelSpec
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..types import SCALE


def border_line_value(down_line, pos: int, out_len: int) -> float:
    """Value of one position of an upscaled border line (shared rule).

    ``down_line`` only needs ``__getitem__``; this is used both by the
    emulator kernel (on checked device memory) and by tests.
    """
    n = out_len // SCALE
    if pos >= out_len - 3:
        return float(down_line[n - 1])
    c, k = pos // SCALE, pos % SCALE
    if k == 0:
        return float(down_line[c])
    wl, wr = BORDER_WEIGHTS[k]
    return float(wl * down_line[c] + wr * down_line[c + 1])


class _Line:
    """Adapter exposing one row/column of a 2-D checked array as a line."""

    __slots__ = ("_arr", "_index", "_axis")

    def __init__(self, arr, index: int, axis: int) -> None:
        self._arr = arr
        self._index = index
        self._axis = axis

    def __getitem__(self, i: int) -> float:
        if self._axis == 0:
            return self._arr[self._index, i]
        return self._arr[i, self._index]


def _functional(global_size, local_size, down, up, h, w):
    algo.upscale_border_apply(up, down)


def _emulator(ctx, down, up, h, w):
    gid = ctx.get_global_id(0)
    nr, nc = h // SCALE, w // SCALE
    if gid == 0:  # top pair: rows 0 and 1
        line = _Line(down, 0, 0)
        for j in range(2, w - 2):
            v = border_line_value(line, j, w)
            up[0, j] = v
            up[1, j] = v
    elif gid == 1:  # bottom pair: rows h-2 and h-1
        line = _Line(down, nr - 1, 0)
        for j in range(2, w - 2):
            v = border_line_value(line, j, w)
            up[h - 2, j] = v
            up[h - 1, j] = v
    elif gid == 2:  # left pair: columns 0 and 1
        line = _Line(down, 0, 1)
        for i in range(h):
            v = border_line_value(line, i, h)
            up[i, 0] = v
            up[i, 1] = v
    elif gid == 3:  # right pair: columns w-2 and w-1
        line = _Line(down, nc - 1, 1)
        for i in range(h):
            v = border_line_value(line, i, h)
            up[i, w - 2] = v
            up[i, w - 1] = v
    # items beyond 3 (grid padding) do nothing


def make_upscale_border_spec(*, builtins: bool = False) -> KernelSpec:
    """Build the border kernel spec; args are ``(down, up, h, w)``."""

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        h, w = int(args[2]), int(args[3])
        # Four serial loops run concurrently (one item each); the row pair
        # walks w elements, the column pair walks h.  Every element is a
        # dependent load -> blend -> scattered store chain, so the launch
        # is latency-bound on the longest line.
        serial = max(h, w) * device.mem_latency_s
        n_border = 2 * (h + w)
        return KernelCost(
            work_items=max(int(global_size[0]), 1),
            flops=6.0 * n_border,
            slow_int_ops=10.0 * n_border,
            global_bytes_read=2.0 * 4.0 * n_border,
            global_bytes_written=2.0 * 4.0 * n_border,
            n_groups=1,
            workgroup_size=int(local_size[0]),
            divergent=True,
            uses_builtins=builtins,
            serial_latency_s=serial,
            label="upscale_border",
        )

    return KernelSpec(
        name="upscale_border",
        functional=_functional,
        emulator=_emulator,
        cost=cost,
        arg_names=("down", "up", "h", "w"),
    )


#: NDRange of the border kernel: one item per line pair.
BORDER_GLOBAL = (4,)
BORDER_LOCAL = (4,)
