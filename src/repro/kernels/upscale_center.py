"""Upscale-center kernel: the body interpolation of Fig. 4/5.

Two variants, matching section V.D:

* **scalar** (base): one work-item per *output pixel*; each item fetches its
  2x2 downscaled neighbourhood and computes one weighted sum — adjacent
  items re-fetch the same four values, so the kernel reads ~4 floats per
  output.
* **vector** (optimized): one work-item per 4x4 *output block*; the item
  fetches the 2x2 block once and produces all 16 outputs
  (``P @ D @ P.T``, stored with ``vstore4``) — a 16x reduction in global
  reads, the "data sharing" the paper vectorizes for.

Launch geometry: scalar uses global size ``(w-4, h-4)`` (one per body
pixel); vector uses ``((w-4)/4, (h-4)/4)`` (one per block).
"""

from __future__ import annotations

from .. import algo
from ..algo.stages import UPSCALE_P
from ..cl.kernel import KernelSpec
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..types import SCALE
from .base import F32, pixel_kernel_cost


def _functional(global_size, local_size, down, up, h, w):
    up[2 : h - 2, 2 : w - 2] = algo.upscale_body(down)


def _emulator_scalar(ctx, down, up, h, w):
    """One output body pixel per item: gx in [0, w-4), gy in [0, h-4)."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w - 4 or gy >= h - 4:
        return
    r, ky = gy // SCALE, gy % SCALE
    c, kx = gx // SCALE, gx % SCALE
    wy0, wy1 = UPSCALE_P[ky]
    wx0, wx1 = UPSCALE_P[kx]
    value = (
        wy0 * (wx0 * down[r, c] + wx1 * down[r, c + 1])
        + wy1 * (wx0 * down[r + 1, c] + wx1 * down[r + 1, c + 1])
    )
    up[gy + 2, gx + 2] = value


# One item expands a whole 4x4 output block (16 writes per item), so the
# item id necessarily strides by SCALE in the output row.
def _emulator_vector(ctx, down, up, h, w):  # repro: ignore[KA-COALESCE]
    """One 4x4 output block per item: gx in [0, (w-4)/4), gy similarly."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= (w - 4) // SCALE or gy >= (h - 4) // SCALE:
        return
    d00 = down[gy, gx]
    d01 = down[gy, gx + 1]
    d10 = down[gy + 1, gx]
    d11 = down[gy + 1, gx + 1]
    for ky in range(SCALE):
        wy0, wy1 = UPSCALE_P[ky]
        left = wy0 * d00 + wy1 * d10
        right = wy0 * d01 + wy1 * d11
        for kx in range(SCALE):
            wx0, wx1 = UPSCALE_P[kx]
            up[SCALE * gy + ky + 2, SCALE * gx + kx + 2] = (
                wx0 * left + wx1 * right
            )


def make_upscale_center_spec(*, vector: bool = False,
                             builtins: bool = False) -> KernelSpec:
    """Build the upscale-center spec; args are ``(down, up, h, w)``."""

    if vector:

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            # Per block: 4 float reads, 16 float writes; separable
            # interpolation costs 8 row blends + 32 column blends ~ 72 flops.
            return pixel_kernel_cost(
                device, global_size, local_size,
                label="upscale_center_vec",
                flops_per_item=72.0,
                read_bytes_per_item=4.0 * F32,
                write_bytes_per_item=16.0 * F32,
                int_ops_per_item=6.0,
                divergent=False,
                uses_builtins=builtins,
            )

        emulator = _emulator_vector
        name = "upscale_center_vec"
    else:

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            # Per pixel: 2x2 fetch (4 float reads), ~8 flops, 1 float write,
            # plus the phase/index arithmetic (div/mod by 4).
            return pixel_kernel_cost(
                device, global_size, local_size,
                label="upscale_center",
                flops_per_item=8.0,
                read_bytes_per_item=4.0 * F32,
                write_bytes_per_item=1.0 * F32,
                int_ops_per_item=8.0,
                divergent=False,
                uses_builtins=builtins,
            )

        emulator = _emulator_scalar
        name = "upscale_center"

    return KernelSpec(
        name=name,
        functional=_functional,
        emulator=emulator,
        cost=cost,
        arg_names=("down", "up", "h", "w"),
    )
