"""Sharpness kernels: preliminary sharpen, overshoot control, and the fused
kernel of section V.B.

In the base pipeline the sub-sharpness tail is three kernels — ``perror``
(see :mod:`~repro.kernels.perror`), ``prelim`` (brightness strength +
preliminary sharpened matrix) and ``overshoot`` — each communicating through
global memory.  Kernel fusion collapses them into one ``sharpness`` kernel:
the difference and preliminary values live in registers, removing two kernel
launches and the global-memory round-trips of the ``pError`` and
``preliminary`` matrices.

The vector (x4) fused variant additionally shares the 3x6 original-image
neighbourhood across four adjacent outputs, like the vectorized Sobel.
"""

from __future__ import annotations

from .. import algo
from ..cl.kernel import KernelSpec
from ..errors import ConfigError
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..types import SharpnessParams
from .base import F32, U8, U8_SCATTERED, pixel_kernel_cost

#: Strength evaluation: one divide + one pow (charged as heavy ops) plus
#: clamp/multiply/add bookkeeping.
_STRENGTH_HEAVY = 1.5
_STRENGTH_FLOPS = 6.0
#: Overshoot decision: 8 max + 8 min for the 3x3 extrema, the comparisons
#: and the blend.
_OVERSHOOT_FLOPS = 30.0


def _clamp(v: float, lo: float, hi: float) -> float:
    return lo if v < lo else hi if v > hi else v


def _strength(edge: float, mean: float, params: SharpnessParams) -> float:
    if mean <= 0.0:
        return 0.0
    return _clamp(
        params.gain * (edge / mean) ** params.gamma, 0.0, params.strength_max
    )


def _overshoot_pixel(src, y, x, off, h, w, prelim_v, osc) -> float:
    """Final value of one body pixel given its preliminary value."""
    mx = -1.0
    mn = 256.0
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            v = src[y + di + off, x + dj + off]
            if v > mx:
                mx = v
            if v < mn:
                mn = v
    if prelim_v > mx:
        return min(mx + osc * (prelim_v - mx), 255.0)
    if prelim_v < mn:
        return max(mn - osc * (mn - prelim_v), 0.0)
    return _clamp(prelim_v, 0.0, 255.0)


# ---------------------------------------------------------------------------
# Base kernel 1: prelim (strength + preliminary sharpened matrix)
# ---------------------------------------------------------------------------


def make_prelim_spec(*, builtins: bool = False) -> KernelSpec:
    """Preliminary-sharpen spec; args
    ``(up, p_edge, p_error, dst, mean, params, h, w)``."""

    def functional(global_size, local_size, up, p_edge, p_error, dst,
                   mean, params, h, w):
        strength = algo.strength_map(p_edge, mean, params)
        dst[...] = algo.preliminary_sharpen(up, p_error, strength)

    def emulator(ctx, up, p_edge, p_error, dst, mean, params, h, w):
        gx = ctx.get_global_id(0)
        gy = ctx.get_global_id(1)
        if gx >= w or gy >= h:
            return
        s = _strength(p_edge[gy, gx], mean, params)
        dst[gy, gx] = up[gy, gx] + s * p_error[gy, gx]

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        return pixel_kernel_cost(
            device, global_size, local_size,
            label="prelim",
            flops_per_item=_STRENGTH_FLOPS + 2.0,
            heavy_per_item=_STRENGTH_HEAVY,
            read_bytes_per_item=3.0 * F32,
            write_bytes_per_item=1.0 * F32,
            int_ops_per_item=4.0,
            divergent=False,
            uses_builtins=builtins,
        )

    return KernelSpec(
        name="prelim",
        functional=functional,
        emulator=emulator,
        cost=cost,
        arg_names=("up", "p_edge", "p_error", "dst", "mean", "params",
                   "h", "w"),
    )


# ---------------------------------------------------------------------------
# Base kernel 2: overshoot control
# ---------------------------------------------------------------------------


def make_overshoot_spec(*, padded: bool = False,
                        builtins: bool = False) -> KernelSpec:
    """Overshoot-control spec; args ``(prelim, src, dst, params, h, w)``.

    ``dst`` is the final image buffer (8-bit transfer size).  Without
    built-in ``select``/``clamp`` the data-dependent branches of Fig. 8 make
    the kernel divergent.
    """
    off = 1 if padded else 0

    def functional(global_size, local_size, prelim, src, dst, params, h, w):
        view = src[off : off + h, off : off + w]
        dst[...] = algo.overshoot_control(prelim, view, params)

    def emulator(ctx, prelim, src, dst, params, h, w):
        gx = ctx.get_global_id(0)
        gy = ctx.get_global_id(1)
        if gx >= w or gy >= h:
            return
        p = prelim[gy, gx]
        if gx == 0 or gx == w - 1 or gy == 0 or gy == h - 1:
            dst[gy, gx] = _clamp(p, 0.0, 255.0)
            return
        dst[gy, gx] = _overshoot_pixel(src, gy, gx, off, h, w, p,
                                       params.overshoot)

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        return pixel_kernel_cost(
            device, global_size, local_size,
            label="overshoot",
            flops_per_item=_OVERSHOOT_FLOPS,
            read_bytes_per_item=9.0 * U8_SCATTERED + 1.0 * F32,
            write_bytes_per_item=1.0 * U8,
            int_ops_per_item=6.0,
            divergent=not builtins,
            uses_builtins=builtins,
        )

    return KernelSpec(
        name="overshoot",
        functional=functional,
        emulator=emulator,
        cost=cost,
        arg_names=("prelim", "src", "dst", "params", "h", "w"),
    )


# ---------------------------------------------------------------------------
# Fused kernel (section V.B): pError + strength + preliminary + overshoot
# ---------------------------------------------------------------------------


def _fused_pixel(up, p_edge, src, mean, params, off, h, w, gy, gx) -> float:
    """One output pixel of the fused kernel: everything in registers."""
    u = up[gy, gx]
    err = src[gy + off, gx + off] - u  # pError, in a register
    s = _strength(p_edge[gy, gx], mean, params)
    p = u + s * err  # preliminary, in a register
    if gx == 0 or gx == w - 1 or gy == 0 or gy == h - 1:
        return _clamp(p, 0.0, 255.0)
    return _overshoot_pixel(src, gy, gx, off, h, w, p, params.overshoot)


def make_sharpness_fused_spec(*, padded: bool = False, vector: bool = False,
                              builtins: bool = False) -> KernelSpec:
    """Fused sharpness spec; args ``(up, p_edge, src, dst, mean, params,
    h, w)``.

    The functional face composes the same canonical stage functions the
    unfused kernels use, so fused and unfused pipelines produce identical
    images; the cost face omits the pError/preliminary global-memory
    round-trips, which is the fusion payoff.
    """
    if vector and not padded:
        raise ConfigError("the vectorized sharpness kernel requires padding")
    off = 1 if padded else 0

    def functional(global_size, local_size, up, p_edge, src, dst,
                   mean, params, h, w):
        view = src[off : off + h, off : off + w]
        err = algo.perror(view, up)
        strength = algo.strength_map(p_edge, mean, params)
        prelim = algo.preliminary_sharpen(up, err, strength)
        dst[...] = algo.overshoot_control(prelim, view, params)

    if vector:

        # Vectorized by 4-wide pixel groups: the stride-4 item id is the
        # float4 layout, not an accident (same trade as the Sobel vector
        # kernel).
        def emulator(ctx, up, p_edge, src, dst, mean, params, h, w):  # repro: ignore[KA-COALESCE]
            gx4 = ctx.get_global_id(0)
            gy = ctx.get_global_id(1)
            if 4 * gx4 >= w or gy >= h:
                return
            # vload the 3x6 original-image tile once; the four lanes share
            # it for both the pError term (centre row) and the overshoot
            # window — the same data-sharing as the vectorized Sobel.
            tile = [[0.0] * 6 for _ in range(3)]
            for r in range(3):
                for c in range(6):
                    y = gy - 1 + r + off
                    x = 4 * gx4 - 1 + c + off
                    if 0 <= y < h + 2 * off and 0 <= x < w + 2 * off:
                        tile[r][c] = src[y, x]
            osc = params.overshoot
            for lane in range(4):
                gx = 4 * gx4 + lane
                if gx >= w:
                    return
                u = up[gy, gx]
                centre = tile[1][lane + 1]
                err = centre - u  # pError, in a register
                s = _strength(p_edge[gy, gx], mean, params)
                p = u + s * err  # preliminary, in a register
                if gx == 0 or gx == w - 1 or gy == 0 or gy == h - 1:
                    dst[gy, gx] = _clamp(p, 0.0, 255.0)
                    continue
                mx = -1.0
                mn = 256.0
                for r in range(3):
                    for c in range(lane, lane + 3):
                        v = tile[r][c]
                        if v > mx:
                            mx = v
                        if v < mn:
                            mn = v
                if p > mx:
                    dst[gy, gx] = min(mx + osc * (p - mx), 255.0)
                elif p < mn:
                    dst[gy, gx] = max(mn - osc * (mn - p), 0.0)
                else:
                    dst[gy, gx] = _clamp(p, 0.0, 255.0)

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            # Per item (4 outputs): 3x6 original tile (18 u8) shared across
            # the four overshoot windows + 4 up + 4 pEdge floats.
            return pixel_kernel_cost(
                device, global_size, local_size,
                label="sharpness_vec",
                flops_per_item=4.0 * (_STRENGTH_FLOPS + 2.0
                                      + _OVERSHOOT_FLOPS),
                heavy_per_item=4.0 * _STRENGTH_HEAVY,
                read_bytes_per_item=18.0 * U8 + 8.0 * F32,
                write_bytes_per_item=4.0 * U8,
                int_ops_per_item=8.0,
                divergent=not builtins,
                uses_builtins=builtins,
            )

        name = "sharpness_vec"
    else:

        def emulator(ctx, up, p_edge, src, dst, mean, params, h, w):
            gx = ctx.get_global_id(0)
            gy = ctx.get_global_id(1)
            if gx >= w or gy >= h:
                return
            dst[gy, gx] = _fused_pixel(
                up, p_edge, src, mean, params, off, h, w, gy, gx
            )

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            return pixel_kernel_cost(
                device, global_size, local_size,
                label="sharpness",
                flops_per_item=_STRENGTH_FLOPS + 2.0 + _OVERSHOOT_FLOPS,
                heavy_per_item=_STRENGTH_HEAVY,
                read_bytes_per_item=10.0 * U8_SCATTERED + 2.0 * F32,
                write_bytes_per_item=1.0 * U8,
                int_ops_per_item=6.0,
                divergent=not builtins,
                uses_builtins=builtins,
            )

        name = "sharpness"

    return KernelSpec(
        name=name,
        functional=functional,
        emulator=emulator,
        cost=cost,
        arg_names=("up", "p_edge", "src", "dst", "mean", "params", "h", "w"),
    )
