"""Sobel kernel (Fig. 6/7) with the optimizations of sections V.A/V.D.

Variants:

* **scalar, unpadded** (base): one item per pixel; border items write 0,
  body items convolve — the bounds checks make the kernel branch-divergent.
* **scalar, padded**: identical output, but the kernel reads the padded
  original so the bounds checks vanish (the Brown et al. trick the paper
  adopts); not divergent.
* **vector (x4), padded**: one item per four horizontally-adjacent outputs;
  the item ``vload``s the 3x6 neighbourhood (18 values) once and shares it
  across the four convolutions — halving global reads from 4x9 to 18, the
  exact saving of Fig. 11.
* **tiled (LDS), padded**: the Brown et al. shared-memory approach the
  paper cites in related work: each workgroup cooperatively loads its
  (tile+2)^2 halo tile into local memory, barriers, then convolves from the
  LDS.  Global reads drop to ~1.3 bytes/pixel, but the kernel pays local
  traffic and a barrier per group — the trade-off behind Zhang et al.'s
  observation (also cited) that cache-based vectorization beats shared
  memory on modern GPUs.  Kept as an ablation variant
  (see ``repro.experiments.ablations``); the pipeline uses the paper's
  vectorized kernel.
"""

from __future__ import annotations

from .. import algo
from ..cl.kernel import KernelSpec
from ..errors import ConfigError
from ..simgpu.costmodel import KernelCost
from ..simgpu.device import DeviceSpec
from ..simgpu.emulator import BARRIER
from .base import F32, U8, U8_SCATTERED, pixel_kernel_cost

#: One 3x3 Sobel pair: 8 neighbour loads, ~14 multiply/adds, 2 abs, 1 add.
_FLOPS_PER_PIXEL = 17.0


def _make_functional(off: int):
    def functional(global_size, local_size, src, dst, h, w):
        view = src[off : off + h, off : off + w]
        dst[...] = algo.sobel(view)

    return functional


def _make_emulator_scalar(off: int):
    def emulator(ctx, src, dst, h, w):
        gx = ctx.get_global_id(0)
        gy = ctx.get_global_id(1)
        if gx >= w or gy >= h:
            return
        if gx == 0 or gx == w - 1 or gy == 0 or gy == h - 1:
            dst[gy, gx] = 0.0
            return
        y, x = gy + off, gx + off
        nw = src[y - 1, x - 1]
        n = src[y - 1, x]
        ne = src[y - 1, x + 1]
        wv = src[y, x - 1]
        ev = src[y, x + 1]
        sw = src[y + 1, x - 1]
        s = src[y + 1, x]
        se = src[y + 1, x + 1]
        gxv = (ne + 2.0 * ev + se) - (nw + 2.0 * wv + sw)
        gyv = (sw + 2.0 * s + se) - (nw + 2.0 * n + ne)
        dst[gy, gx] = abs(gxv) + abs(gyv)

    return emulator


def _make_emulator_vector(off: int):
    # Each item owns a 4-wide pixel group (float4 lanes), so the item id
    # strides by 4 through global memory by design — the shared-tile reuse
    # is the point of the vectorized variant (paper sec. 4.2).
    def emulator(ctx, src, dst, h, w):  # repro: ignore[KA-COALESCE]
        gx4 = ctx.get_global_id(0)  # covers pixels [4*gx4, 4*gx4 + 4)
        gy = ctx.get_global_id(1)
        if 4 * gx4 >= w or gy >= h:
            return
        # vload the 3x6 neighbourhood once (clamped at the image edge;
        # padded source guarantees the reads are in bounds).
        tile = [[0.0] * 6 for _ in range(3)]
        for r in range(3):
            for c in range(6):
                y = gy - 1 + r + off
                x = 4 * gx4 - 1 + c + off
                if 0 <= y < h + 2 * off and 0 <= x < w + 2 * off:
                    tile[r][c] = src[y, x]
        for lane in range(4):
            x_out = 4 * gx4 + lane
            if x_out >= w:
                return
            if x_out == 0 or x_out == w - 1 or gy == 0 or gy == h - 1:
                dst[gy, x_out] = 0.0
                continue
            t0, t1, t2 = tile[0], tile[1], tile[2]
            c0, c1, c2 = lane, lane + 1, lane + 2
            gxv = (t0[c2] + 2.0 * t1[c2] + t2[c2]) - (
                t0[c0] + 2.0 * t1[c0] + t2[c0]
            )
            gyv = (t2[c0] + 2.0 * t2[c1] + t2[c2]) - (
                t0[c0] + 2.0 * t0[c1] + t0[c2]
            )
            dst[gy, x_out] = abs(gxv) + abs(gyv)

    return emulator


def _emulator_tiled(ctx, src, dst, h, w, tile):
    """Cooperative LDS tile load + barrier + convolution from local memory.

    The tile covers the workgroup's output block plus a 1-pixel halo; it is
    loaded in up to four strided passes so every lane participates.
    """
    lx = ctx.get_local_id(0)
    ly = ctx.get_local_id(1)
    tsx = ctx.get_local_size(0)
    tsy = ctx.get_local_size(1)
    gx0 = ctx.get_group_id(0) * tsx
    gy0 = ctx.get_group_id(1) * tsy
    tw = tsx + 2
    th = tsy + 2
    # Strided cooperative load of the (tsy+2) x (tsx+2) halo tile from the
    # padded source (origin offset by +1 makes every halo read in-bounds).
    lid = lx + ly * tsx
    n_items = tsx * tsy
    idx = lid
    while idx < tw * th:
        ty, tx = idx // tw, idx % tw
        sy = gy0 + ty
        sx = gx0 + tx
        if sy < h + 2 and sx < w + 2:
            tile[idx] = src[sy, sx]
        idx += n_items
    yield BARRIER

    gx = gx0 + lx
    gy = gy0 + ly
    if gx >= w or gy >= h:
        return
    if gx == 0 or gx == w - 1 or gy == 0 or gy == h - 1:
        dst[gy, gx] = 0.0
        return
    # Convolve from local memory; tile (ly+1, lx+1) is pixel (gy, gx).
    def at(dy, dx):
        return tile[(ly + 1 + dy) * tw + (lx + 1 + dx)]

    nw = at(-1, -1)
    n = at(-1, 0)
    ne = at(-1, 1)
    wv = at(0, -1)
    ev = at(0, 1)
    sw = at(1, -1)
    sv = at(1, 0)
    se = at(1, 1)
    gxv = (ne + 2.0 * ev + se) - (nw + 2.0 * wv + sw)
    gyv = (sw + 2.0 * sv + se) - (nw + 2.0 * n + ne)
    dst[gy, gx] = abs(gxv) + abs(gyv)


def make_sobel_spec(*, padded: bool = False, vector: bool = False,
                    tiled: bool = False,
                    builtins: bool = False) -> KernelSpec:
    """Build a Sobel spec; args are ``(src, dst, h, w)``.

    The vector and tiled variants require the padded source (their halo
    reads would be out of bounds at the image edge otherwise), matching the
    paper where vectorization builds on the padded transfer.
    """
    if vector and tiled:
        raise ConfigError("vector and tiled Sobel variants are exclusive")
    if (vector or tiled) and not padded:
        raise ConfigError(
            "the vectorized/tiled Sobel kernels require padding"
        )
    off = 1 if padded else 0

    if tiled:

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            import math

            items = math.prod(global_size)
            wg = math.prod(local_size)
            n_groups = items // wg
            tile_bytes = (local_size[0] + 2) * (local_size[1] + 2) * U8
            return KernelCost(
                work_items=items,
                # Convolution + the cooperative-load index arithmetic.
                flops=items * (_FLOPS_PER_PIXEL + 8.0),
                slow_int_ops=items * 10.0,
                # Coalesced tile load: each halo byte fetched once.
                global_bytes_read=float(n_groups * tile_bytes),
                global_bytes_written=items * F32,
                # 1 tile store + 8 neighbour loads through the LDS.
                local_bytes=items * 9.0 * F32,
                barriers_per_group=1.0,
                n_groups=n_groups,
                workgroup_size=wg,
                divergent=False,
                uses_builtins=builtins,
                label="sobel_tiled",
            )

        return KernelSpec(
            name="sobel_tiled",
            functional=_make_functional(off),
            emulator=_emulator_tiled,
            cost=cost,
            local_mem=lambda local_size, args: {
                "tile": (local_size[0] + 2) * (local_size[1] + 2)
            },
            arg_names=("src", "dst", "h", "w"),
        )

    if vector:

        def cost(device: DeviceSpec, global_size, local_size,
                 args) -> KernelCost:
            # Per item (4 outputs): 18 u8 reads shared across 4 convolutions.
            return pixel_kernel_cost(
                device, global_size, local_size,
                label="sobel_vec",
                flops_per_item=4.0 * _FLOPS_PER_PIXEL,
                read_bytes_per_item=18.0 * U8,
                write_bytes_per_item=4.0 * F32,
                int_ops_per_item=8.0,
                divergent=False,
                uses_builtins=builtins,
            )

        return KernelSpec(
            name="sobel_vec",
            functional=_make_functional(off),
            emulator=_make_emulator_vector(off),
            cost=cost,
            arg_names=("src", "dst", "h", "w"),
        )

    def cost(device: DeviceSpec, global_size, local_size,
             args) -> KernelCost:
        return pixel_kernel_cost(
            device, global_size, local_size,
            label="sobel" if not padded else "sobel_padded",
            flops_per_item=_FLOPS_PER_PIXEL,
            read_bytes_per_item=8.0 * U8_SCATTERED,
            write_bytes_per_item=1.0 * F32,
            int_ops_per_item=6.0,
            divergent=not padded,
            uses_builtins=builtins,
        )

    return KernelSpec(
        name="sobel" if not padded else "sobel_padded",
        functional=_make_functional(off),
        emulator=_make_emulator_scalar(off),
        cost=cost,
        arg_names=("src", "dst", "h", "w"),
    )
