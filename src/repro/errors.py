"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch the whole family with one ``except`` clause.  The sub-classes mirror
the layers of the system: validation of user inputs, the simulated OpenCL
runtime (host API misuse), and the device emulator (kernel-side faults such as
barrier divergence or out-of-bounds local memory access).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input image, shape, or parameter failed validation."""


class ConfigError(ReproError, ValueError):
    """An invalid combination of pipeline configuration options."""


# --------------------------------------------------------------------------
# Simulated OpenCL host API errors (mirror CL_* error codes conceptually)
# --------------------------------------------------------------------------


class CLError(ReproError):
    """Base class for simulated OpenCL host-API errors."""


class InvalidBufferError(CLError):
    """A buffer was used after release, across contexts, or out of bounds."""


class InvalidKernelArgsError(CLError):
    """Kernel arguments do not match the kernel's declared signature."""


class InvalidWorkGroupError(CLError):
    """The NDRange / workgroup configuration is invalid for the device."""


class MapError(CLError):
    """Invalid map/unmap usage (double map, unmap without map, ...)."""


class QueueError(CLError):
    """Invalid command-queue usage (enqueue after finish-and-release, ...)."""


# --------------------------------------------------------------------------
# Device emulator faults (kernel-side)
# --------------------------------------------------------------------------


class DeviceFault(ReproError):
    """Base class for faults detected while emulating a kernel."""


class BarrierDivergenceError(DeviceFault):
    """Work-items of one workgroup reached different numbers of barriers."""


class LocalMemoryError(DeviceFault):
    """Out-of-bounds or over-allocated local (``__local``) memory access."""


class GlobalMemoryError(DeviceFault):
    """Out-of-bounds access to a global-memory buffer from a kernel."""


class RaceConditionError(DeviceFault):
    """Two work-items accessed the same memory cell without an intervening
    synchronization point, with at least one access being a write."""
