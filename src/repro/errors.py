"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch the whole family with one ``except`` clause.  The sub-classes mirror
the layers of the system: validation of user inputs, the simulated OpenCL
runtime (host API misuse), and the device emulator (kernel-side faults such as
barrier divergence or out-of-bounds local memory access).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input image, shape, or parameter failed validation."""


class ConfigError(ReproError, ValueError):
    """An invalid combination of pipeline configuration options."""


class UsageError(ReproError):
    """A CLI-level input problem (unreadable file, malformed spec).

    The command-line front end maps this family to exit code 2, mirroring
    the argparse convention that "the user gave us something unusable" is
    distinct from "the run failed" (exit code 1).
    """


# --------------------------------------------------------------------------
# Retryability markers (resilience layer)
# --------------------------------------------------------------------------


class TransientError:
    """Mixin marking an error as safe to retry.

    Retryability can be declared two ways: inherit this mixin, or set a
    boolean ``transient`` attribute on the exception instance (the fault
    injector does the latter so one fault class can carry either flavor).
    :func:`is_transient` resolves both.
    """


class PermanentError:
    """Mixin marking an error as *not* retryable (fail fast / fall back)."""


def is_transient(exc: BaseException) -> bool:
    """Should a retry policy re-attempt after ``exc``?

    The instance ``transient`` attribute wins over the class hierarchy, so
    injected faults can flip one class both ways; unmarked errors default
    to non-retryable (retrying an unknown failure hides bugs).
    """
    flagged = getattr(exc, "transient", None)
    if flagged is not None:
        return bool(flagged)
    if isinstance(exc, PermanentError):
        return False
    return isinstance(exc, TransientError)


# --------------------------------------------------------------------------
# Simulated OpenCL host API errors (mirror CL_* error codes conceptually)
# --------------------------------------------------------------------------


class CLError(ReproError):
    """Base class for simulated OpenCL host-API errors."""


class InvalidBufferError(CLError):
    """A buffer was used after release, across contexts, or out of bounds."""


class InvalidKernelArgsError(CLError):
    """Kernel arguments do not match the kernel's declared signature."""


class InvalidWorkGroupError(CLError):
    """The NDRange / workgroup configuration is invalid for the device."""


class MapError(CLError):
    """Invalid map/unmap usage (double map, unmap without map, ...)."""


class QueueError(CLError):
    """Invalid command-queue usage (enqueue after finish-and-release, ...)."""


# --------------------------------------------------------------------------
# Device emulator faults (kernel-side)
# --------------------------------------------------------------------------


class DeviceFault(ReproError):
    """Base class for faults detected while emulating a kernel."""


class BarrierDivergenceError(DeviceFault):
    """Work-items of one workgroup reached different numbers of barriers."""


class LocalMemoryError(DeviceFault):
    """Out-of-bounds or over-allocated local (``__local``) memory access."""


class GlobalMemoryError(DeviceFault):
    """Out-of-bounds access to a global-memory buffer from a kernel."""


class RaceConditionError(DeviceFault):
    """Two work-items accessed the same memory cell without an intervening
    synchronization point, with at least one access being a write."""


# --------------------------------------------------------------------------
# Injected faults and resilience-layer failures
# --------------------------------------------------------------------------


class TransferFault(CLError):
    """A (simulated) PCI-E transfer failed mid-flight.

    Raised by the fault injector at the command-queue transfer sites; the
    ``transient`` attribute says whether a retry can succeed.
    """


class KernelLaunchFault(CLError):
    """A (simulated) kernel launch failed (lost device, reset, ...)."""


class DeviceOOMError(CLError, TransientError):
    """Device allocation failed (``CL_MEM_OBJECT_ALLOCATION_FAILURE``).

    Transient by default: on a busy device, memory freed by completing
    work makes a delayed retry plausible.
    """


class WorkerCrashError(ReproError, TransientError):
    """A batch worker died mid-frame; the frame can be re-dispatched."""


class FrameTimeoutError(ReproError, TransientError):
    """Per-frame execution exceeded its deadline."""


class FrameHangError(ReproError):
    """A frame exceeded the watchdog's hang threshold and was cancelled.

    Distinct from :class:`FrameTimeoutError` (the retry policy's
    *per-attempt* deadline, transient and retried): a hang is diagnosed by
    the lifecycle watchdog across the whole frame, the frame is
    dead-lettered, and the journal marks it for replay on resume —
    retrying it in the same run would just hang again.
    """


class CircuitOpenError(ReproError):
    """The circuit breaker is open: the protected path is not accepting
    calls and no fallback was configured."""


class RetryExhaustedError(ReproError):
    """A retry policy ran out of attempts (or budget); carries the last
    underlying failure as ``__cause__``."""


class FaultSpecError(UsageError, ConfigError):
    """A ``--inject-faults`` specification string failed to parse."""
