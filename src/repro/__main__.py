"""Command-line interface: sharpen real image files.

Usage::

    python -m repro sharpen input.pgm output.pgm --preset crisp
    python -m repro sharpen photo.ppm out.ppm --pipeline gpu --report
    python -m repro sharpen in.pgm out.pgm --log-level debug \
        --trace-out run.json --metrics-out metrics.prom
    python -m repro demo demo.pgm --size 512   # make a synthetic test image

``--trace-out`` writes a Chrome/Perfetto-loadable trace containing the host
spans *and* the simulated device timeline; ``--metrics-out`` writes the
run's metrics registry (per-stage duration histograms, transfer/kernel
counters) in the Prometheus text format; ``--log-level debug`` streams one
structured logfmt record per enqueued command to stderr.

PGM inputs are treated as brightness planes; PPM inputs are converted to
YCbCr, the luma plane is sharpened, and chroma is passed through.
Image sides must be multiples of 4 (the algorithm's downscale factor).

Batch mode streams many frames through the throughput engine::

    python -m repro sharpen 'frames/*.pgm' out_dir --batch --workers 4

The input is a glob (or a directory) of same-named PGM frames and the
output is a directory; frames run through
:class:`~repro.core.batch.BatchEngine` (shared plan cache + buffer pool,
bounded worker threads, ordered results) and a throughput summary is
printed to stderr.

Resilience (see ``docs/resilience.md``): ``--resilient`` runs frames under
retry + circuit-breaker + GPU->CPU fallback policies; ``--inject-faults
SPEC`` arms the deterministic fault injector (e.g.
``'transfer:rate=0.2,kind=transient;seed=7'``) to rehearse failures.

Durable jobs (see ``docs/lifecycle.md``) make a batch crash-safe::

    python -m repro sharpen 'frames/*.pgm' out_dir --batch \
        --job-dir job/ --hang-timeout 30 --health-out health.json
    python -m repro sharpen --resume job/            # after a crash/drain
    python -m repro sharpen --replay-failures job/   # re-run dead letters

``--job-dir`` journals every frame outcome (fsync'd write-ahead log +
atomically rotated checkpoint manifest), so a killed job resumes where it
stopped, bit-identical to an uninterrupted run.  SIGTERM/SIGINT drains
gracefully (finish in-flight frames under ``--drain-timeout``); a second
signal aborts.  ``--hang-timeout`` arms the watchdog that cancels stuck
frames.

Exit-code contract (tested by ``tests/test_cli_errors.py``):
0 success; 1 runtime failure (some frames dead-lettered, or an engine
error); 2 unusable input/configuration; 3 drained with pending frames
(resumable); 4 aborted (checkpoint still valid).
"""

from __future__ import annotations

import argparse
import glob
import pathlib
import sys

import numpy as np

from .algo.color import sharpen_rgb
from .core import BASE, OPTIMIZED, GPUPipeline
from .cpu import CPUPipeline
from .errors import ReproError, UsageError, ValidationError
from .obs import LEVELS, RunContext
from .resilience import FallbackPipeline, FaultPlan, ResilienceConfig
from .types import Image, SharpnessParams
from .util import images as synth
from .util.io import read_pgm, read_ppm, write_pgm, write_ppm

from .presets import PRESETS

PIPELINES = ("cpu", "gpu-base", "gpu")


def _read_image(reader, path):
    """Read an input image, folding unreadable/corrupt files into
    :class:`~repro.errors.UsageError` (CLI exit code 2)."""
    try:
        return reader(path)
    except OSError as exc:
        raise UsageError(f"cannot read {path}: {exc}") from exc
    except ValidationError as exc:
        raise UsageError(f"corrupt image {path}: {exc}") from exc


def _parse_fault_plan(args) -> FaultPlan | None:
    """``--inject-faults`` spec -> FaultPlan (FaultSpecError is already a
    UsageError, so a bad spec exits with code 2)."""
    if not args.inject_faults:
        return None
    return FaultPlan.parse(args.inject_faults)


def _build_params(args) -> SharpnessParams:
    params = PRESETS[args.preset]
    overrides = {
        k: getattr(args, k)
        for k in ("gain", "gamma", "strength_max", "overshoot")
        if getattr(args, k) is not None
    }
    if overrides:
        params = SharpnessParams(**{
            "gain": params.gain, "gamma": params.gamma,
            "strength_max": params.strength_max,
            "overshoot": params.overshoot, **overrides,
        })
    return params


def _make_obs(args) -> RunContext:
    """Build the run's observability context from the CLI flags."""
    faults = _parse_fault_plan(args)
    obs = RunContext.create(
        log_level=args.log_level, log_format=args.log_format,
        meta={"pipeline": args.pipeline, "preset": args.preset,
              "input": str(args.input)},
        faults=faults,
    )
    obs.log.info("run.start", pipeline=args.pipeline, preset=args.preset,
                 input=str(args.input), output=str(args.output))
    if faults is not None:
        obs.log.warning("faults.armed", spec=faults.describe())
    return obs


def _make_luma_runner(pipeline: str, params: SharpnessParams,
                      report: bool, obs: RunContext,
                      resilient: bool = False):
    if pipeline == "cpu":
        pipe = CPUPipeline(params, obs=obs)
    else:
        flags = BASE if pipeline == "gpu-base" else OPTIMIZED
        pipe = GPUPipeline(flags, params, obs=obs, label=pipeline)
        if resilient:
            pipe = FallbackPipeline(pipe, ResilienceConfig(), obs=obs)

    def run(plane: np.ndarray) -> np.ndarray:
        res = pipe.run(Image.from_array(plane))
        backend = getattr(res, "backend", None)
        if backend and backend != "gpu":
            print(f"[resilience] frame served by {backend}",
                  file=sys.stderr)
        if report:
            label = {"cpu": "CPU baseline", "gpu-base": "base GPU",
                     "gpu": "optimized GPU"}[pipeline]
            print(f"[{label}] simulated time "
                  f"{res.total_time * 1e3:.3f} ms", file=sys.stderr)
            for stage, frac in sorted(res.times.fractions().items(),
                                      key=lambda kv: -kv[1]):
                print(f"  {stage:10s} {100 * frac:5.1f}%", file=sys.stderr)
        return res.final

    return run


def _batch_inputs(pattern: str) -> list[pathlib.Path]:
    """Resolve the batch input (glob or directory) to sorted PGM frames."""
    path = pathlib.Path(pattern)
    if path.is_dir():
        frames = sorted(path.glob("*.pgm"))
    else:
        frames = sorted(
            pathlib.Path(p) for p in glob.glob(pattern)
        )
    frames = [p for p in frames if p.suffix.lower() == ".pgm"]
    if not frames:
        raise ReproError(
            f"--batch found no .pgm frames matching {pattern!r} "
            "(batch mode sharpens PGM brightness planes)"
        )
    return frames


def cmd_batch(args, params, obs) -> int:
    """Sharpen a frame sequence through the throughput engine."""
    from .core import BatchEngine

    if args.pipeline == "cpu":
        raise ReproError("--batch drives the GPU pipelines; "
                         "use --pipeline gpu or gpu-base")
    frames = _batch_inputs(args.input)
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    flags = BASE if args.pipeline == "gpu-base" else OPTIMIZED
    resilience = ResilienceConfig() if args.resilient else None
    engine = BatchEngine(flags, params, workers=args.workers,
                         keep_outputs=True, obs=obs,
                         resilience=resilience)
    with obs.span("cli.batch", frames=len(frames), workers=args.workers):
        result = engine.run(
            source=lambda: (_read_image(read_pgm, p) for p in frames))
        for src_path, plane in zip(frames, result.outputs):
            if plane is not None:
                write_pgm(out_dir / src_path.name, plane)
    stats = result.plan_stats
    backends = ", ".join(f"{k}={v}"
                         for k, v in sorted(result.backends().items()))
    print(
        f"[batch] {result.n_frames} frames, {args.workers} workers: "
        f"{result.frames_per_second:.1f} fps wall "
        f"({result.wall_seconds * 1e3:.0f} ms total), plan cache "
        f"{stats['hits']} hits / {stats['misses']} misses, "
        f"backends {backends}",
        file=sys.stderr,
    )
    if result.dead_letters:
        for failure in result.dead_letters:
            print(f"[batch] frame {failure.index} failed: "
                  f"{failure.error_type}: {failure.error}",
                  file=sys.stderr)
    written = result.n_frames - result.n_failed
    print(f"wrote {written} frames to {out_dir}"
          + (f" ({result.n_failed} failed)" if result.n_failed else ""))
    return 0 if result.ok else 1


def cmd_durable(args, params, obs) -> int:
    """Run (or resume) a crash-safe batch job (see docs/lifecycle.md)."""
    from .lifecycle import BatchJob, LifecycleConfig

    lifecycle = LifecycleConfig(
        drain_timeout=args.drain_timeout,
        hang_timeout=args.hang_timeout,
        health_path=args.health_out,
        install_signals=True,
    )
    resume_dir = args.resume or args.replay_failures
    if resume_dir:
        if args.input or args.output:
            raise UsageError(
                "--resume/--replay-failures take the job directory; "
                "drop the input/output arguments (they come from the "
                "job manifest)"
            )
        job = BatchJob.resume(resume_dir, obs=obs, lifecycle=lifecycle)
    else:
        if args.input is None or args.output is None:
            raise UsageError(
                "--job-dir needs the input frames and the output "
                "directory (or use --resume <job-dir>)"
            )
        if args.pipeline == "cpu":
            raise ReproError("--job-dir drives the GPU pipelines; "
                             "use --pipeline gpu or gpu-base")
        frames = _batch_inputs(args.input)
        flags = BASE if args.pipeline == "gpu-base" else OPTIMIZED
        job = BatchJob(
            inputs=frames, output_dir=args.output, job_dir=args.job_dir,
            flags=flags, params=params, workers=args.workers,
            obs=obs, lifecycle=lifecycle,
        )
    with obs.span("cli.durable_job", job_dir=str(job.job_dir)):
        outcome = job.run(replay_failures=bool(args.replay_failures))
    print(
        f"[job] {outcome.state}: {len(outcome.completed)}/"
        f"{len(job.frame_ids)} frames completed, "
        f"{len(outcome.failed)} failed, {len(outcome.pending)} pending "
        f"({outcome.executed} executed this run) -> {job.output_dir}",
        file=sys.stderr,
    )
    for fid in outcome.failed:
        print(f"[job] failed frame: {fid} "
              f"(re-run with --replay-failures {job.job_dir})",
              file=sys.stderr)
    if outcome.pending:
        print(f"[job] resume with: python -m repro sharpen "
              f"--resume {job.job_dir}", file=sys.stderr)
    return outcome.exit_code


def cmd_sharpen(args) -> int:
    params = _build_params(args)
    obs = _make_obs(args)
    if args.job_dir or args.resume or args.replay_failures:
        code = cmd_durable(args, params, obs)
        _write_exports(args, obs)
        return code
    if args.input is None or args.output is None:
        raise UsageError(
            "input and output are required (omit them only with "
            "--resume/--replay-failures)"
        )
    if args.batch:
        code = cmd_batch(args, params, obs)
        _write_exports(args, obs)
        return code
    src = pathlib.Path(args.input)
    runner = _make_luma_runner(args.pipeline, params, args.report, obs,
                               resilient=args.resilient)

    suffix = src.suffix.lower()
    with obs.span("cli.sharpen", input=str(src), format=suffix):
        if suffix == ".ppm":
            rgb = _read_image(read_ppm, src)
            out = sharpen_rgb(rgb, params, luma_sharpener=runner)
            write_ppm(args.output, out)
        elif suffix == ".pgm":
            plane = _read_image(read_pgm, src)
            write_pgm(args.output, runner(plane))
        else:
            raise ReproError(
                f"unsupported input format {suffix!r}; use .pgm or .ppm"
            )
    _write_exports(args, obs)
    print(f"wrote {args.output}")
    return 0


def _write_exports(args, obs) -> None:
    if args.trace_out:
        path = obs.write_trace(args.trace_out)
        obs.log.info("trace.written", path=str(path))
        print(f"wrote trace to {path}", file=sys.stderr)
    if args.metrics_out:
        path = obs.write_metrics(args.metrics_out)
        obs.log.info("metrics.written", path=str(path))
        print(f"wrote metrics to {path}", file=sys.stderr)


def cmd_demo(args) -> int:
    plane = synth.text_like(args.size, args.size, seed=1)
    write_pgm(args.output, plane)
    print(f"wrote synthetic {args.size}x{args.size} test image to "
          f"{args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Image sharpening (ICPP 2015 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sharpen = sub.add_parser("sharpen", help="sharpen a PGM/PPM file")
    p_sharpen.add_argument("input", nargs="?", default=None)
    p_sharpen.add_argument("output", nargs="?", default=None)
    p_sharpen.add_argument("--pipeline", choices=PIPELINES, default="gpu")
    p_sharpen.add_argument("--preset", choices=sorted(PRESETS),
                           default="default")
    p_sharpen.add_argument("--gain", type=float, default=None)
    p_sharpen.add_argument("--gamma", type=float, default=None)
    p_sharpen.add_argument("--strength-max", dest="strength_max",
                           type=float, default=None)
    p_sharpen.add_argument("--overshoot", type=float, default=None)
    p_sharpen.add_argument("--report", action="store_true",
                           help="print the simulated time breakdown")
    p_sharpen.add_argument("--batch", action="store_true",
                           help="treat input as a glob/directory of .pgm "
                                "frames and output as a directory; stream "
                                "them through the batch engine")
    p_sharpen.add_argument("--workers", type=int, default=4,
                           help="worker threads for --batch (default: 4)")
    p_sharpen.add_argument("--resilient", action="store_true",
                           help="run under the resilience layer: retry "
                                "transient faults, trip a circuit breaker "
                                "on persistent GPU failures and degrade "
                                "to the CPU pipeline (see "
                                "docs/resilience.md)")
    p_sharpen.add_argument("--inject-faults", dest="inject_faults",
                           default=None, metavar="SPEC",
                           help="deterministic fault injection, e.g. "
                                "'transfer:rate=0.2,kind=transient;seed=7'"
                                " (sites: transfer, kernel, oom, worker, "
                                "hang)")
    p_sharpen.add_argument("--job-dir", dest="job_dir", default=None,
                           metavar="DIR",
                           help="run the batch as a durable job: journal "
                                "every frame outcome into DIR so the job "
                                "is crash-safe and resumable (see "
                                "docs/lifecycle.md)")
    p_sharpen.add_argument("--resume", default=None, metavar="DIR",
                           help="resume a durable job from its job "
                                "directory; completed frames are skipped, "
                                "pending/failed frames re-run")
    p_sharpen.add_argument("--replay-failures", dest="replay_failures",
                           default=None, metavar="DIR",
                           help="re-enqueue only the dead-lettered frames "
                                "of a durable job")
    p_sharpen.add_argument("--drain-timeout", dest="drain_timeout",
                           type=float, default=10.0, metavar="SECONDS",
                           help="graceful-shutdown budget: how long the "
                                "first SIGTERM/SIGINT lets in-flight "
                                "frames finish (default: 10)")
    p_sharpen.add_argument("--hang-timeout", dest="hang_timeout",
                           type=float, default=None, metavar="SECONDS",
                           help="watchdog whole-frame deadline; frames "
                                "stuck longer are cancelled and "
                                "dead-lettered (default: off)")
    p_sharpen.add_argument("--health-out", dest="health_out", default=None,
                           metavar="PATH",
                           help="write the job's liveness/readiness/"
                                "progress JSON here (default: "
                                "<job-dir>/health.json)")
    p_sharpen.add_argument("--log-level", dest="log_level",
                           choices=sorted(LEVELS, key=LEVELS.get),
                           default="warning",
                           help="structured-log level on stderr "
                                "(default: warning)")
    p_sharpen.add_argument("--log-format", dest="log_format",
                           choices=("logfmt", "json"), default="logfmt",
                           help="structured-log record format")
    p_sharpen.add_argument("--trace-out", dest="trace_out", default=None,
                           help="write a Chrome/Perfetto trace (host spans "
                                "+ simulated device events) to this file")
    p_sharpen.add_argument("--metrics-out", dest="metrics_out", default=None,
                           help="write the run's metrics registry in "
                                "Prometheus text format to this file")
    p_sharpen.set_defaults(func=cmd_sharpen)

    p_demo = sub.add_parser("demo", help="generate a synthetic test image")
    p_demo.add_argument("output")
    p_demo.add_argument("--size", type=int, default=512)
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UsageError as exc:
        # Unusable input (unreadable/corrupt file, malformed fault spec):
        # one structured line, no traceback, argparse-style exit code 2.
        print(f"error: exit=2 kind={type(exc).__name__} msg={str(exc)!r}",
              file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
