"""Shared utilities: synthetic workloads, validation, report formatting."""

from .images import (
    checkerboard,
    gaussian_blobs,
    gradient,
    natural_like,
    noise,
    step_edges,
    text_like,
    video_sequence,
)
from .tables import format_table, format_fraction_table
from .validation import require

__all__ = [
    "checkerboard",
    "gaussian_blobs",
    "gradient",
    "natural_like",
    "noise",
    "step_edges",
    "text_like",
    "video_sequence",
    "format_table",
    "format_fraction_table",
    "require",
]
