"""Netpbm image I/O (PGM/PPM), dependency-free.

The library operates on brightness planes; PGM (P5/P2) is the natural
interchange format and every image viewer opens it.  PPM (P6) support exists
so the colour pipeline (:mod:`repro.algo.color`) can round-trip RGB images.

Only 8-bit-per-sample images (``maxval <= 255``) are supported — the
algorithm's native pixel depth.
"""

from __future__ import annotations

import os
import pathlib
import re

import numpy as np

from ..errors import ValidationError


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    A crashed or interrupted writer never leaves a truncated file at
    ``path``: the content lands in a sibling temp file first and is moved
    into place with :func:`os.replace`, which is atomic on POSIX and
    Windows.  Accepts ``str`` or :class:`pathlib.Path`; returns the final
    path.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:  # repro: ignore[PL-BROAD-EXCEPT] tmp cleanup, re-raised
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_bytes(path: str | pathlib.Path,
                       data: bytes) -> pathlib.Path:
    """Binary sibling of :func:`atomic_write_text`: temp file + rename."""
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:  # repro: ignore[PL-BROAD-EXCEPT] tmp cleanup, re-raised
        tmp.unlink(missing_ok=True)
        raise
    return path

_TOKEN = re.compile(rb"(?:\s|^)(?:#[^\n]*\n\s*)*([0-9]+|P[1-6])")


def _read_tokens(data: bytes, count: int, start: int = 0):
    """Read ``count`` whitespace/comment-separated header tokens."""
    tokens = []
    pos = start
    while len(tokens) < count:
        match = _TOKEN.match(data, pos)
        if not match:
            raise ValidationError("truncated or malformed Netpbm header")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens, pos


def read_pgm(path) -> np.ndarray:
    """Read a P5 (binary) or P2 (ASCII) PGM file as a float64 plane."""
    data = pathlib.Path(path).read_bytes()
    (magic,), pos = _read_tokens(data, 1)
    if magic not in (b"P5", b"P2"):
        raise ValidationError(
            f"not a PGM file (magic {magic!r}); expected P5 or P2"
        )
    (w, h, maxval), pos = _read_tokens(data, 3, pos)
    w, h, maxval = int(w), int(h), int(maxval)
    if not 0 < maxval <= 255:
        raise ValidationError(f"unsupported maxval {maxval} (need <= 255)")
    if magic == b"P5":
        raster = data[pos + 1 : pos + 1 + w * h]  # one whitespace after hdr
        if len(raster) < w * h:
            raise ValidationError("truncated PGM raster")
        plane = np.frombuffer(raster, dtype=np.uint8, count=w * h)
    else:
        values = data[pos:].split()
        if len(values) < w * h:
            raise ValidationError("truncated ASCII PGM raster")
        plane = np.array([int(v) for v in values[: w * h]], dtype=np.uint8)
    out = plane.reshape(h, w).astype(np.float64)
    if maxval != 255:
        out *= 255.0 / maxval
    return out


def write_pgm(path, plane: np.ndarray) -> None:
    """Write a float/uint8 plane as binary PGM (P5)."""
    arr = np.asarray(plane)
    if arr.ndim != 2:
        raise ValidationError(f"PGM needs a 2-D plane, got ndim={arr.ndim}")
    u8 = np.clip(np.rint(arr), 0, 255).astype(np.uint8)
    h, w = u8.shape
    header = f"P5\n{w} {h}\n255\n".encode("ascii")
    atomic_write_bytes(path, header + u8.tobytes())


def read_ppm(path) -> np.ndarray:
    """Read a P6 (binary) PPM file as an ``(H, W, 3)`` float64 array."""
    data = pathlib.Path(path).read_bytes()
    (magic,), pos = _read_tokens(data, 1)
    if magic != b"P6":
        raise ValidationError(f"not a binary PPM file (magic {magic!r})")
    (w, h, maxval), pos = _read_tokens(data, 3, pos)
    w, h, maxval = int(w), int(h), int(maxval)
    if not 0 < maxval <= 255:
        raise ValidationError(f"unsupported maxval {maxval} (need <= 255)")
    raster = data[pos + 1 : pos + 1 + 3 * w * h]
    if len(raster) < 3 * w * h:
        raise ValidationError("truncated PPM raster")
    rgb = np.frombuffer(raster, dtype=np.uint8, count=3 * w * h)
    out = rgb.reshape(h, w, 3).astype(np.float64)
    if maxval != 255:
        out *= 255.0 / maxval
    return out


def write_ppm(path, rgb: np.ndarray) -> None:
    """Write an ``(H, W, 3)`` array as binary PPM (P6)."""
    arr = np.asarray(rgb)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValidationError(
            f"PPM needs an (H, W, 3) array, got shape {arr.shape}"
        )
    u8 = np.clip(np.rint(arr), 0, 255).astype(np.uint8)
    h, w, _ = u8.shape
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    atomic_write_bytes(path, header + u8.tobytes())
