"""Synthetic workload generators.

The paper evaluates on square brightness planes whose sides are multiples of
256 (TV / camera / VCR frames).  These generators produce deterministic
synthetic planes with the statistics that matter to a sharpening pipeline:
smooth gradients (no edges), hard step edges (maximum Sobel response),
band-limited "natural" content with a 1/f spectrum, text-like high-frequency
detail, and temporally-correlated video sequences.

All generators take an explicit ``seed`` where randomness is involved and
return ``float64`` planes in [0, 255] ready for :class:`repro.types.Image`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError


def _grid(height: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    if height <= 0 or width <= 0:
        raise ValidationError(f"invalid image shape {height}x{width}")
    ys = np.arange(height, dtype=np.float64)[:, None]
    xs = np.arange(width, dtype=np.float64)[None, :]
    return ys, xs


def gradient(height: int, width: int, *, horizontal: bool = True) -> np.ndarray:
    """A linear ramp from 0 to 255 — smooth content with no edges.

    Useful for testing: Sobel of a linear ramp is constant in the body, and
    overshoot control must pass the preliminary image through unmodified.
    """
    ys, xs = _grid(height, width)
    axis = xs if horizontal else ys
    n = (width if horizontal else height) - 1
    return np.broadcast_to(axis / max(n, 1) * 255.0, (height, width)).copy()


def checkerboard(height: int, width: int, *, cell: int = 8,
                 low: float = 32.0, high: float = 224.0) -> np.ndarray:
    """A checkerboard — dense strong edges, worst case for overshoot control."""
    if cell <= 0:
        raise ValidationError(f"cell must be > 0, got {cell}")
    ys, xs = _grid(height, width)
    mask = ((ys // cell) + (xs // cell)) % 2
    return np.where(mask > 0, high, low)


def step_edges(height: int, width: int, *, n_steps: int = 8) -> np.ndarray:
    """Vertical bands of increasing brightness — isolated hard step edges."""
    if n_steps <= 0:
        raise ValidationError(f"n_steps must be > 0, got {n_steps}")
    _, xs = _grid(height, width)
    band = np.floor(xs / width * n_steps)
    levels = band / max(n_steps - 1, 1) * 255.0
    return np.broadcast_to(levels, (height, width)).copy()


def noise(height: int, width: int, *, seed: int = 0,
          low: float = 0.0, high: float = 255.0) -> np.ndarray:
    """Uniform white noise — stresses the noise-amplification control."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(height, width))


def gaussian_blobs(height: int, width: int, *, n_blobs: int = 12,
                   seed: int = 0) -> np.ndarray:
    """A field of Gaussian blobs — smooth structures with soft edges."""
    if n_blobs <= 0:
        raise ValidationError(f"n_blobs must be > 0, got {n_blobs}")
    rng = np.random.default_rng(seed)
    ys, xs = _grid(height, width)
    plane = np.zeros((height, width), dtype=np.float64)
    for _ in range(n_blobs):
        cy = rng.uniform(0, height)
        cx = rng.uniform(0, width)
        sigma = rng.uniform(min(height, width) / 32, min(height, width) / 8)
        amp = rng.uniform(40.0, 255.0)
        plane += amp * np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2)
                                / (2.0 * sigma**2)))
    peak = plane.max()
    if peak > 0:
        plane *= 255.0 / peak
    return plane


def natural_like(height: int, width: int, *, seed: int = 0,
                 beta: float = 1.0) -> np.ndarray:
    """Band-limited content with a 1/f**beta power spectrum.

    Natural photographs have approximately 1/f amplitude spectra; this is the
    closest synthetic stand-in for the TV/camera frames the paper motivates
    without shipping image assets.
    """
    rng = np.random.default_rng(seed)
    fy = np.fft.fftfreq(height)[:, None]
    fx = np.fft.fftfreq(width)[None, :]
    radius = np.sqrt(fy**2 + fx**2)
    radius[0, 0] = 1.0  # avoid division by zero at DC
    amplitude = radius ** (-beta)
    amplitude[0, 0] = 0.0  # zero-mean field; DC added back below
    phase = rng.uniform(0.0, 2.0 * np.pi, size=(height, width))
    spectrum = amplitude * np.exp(1j * phase)
    field = np.fft.ifft2(spectrum).real
    field -= field.min()
    peak = field.max()
    if peak > 0:
        field /= peak
    return field * 255.0


def text_like(height: int, width: int, *, seed: int = 0,
              line_height: int = 12, fill: float = 0.45) -> np.ndarray:
    """High-frequency stroke pattern resembling rendered text lines.

    Sharpening text is the classic showcase workload; this produces rows of
    short dark strokes on a light background.
    """
    if line_height <= 2:
        raise ValidationError(f"line_height must be > 2, got {line_height}")
    if not 0.0 < fill < 1.0:
        raise ValidationError(f"fill must lie in (0, 1), got {fill}")
    rng = np.random.default_rng(seed)
    plane = np.full((height, width), 235.0)
    y = line_height // 2
    while y + line_height <= height:
        x = 2
        while x < width - 4:
            stroke = rng.integers(2, 9)
            if rng.random() < fill:
                plane[y:y + line_height - 3, x:x + stroke] = 25.0
            x += stroke + rng.integers(1, 5)
        y += line_height
    return plane


def video_sequence(height: int, width: int, n_frames: int, *, seed: int = 0,
                   pan_per_frame: int = 2) -> list[np.ndarray]:
    """A temporally-correlated sequence: a natural-like scene panned per frame.

    Models the paper's real-time TV use case, where consecutive frames are
    near-duplicates and throughput (frames/s) is the figure of merit.
    """
    if n_frames <= 0:
        raise ValidationError(f"n_frames must be > 0, got {n_frames}")
    margin = pan_per_frame * n_frames
    scene = natural_like(height + margin, width + margin, seed=seed)
    frames = []
    for i in range(n_frames):
        off = i * pan_per_frame
        frames.append(scene[off:off + height, off:off + width].copy())
    return frames
