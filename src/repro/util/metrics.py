"""Objective image-quality metrics for sharpening output.

The paper evaluates performance only; a usable sharpening library also
needs to quantify *what the filter did to the image*.  This module provides
the standard metrics (dependency-free):

* :func:`psnr` / :func:`mse` — fidelity against a reference;
* :func:`ssim` — global structural similarity (Wang et al., single-window
  simplification over local 8x8 statistics);
* :func:`edge_energy` / :func:`edge_gain` — total Sobel response, the
  quantity sharpening is supposed to increase;
* :func:`overshoot_fraction` — pixels pushed beyond the local min/max of
  the original, i.e. halo/ringing pressure (what Fig. 8's overshoot
  control suppresses);
* :func:`sharpness_report` — one dict with everything, used by the
  examples and tests.
"""

from __future__ import annotations

import numpy as np

from ..algo.stages import _neighborhood_minmax, sobel
from ..errors import ValidationError

#: Dynamic range of the 8-bit pixel domain.
DATA_RANGE = 255.0


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(
            f"image shape mismatch: {a.shape} vs {b.shape}"
        )
    if a.ndim != 2:
        raise ValidationError(f"expected 2-D planes, got ndim={a.ndim}")
    return a, b


def mse(reference: np.ndarray, image: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(reference, image)
    return float(np.mean((a - b) ** 2))


def psnr(reference: np.ndarray, image: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    err = mse(reference, image)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(DATA_RANGE**2 / err))


def _block_stats(plane: np.ndarray, block: int):
    h, w = plane.shape
    hb, wb = h // block, w // block
    blocks = plane[: hb * block, : wb * block].reshape(
        hb, block, wb, block
    )
    mean = blocks.mean(axis=(1, 3))
    var = blocks.var(axis=(1, 3))
    return blocks, mean, var


def ssim(reference: np.ndarray, image: np.ndarray, *,
         block: int = 8) -> float:
    """Mean structural similarity over non-overlapping ``block`` windows.

    A windowed simplification of Wang et al.'s SSIM (uniform windows
    instead of a Gaussian); returns a value in [-1, 1], 1 for identical
    images.
    """
    a, b = _pair(reference, image)
    if min(a.shape) < block:
        raise ValidationError(
            f"images smaller than the {block}x{block} SSIM window"
        )
    blocks_a, mu_a, var_a = _block_stats(a, block)
    blocks_b, mu_b, var_b = _block_stats(b, block)
    cov = (blocks_a * blocks_b).mean(axis=(1, 3)) - mu_a * mu_b

    c1 = (0.01 * DATA_RANGE) ** 2
    c2 = (0.03 * DATA_RANGE) ** 2
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))


def edge_energy(plane: np.ndarray) -> float:
    """Total Sobel response (the paper's pEdge matrix, summed)."""
    return float(sobel(np.asarray(plane, dtype=np.float64)).sum())


def edge_gain(original: np.ndarray, sharpened: np.ndarray) -> float:
    """Edge-energy ratio sharpened/original (> 1 means sharper)."""
    base = edge_energy(original)
    if base == 0.0:
        return 1.0 if edge_energy(sharpened) == 0.0 else float("inf")
    return edge_energy(sharpened) / base


def overshoot_fraction(original: np.ndarray,
                       sharpened: np.ndarray) -> float:
    """Fraction of body pixels outside the 3x3 local range of the original.

    This is exactly the condition Fig. 8's overshoot control tests; with
    ``overshoot=0`` the sharpened output has (numerically) none.
    """
    a, b = _pair(original, sharpened)
    mn, mx = _neighborhood_minmax(a)
    body = b[1:-1, 1:-1]
    eps = 1e-9
    outside = (body > mx + eps) | (body < mn - eps)
    return float(outside.mean())


def sharpness_report(original: np.ndarray,
                     sharpened: np.ndarray) -> dict[str, float]:
    """All metrics in one dict (keys: psnr, ssim, edge_gain,
    overshoot_fraction, rms_change)."""
    a, b = _pair(original, sharpened)
    return {
        "psnr": psnr(a, b),
        "ssim": ssim(a, b),
        "edge_gain": edge_gain(a, b),
        "overshoot_fraction": overshoot_fraction(a, b),
        "rms_change": float(np.sqrt(np.mean((a - b) ** 2))),
    }
