"""ASCII report formatting for the experiment harness.

The experiment modules print the same rows/series the paper's figures plot;
these helpers render them as aligned monospace tables so that benchmark logs
are directly comparable with the figures.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import ValidationError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str | None = None, floatfmt: str = ".4g") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    norm_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(format(value, floatfmt))
            else:
                cells.append(str(value))
        norm_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in norm_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in norm_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_fraction_table(stage_names: Sequence[str],
                          by_size: dict[str, dict[str, float]],
                          *, title: str | None = None) -> str:
    """Render a Fig-13-style table: one row per image size, one column per
    stage, cells are percentage shares of the total time."""
    headers = ["size"] + [str(s) for s in stage_names]
    rows = []
    for size, fracs in by_size.items():
        row: list[object] = [size]
        for stage in stage_names:
            row.append(f"{100.0 * fracs.get(stage, 0.0):6.2f}%")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_speedup(a: float, b: float) -> str:
    """Format ``a / b`` as an ``N.NNx`` speedup string (b==0 -> 'inf')."""
    if b <= 0:
        return "inf"
    return f"{a / b:.2f}x"
