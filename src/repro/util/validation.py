"""Tiny validation helpers used across the package."""

from __future__ import annotations

from ..errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`~repro.errors.ValidationError` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")


def require_power_of_two(value: int, name: str) -> None:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValidationError(f"{name} must be a power of two, got {value}")
