"""Named sharpening-parameter presets.

One shared ladder from mild to aggressive, used by the CLI
(``python -m repro sharpen --preset ...``), the quality study and the
examples.  ``ringing-free`` demonstrates the overshoot control of Fig. 8:
the same gain as ``aggressive`` but with the halo clamp fully engaged.
"""

from __future__ import annotations

from .types import SharpnessParams

PRESETS: dict[str, SharpnessParams] = {
    "mild": SharpnessParams(gain=0.6, gamma=0.7, strength_max=2.0,
                            overshoot=0.1),
    "default": SharpnessParams(),
    "crisp": SharpnessParams(gain=1.8, gamma=0.5, strength_max=4.0,
                             overshoot=0.2),
    "aggressive": SharpnessParams(gain=3.0, gamma=0.4, strength_max=8.0,
                                  overshoot=0.6),
    "ringing-free": SharpnessParams(gain=3.0, gamma=0.4, strength_max=8.0,
                                    overshoot=0.0),
}

#: Presets in mild-to-aggressive order (for reports).
PRESET_ORDER = ("mild", "default", "crisp", "aggressive", "ringing-free")
