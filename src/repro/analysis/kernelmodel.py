"""Abstract interpretation of emulator-kernel bodies.

:class:`KernelWalker` walks one kernel function (a Python function whose
first parameter is ``ctx``, per the :mod:`repro.simgpu.emulator` idiom) and
collects the facts the rules consume:

* every subscript access to a buffer argument, with per-axis symbolic
  intervals (:class:`~repro.analysis.symbolic.Interval`) *and* an affine
  form over work-item-id atoms when the index is affine (for the
  coalescing rule);
* every ``yield BARRIER`` / ``yield WF_SYNC`` with the taints of the
  branches/loops enclosing it;
* every ``return`` likewise (for barrier-divergence: an early return under
  an id-dependent branch, followed by a barrier, strands the group).

The interpretation is flow-sensitive and guard-driven: ``if gx >= w or
gy >= h: return`` refines ``gx`` to ``[0, w-1]`` on the fall-through path,
``if lid < s:`` refines ``lid`` to ``[0, s_hi - 1]`` inside the branch,
``for j in range(2, w - 2)`` binds ``j`` to ``[2, w-3]``, and loops widen
the variables their bodies reassign (keeping the entry bound on the side a
shrinking/growing update cannot cross).  Module-level helpers that receive
buffer arguments (``_overshoot_pixel``) and closures defined inside the
kernel (the tiled Sobel's ``at``) are walked at each call site with the
caller's bindings, so accesses inside them are checked against the caller's
guards.

Taint classes: ``item`` (derived from a global/local work-item id — differs
between the items of one group), ``group`` (group id — uniform within a
group), ``data`` (loaded from a buffer — potentially non-uniform).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .symbolic import Assumptions, Interval, LinExpr

TAINT_ITEM = "item"
TAINT_GROUP = "group"
TAINT_DATA = "data"

#: ctx method -> (atom family, taint).  Bounds: id in [0, <family>:d - 1].
_CTX_IDS = {
    "get_global_id": ("global_size", TAINT_ITEM),
    "get_local_id": ("local_size", TAINT_ITEM),
    "get_group_id": ("num_groups", TAINT_GROUP),
}
_CTX_SIZES = {
    "get_local_size": "local_size",
    "get_global_size": "global_size",
    "get_num_groups": "num_groups",
}

#: Id atoms contributing to the coalescing rule's stride computation.
ID_ATOM_PREFIXES = ("gid:", "lid:")


@dataclass
class Value:
    """Abstract value of one expression/variable."""

    interval: Interval = field(default_factory=Interval.unknown)
    taint: frozenset = frozenset()
    lin: Optional[LinExpr] = None
    buffer: Optional[str] = None          # buffer argument it aliases
    func: Optional[tuple] = None          # (FunctionDef, closure env)
    is_ctx: bool = False

    @classmethod
    def unknown(cls, taint: frozenset = frozenset()) -> "Value":
        return cls(Interval.unknown(), taint)

    @classmethod
    def const(cls, value: int) -> "Value":
        return cls(Interval.const(value), frozenset(),
                   LinExpr.const(value))


@dataclass
class Access:
    """One subscript access to a buffer argument."""

    buffer: str
    axes: list[Interval]
    lins: list[Optional[LinExpr]]
    is_write: bool
    node: ast.AST
    taints: frozenset          # union of index taints
    branch_taints: frozenset   # taints of enclosing branch conditions
    pins: tuple                # equality pins of enclosing branches
    scope: str
    checked: bool = True       # False for slice/ellipsis indexing


@dataclass
class SyncPoint:
    kind: str                  # "BARRIER" | "WF_SYNC"
    node: ast.AST
    branch_taints: frozenset
    scope: str


@dataclass
class ReturnPoint:
    node: ast.AST
    branch_taints: frozenset
    scope: str


class KernelWalker:
    """Walks one kernel function collecting accesses and sync points."""

    MAX_CALL_DEPTH = 3

    def __init__(self, *, assumptions: Assumptions,
                 bindings: dict[str, LinExpr],
                 module_functions: dict[str, ast.FunctionDef],
                 scope: str) -> None:
        self.assumptions = assumptions
        self.bindings = bindings
        self.module_functions = module_functions
        self.scope = scope
        self.accesses: list[Access] = []
        self.syncs: list[SyncPoint] = []
        self.returns: list[ReturnPoint] = []
        self._branch_stack: list[tuple[frozenset, tuple]] = []
        self._call_depth = 0

    # -- atom helpers --------------------------------------------------------

    def _dim_expr(self, family: str, dim: int) -> LinExpr:
        """The LinExpr for an NDRange dimension, honouring bindings."""
        name = f"{family}:{dim}"
        bound = self.bindings.get(name)
        if bound is not None:
            return bound
        return LinExpr.atom(name)

    def _branch_taints(self) -> frozenset:
        out: set = set()
        for taints, _ in self._branch_stack:
            out |= taints
        return frozenset(out)

    def _pins(self) -> tuple:
        out = []
        for _, pins in self._branch_stack:
            out.extend(pins)
        return tuple(out)

    # -- expression evaluation ----------------------------------------------

    def eval(self, node: ast.AST, env: dict[str, Value]) -> Value:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, int):
                return Value.unknown()
            return Value.const(node.value)
        if isinstance(node, ast.Name):
            val = env.get(node.id)
            if val is not None:
                return val
            return Value.unknown()
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return Value(
                    operand.interval.negate(), operand.taint,
                    None if operand.lin is None else operand.lin.scale(-1),
                )
            return Value.unknown(operand.taint)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.IfExp):
            test = self.eval(node.test, env)
            a = self.eval(node.body, env)
            b = self.eval(node.orelse, env)
            return Value(
                a.interval.hull(b.interval, self.assumptions),
                a.taint | b.taint | test.taint,
            )
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, env)
            if base.is_ctx and node.attr == "local_linear_id":
                return Value(Interval(lo=LinExpr.const(0), hi=None),
                             frozenset({TAINT_ITEM}))
            return Value.unknown(base.taint)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript_load(node, env)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            parts: list[ast.expr]
            if isinstance(node, ast.Compare):
                parts = [node.left, *node.comparators]
            else:
                parts = list(node.values)
            taint: frozenset = frozenset()
            for part in parts:
                taint |= self.eval(part, env).taint
            return Value.unknown(taint)
        return Value.unknown()

    def _eval_binop(self, node: ast.BinOp, env: dict[str, Value]) -> Value:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        taint = left.taint | right.taint
        lin: Optional[LinExpr] = None
        if isinstance(node.op, ast.Add):
            if left.lin is not None and right.lin is not None:
                lin = left.lin + right.lin
            return Value(left.interval.add(right.interval), taint, lin)
        if isinstance(node.op, ast.Sub):
            if left.lin is not None and right.lin is not None:
                lin = left.lin - right.lin
            return Value(left.interval.sub(right.interval), taint, lin)
        if isinstance(node.op, ast.Mult):
            if left.interval.is_exact_const:
                c = left.interval.lo.const_value
                lin = None if right.lin is None else right.lin.scale(c)
                return Value(right.interval.scale(c), taint, lin)
            if right.interval.is_exact_const:
                c = right.interval.lo.const_value
                lin = None if left.lin is None else left.lin.scale(c)
                return Value(left.interval.scale(c), taint, lin)
            return Value(
                left.interval.multiply(right.interval, self.assumptions),
                taint,
            )
        if isinstance(node.op, (ast.FloorDiv, ast.RShift)):
            shift = isinstance(node.op, ast.RShift)
            if right.interval.is_exact_const:
                k = right.interval.lo.const_value
                if k.denominator == 1 and k > 0:
                    divisor = 2 ** int(k) if shift else int(k)
                    return Value(
                        left.interval.floordiv(divisor, self.assumptions),
                        taint,
                    )
            # symbolic divisor >= 1, dividend >= 0: floor stays in
            # [0, dividend_hi]
            if (not shift and left.interval.lo is not None
                    and right.interval.lo is not None
                    and self.assumptions.prove_nonneg(left.interval.lo)
                    and self.assumptions.prove_nonneg(
                        right.interval.lo - LinExpr.const(1))):
                return Value(Interval(lo=LinExpr.const(0),
                                      hi=left.interval.hi), taint)
            return Value.unknown(taint)
        if isinstance(node.op, ast.Mod):
            if right.interval.is_exact_const:
                k = right.interval.lo.const_value
                if k.denominator == 1 and k > 0 and (
                        left.interval.lo is not None
                        and self.assumptions.prove_nonneg(
                            left.interval.lo)):
                    return Value(Interval(lo=LinExpr.const(0),
                                          hi=LinExpr.const(int(k) - 1)),
                                 taint)
            if (left.interval.lo is not None
                    and right.interval.hi is not None
                    and self.assumptions.prove_nonneg(left.interval.lo)):
                return Value(Interval(
                    lo=LinExpr.const(0),
                    hi=right.interval.hi - LinExpr.const(1)), taint)
            return Value.unknown(taint)
        if isinstance(node.op, ast.LShift):
            if right.interval.is_exact_const:
                k = right.interval.lo.const_value
                if k.denominator == 1 and k >= 0:
                    return Value(left.interval.scale(2 ** int(k)), taint)
            return Value.unknown(taint)
        return Value.unknown(taint)

    def _eval_call(self, node: ast.Call, env: dict[str, Value]) -> Value:
        func = node.func
        # ctx.get_*(dim)
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value, env)
            if base.is_ctx:
                return self._eval_ctx_call(func.attr, node, env)
            return Value.unknown()
        if isinstance(func, ast.Name):
            # range()/min()/max() and friends have no integer value here.
            target = env.get(func.id)
            if target is not None and target.func is not None:
                self._walk_call_into(target.func, node, env)
                return Value.unknown()
            helper = self.module_functions.get(func.id)
            if helper is not None:
                self._walk_helper_call(helper, node, env)
                return Value.unknown()
        return Value.unknown()

    def _eval_ctx_call(self, attr: str, node: ast.Call,
                       env: dict[str, Value]) -> Value:
        dim = None
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, int):
            dim = node.args[0].value
        if attr in _CTX_IDS and dim is not None:
            family, taint = _CTX_IDS[attr]
            hi = self._dim_expr(family, dim) - LinExpr.const(1)
            prefix = {"get_global_id": "gid", "get_local_id": "lid",
                      "get_group_id": "grp"}[attr]
            return Value(
                Interval(lo=LinExpr.const(0), hi=hi),
                frozenset({taint}),
                LinExpr.atom(f"{prefix}:{dim}"),
            )
        if attr in _CTX_SIZES and dim is not None:
            expr = self._dim_expr(_CTX_SIZES[attr], dim)
            return Value(Interval.exact(expr), frozenset(), expr)
        if attr == "wavefront":
            return Value(Interval(lo=LinExpr.const(0), hi=None),
                         frozenset({TAINT_ITEM}))
        return Value.unknown()

    def _eval_subscript_load(self, node: ast.Subscript,
                             env: dict[str, Value]) -> Value:
        self._record_subscript(node, env, is_write=False)
        base = self.eval(node.value, env)
        if base.buffer is not None:
            return Value.unknown(frozenset({TAINT_DATA}))
        return Value.unknown(base.taint)

    # -- access recording ----------------------------------------------------

    def _record_subscript(self, node: ast.Subscript, env: dict[str, Value],
                          *, is_write: bool) -> None:
        if not isinstance(node.value, ast.Name):
            return
        base = env.get(node.value.id)
        if base is None or base.buffer is None:
            return
        elts: list[ast.AST]
        sl = node.slice
        if isinstance(sl, ast.Tuple):
            elts = list(sl.elts)
        else:
            elts = [sl]
        checked = True
        axes: list[Interval] = []
        lins: list[Optional[LinExpr]] = []
        taints: set = set()
        for e in elts:
            if isinstance(e, (ast.Slice, ast.Constant)) and (
                    isinstance(e, ast.Slice)
                    or e.value is Ellipsis):
                checked = False
                axes.append(Interval.unknown())
                lins.append(None)
                continue
            val = self.eval(e, env)
            axes.append(val.interval)
            lins.append(val.lin)
            taints |= val.taint
        self.accesses.append(Access(
            buffer=base.buffer, axes=axes, lins=lins, is_write=is_write,
            node=node, taints=frozenset(taints),
            branch_taints=self._branch_taints(), pins=self._pins(),
            scope=self.scope, checked=checked,
        ))

    # -- helper / closure calls ---------------------------------------------

    def _bind_call_args(self, fn: ast.FunctionDef, node: ast.Call,
                        env: dict[str, Value]) -> Optional[dict[str, Value]]:
        params = [a.arg for a in fn.args.args]
        bound: dict[str, Value] = {}
        args = [self.eval(a, env) for a in node.args]
        if len(args) > len(params):
            return None
        for name, val in zip(params, args):
            bound[name] = val
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in params:
                bound[kw.arg] = self.eval(kw.value, env)
        defaults = fn.args.defaults
        for param, default in zip(params[len(params) - len(defaults):],
                                  defaults):
            if param not in bound:
                bound[param] = self.eval(default, env)
        for param in params:
            bound.setdefault(param, Value.unknown())
        return bound

    def _walk_helper_call(self, fn: ast.FunctionDef, node: ast.Call,
                          env: dict[str, Value]) -> None:
        """Walk a module-level helper at this call site when it receives a
        buffer or the ctx (its accesses inherit the caller's guards)."""
        if self._call_depth >= self.MAX_CALL_DEPTH:
            return
        bound = self._bind_call_args(fn, node, env)
        if bound is None:
            return
        if not any(v.buffer is not None or v.is_ctx
                   for v in bound.values()):
            return
        self._call_depth += 1
        try:
            self.walk_body(fn.body, bound)
        finally:
            self._call_depth -= 1

    def _walk_call_into(self, closure: tuple, node: ast.Call,
                        env: dict[str, Value]) -> None:
        """Walk a kernel-nested closure (e.g. the tiled Sobel's ``at``)."""
        fn, closure_env = closure
        if self._call_depth >= self.MAX_CALL_DEPTH:
            return
        bound = self._bind_call_args(fn, node, env)
        if bound is None:
            return
        merged = dict(closure_env)
        merged.update(bound)
        self._call_depth += 1
        try:
            self.walk_body(fn.body, merged)
        finally:
            self._call_depth -= 1

    # -- guard refinement ----------------------------------------------------

    def _set_bound(self, env: dict[str, Value], name: str, *,
                   lo: Optional[LinExpr] = None,
                   hi: Optional[LinExpr] = None) -> None:
        val = env.get(name)
        if val is None:
            val = Value.unknown()
        new_lo, new_hi = val.interval.lo, val.interval.hi
        if lo is not None:
            if new_lo is None or not self.assumptions.prove_nonneg(
                    new_lo - lo):
                new_lo = lo
        if hi is not None:
            if new_hi is None or not self.assumptions.prove_nonneg(
                    hi - new_hi):
                new_hi = hi
        env[name] = Value(Interval(lo=new_lo, hi=new_hi), val.taint,
                         val.lin, val.buffer, val.func, val.is_ctx)

    def _linearize(self, node: ast.AST, env: dict[str, Value]
                   ) -> Optional[tuple[str, int, Interval]]:
        """Decompose ``node`` as ``coeff*var + residual``; best effort."""
        if isinstance(node, ast.Name) and node.id in env:
            return node.id, 1, Interval.const(0)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self._linearize(node.left, env)
                sign = -1 if isinstance(node.op, ast.Sub) else 1
                if left is not None:
                    var, coeff, residual = left
                    right_val = self.eval(node.right, env)
                    return var, coeff, residual.add(
                        right_val.interval.scale(sign))
                right = self._linearize(node.right, env)
                if right is not None and sign == 1:
                    var, coeff, residual = right
                    left_val = self.eval(node.left, env)
                    return var, coeff, residual.add(left_val.interval)
                return None
            if isinstance(node.op, ast.Mult):
                for factor, other in ((node.left, node.right),
                                      (node.right, node.left)):
                    if isinstance(factor, ast.Constant) and isinstance(
                            factor.value, int) and factor.value > 0:
                        inner = self._linearize(other, env)
                        if inner is not None:
                            var, coeff, residual = inner
                            return (var, coeff * factor.value,
                                    residual.scale(factor.value))
        return None

    def _refine_cmp(self, left: ast.AST, op: ast.cmpop, right: ast.AST,
                    env: dict[str, Value]) -> None:
        """Apply one comparison known to hold to ``env``."""
        lin = self._linearize(left, env)
        if lin is None:
            lin = self._linearize(right, env)
            if lin is None:
                return
            op = _MIRROR.get(type(op))
            if op is None:
                return
            left, right = right, left
            op = op()
        var, coeff, residual = lin
        bound = self.eval(right, env)
        if isinstance(op, (ast.Lt, ast.LtE)):
            if bound.interval.hi is None:
                return
            slack = 1 if isinstance(op, ast.Lt) else 0
            # coeff*var <= bound - residual - slack
            top = bound.interval.hi - LinExpr.const(slack)
            if residual.lo is None:
                return
            top = top - residual.lo
            hi = top.floordiv(coeff, self.assumptions) if coeff != 1 \
                else top
            if hi is not None:
                self._set_bound(env, var, hi=hi)
        elif isinstance(op, (ast.Gt, ast.GtE)):
            if bound.interval.lo is None or residual.hi is None:
                return
            slack = 1 if isinstance(op, ast.Gt) else 0
            base = bound.interval.lo + LinExpr.const(slack) - residual.hi
            if coeff != 1:
                # ceil division: floor((base + coeff - 1)/coeff)
                base = base + LinExpr.const(coeff - 1)
                lo = base.floordiv(coeff, self.assumptions)
            else:
                lo = base
            if lo is not None:
                self._set_bound(env, var, lo=lo)
        elif isinstance(op, ast.Eq):
            if coeff == 1 and residual.is_exact_const \
                    and residual.lo.const_value == 0:
                self._set_bound(env, var, lo=bound.interval.lo,
                                hi=bound.interval.hi)
        elif isinstance(op, ast.NotEq):
            self._refine_noteq(var, coeff, residual, bound, env)

    def _refine_noteq(self, var: str, coeff: int, residual: Interval,
                      bound: Value, env: dict[str, Value]) -> None:
        """``var != value``: shave an endpoint that provably equals it."""
        if coeff != 1 or not residual.is_exact_const \
                or residual.lo.const_value != 0:
            return
        val = env.get(var)
        if val is None or bound.interval.lo is None \
                or bound.interval.hi is None:
            return
        iv = val.interval
        if iv.lo is not None and self.assumptions.prove_zero(
                iv.lo - bound.interval.lo) and self.assumptions.prove_zero(
                bound.interval.hi - bound.interval.lo):
            self._set_bound(env, var, lo=iv.lo + LinExpr.const(1))
            val = env[var]
            iv = val.interval
        if iv.hi is not None and self.assumptions.prove_zero(
                iv.hi - bound.interval.hi) and self.assumptions.prove_zero(
                bound.interval.hi - bound.interval.lo):
            self._set_bound(env, var, hi=iv.hi - LinExpr.const(1))

    def refine(self, test: ast.AST, positive: bool,
               env: dict[str, Value]) -> None:
        """Refine ``env`` under the knowledge that ``test`` is
        ``positive``."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.refine(test.operand, not positive, env)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and positive:
                for v in test.values:
                    self.refine(v, True, env)
            elif isinstance(test.op, ast.Or) and not positive:
                for v in test.values:
                    self.refine(v, False, env)
            return
        if isinstance(test, ast.Compare):
            comparators = [test.left] + list(test.comparators)
            for (lhs, op, rhs) in zip(comparators, test.ops,
                                      comparators[1:]):
                applied = op if positive else _NEGATE[type(op)]()
                self._refine_cmp(lhs, applied, rhs, env)

    def test_pins(self, test: ast.AST, env: dict[str, Value]) -> tuple:
        """Equality pins (``if lid == 0``) carried by a positive branch.

        Each pin is ``(var, value, kind)`` where kind records which id the
        pinned variable derives from: ``global`` pins select one item in
        the whole launch, ``local`` pins one item per workgroup.
        """
        if not isinstance(test, ast.Compare) or len(test.ops) != 1 \
                or not isinstance(test.ops[0], ast.Eq):
            return ()
        sides = (test.left, test.comparators[0])
        for var_side, const_side in (sides, sides[::-1]):
            if isinstance(var_side, ast.Name):
                val = env.get(var_side.id)
                const = self.eval(const_side, env)
                if val is not None and TAINT_ITEM in val.taint \
                        and const.interval.is_exact_const:
                    atoms = val.lin.atoms() if val.lin is not None \
                        else set()
                    if any(a.startswith("gid:") for a in atoms):
                        kind = "global"
                    elif any(a.startswith("lid:") for a in atoms):
                        kind = "local"
                    else:
                        kind = "item"
                    return ((var_side.id,
                             str(const.interval.lo.const_value), kind),)
        return ()

    # -- statement walking ---------------------------------------------------

    def walk_body(self, stmts: list[ast.stmt],
                  env: dict[str, Value]) -> bool:
        """Walk statements; returns True when control cannot fall
        through (every path returned/raised)."""
        for stmt in stmts:
            if self._walk_stmt(stmt, env):
                return True
        return False

    def _walk_stmt(self, stmt: ast.stmt, env: dict[str, Value]) -> bool:
        if isinstance(stmt, ast.Assign):
            self._do_assign(stmt.targets, stmt.value, env)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._do_assign([stmt.target], stmt.value, env)
            return False
        if isinstance(stmt, ast.AugAssign):
            self._do_augassign(stmt, env)
            return False
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                self._do_yield(value, env)
            else:
                self.eval(value, env)
            return False
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value, env)
            if self._call_depth == 0:
                # Returns inside called helpers exit the helper, not the
                # kernel — only top-level returns matter for divergence.
                self.returns.append(ReturnPoint(
                    stmt, self._branch_taints(), self.scope))
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, env)
        if isinstance(stmt, ast.For):
            self._walk_for(stmt, env)
            return False
        if isinstance(stmt, ast.While):
            self._walk_while(stmt, env)
            return False
        if isinstance(stmt, ast.FunctionDef):
            env[stmt.name] = Value(func=(stmt, dict(env)))
            return False
        if isinstance(stmt, (ast.Pass, ast.Assert, ast.Import,
                             ast.ImportFrom, ast.Global, ast.Nonlocal)):
            return False
        # Unmodelled statements (with, try, ...) are walked for accesses
        # only, conservatively keeping the current env.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, env)
        return False

    def _do_assign(self, targets: list[ast.expr], value: ast.expr,
                   env: dict[str, Value]) -> None:
        if (len(targets) == 1 and isinstance(targets[0], ast.Tuple)
                and isinstance(value, ast.Tuple)
                and len(targets[0].elts) == len(value.elts)):
            for t, v in zip(targets[0].elts, value.elts):
                self._do_assign([t], v, env)
            return
        val = self.eval(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = val
            elif isinstance(target, ast.Subscript):
                self._record_subscript(target, env, is_write=True)
            elif isinstance(target, ast.Tuple):
                for t in target.elts:
                    if isinstance(t, ast.Name):
                        env[t.id] = Value.unknown(val.taint)

    def _do_augassign(self, stmt: ast.AugAssign,
                      env: dict[str, Value]) -> None:
        synth = ast.BinOp(left=_load_copy(stmt.target), op=stmt.op,
                          right=stmt.value)
        ast.copy_location(synth, stmt)
        ast.fix_missing_locations(synth)
        val = self.eval(synth, env)
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = val
        elif isinstance(stmt.target, ast.Subscript):
            self._record_subscript(stmt.target, env, is_write=False)
            self._record_subscript(stmt.target, env, is_write=True)

    def _do_yield(self, node: ast.Yield, env: dict[str, Value]) -> None:
        if self._call_depth == 0 and isinstance(node.value, ast.Name) \
                and node.value.id in ("BARRIER", "WF_SYNC"):
            self.syncs.append(SyncPoint(
                node.value.id, node, self._branch_taints(), self.scope))

    def _walk_if(self, stmt: ast.If, env: dict[str, Value]) -> bool:
        cond_taint = self.eval(stmt.test, env).taint
        body_env = _copy_env(env)
        else_env = _copy_env(env)
        self.refine(stmt.test, True, body_env)
        self.refine(stmt.test, False, else_env)
        pins = self.test_pins(stmt.test, env)
        self._branch_stack.append((cond_taint, pins))
        body_exits = self.walk_body(stmt.body, body_env)
        self._branch_stack.pop()
        self._branch_stack.append((cond_taint, ()))
        else_exits = self.walk_body(stmt.orelse, else_env) \
            if stmt.orelse else False
        self._branch_stack.pop()
        if body_exits and else_exits and stmt.orelse:
            return True
        if body_exits:
            env.clear()
            env.update(else_env)
            return False
        if else_exits and stmt.orelse:
            env.clear()
            env.update(body_env)
            return False
        merged = _merge_envs(body_env, else_env, self.assumptions)
        env.clear()
        env.update(merged)
        return False

    def _loop_reassigned(self, body: list[ast.stmt]
                         ) -> dict[str, str]:
        """name -> 'shrink' | 'grow' | 'other' for body-assigned vars."""
        out: dict[str, str] = {}
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Name):
                    name = node.target.id
                    if isinstance(node.op, (ast.Sub, ast.RShift,
                                            ast.FloorDiv, ast.Div)):
                        kind = "shrink"
                    elif isinstance(node.op, ast.Add):
                        kind = "grow"
                    else:
                        kind = "other"
                    out[name] = kind if out.get(name, kind) == kind \
                        else "other"
                elif isinstance(node, ast.Assign):
                    # Only name (re)bindings widen; subscript stores do not
                    # rebind the names appearing in their index.
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            out[t.id] = "other"
                        elif isinstance(t, ast.Tuple):
                            for e in t.elts:
                                if isinstance(e, ast.Name):
                                    out[e.id] = "other"
        return out

    def _widen_for_loop(self, env: dict[str, Value],
                        kinds: dict[str, str]) -> None:
        for name, kind in kinds.items():
            val = env.get(name)
            if val is None:
                continue
            iv = val.interval
            if kind == "shrink":
                iv = Interval(lo=None, hi=iv.hi)
            elif kind == "grow":
                iv = Interval(lo=iv.lo, hi=None)
            else:
                iv = Interval.unknown()
            env[name] = Value(iv, val.taint, None, val.buffer, val.func,
                             val.is_ctx)

    def _walk_for(self, stmt: ast.For, env: dict[str, Value]) -> None:
        target_iv = self._iterable_interval(stmt.iter, env)
        taint = self.eval(stmt.iter, env).taint
        kinds = self._loop_reassigned(stmt.body)
        self._widen_for_loop(env, kinds)
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = Value(
                target_iv, taint,
                LinExpr.atom(f"it:{stmt.target.id}:{stmt.lineno}"))
        elif isinstance(stmt.target, ast.Tuple):
            for t in stmt.target.elts:
                if isinstance(t, ast.Name):
                    env[t.id] = Value.unknown(taint)
        self._branch_stack.append((taint, ()))
        self.walk_body(stmt.body, env)
        self._branch_stack.pop()

    def _iterable_interval(self, node: ast.AST,
                           env: dict[str, Value]) -> Interval:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "range" and 1 <= len(node.args) <= 3:
            args = [self.eval(a, env) for a in node.args]
            if len(node.args) == 1:
                lo = Interval.const(0)
                hi_src = args[0]
            else:
                lo = args[0].interval
                hi_src = args[1]
            hi = None if hi_src.interval.hi is None \
                else hi_src.interval.hi - LinExpr.const(1)
            return Interval(lo=lo.lo, hi=hi)
        if isinstance(node, (ast.Tuple, ast.List)) and node.elts:
            out: Optional[Interval] = None
            for e in node.elts:
                iv = self.eval(e, env).interval
                out = iv if out is None else out.hull(iv, self.assumptions)
            return out or Interval.unknown()
        return Interval.unknown()

    def _walk_while(self, stmt: ast.While, env: dict[str, Value]) -> None:
        taint = self.eval(stmt.test, env).taint
        kinds = self._loop_reassigned(stmt.body)
        entry_his = {
            name: env[name].interval.hi
            for name, kind in kinds.items()
            if kind == "shrink" and name in env
        }
        self._widen_for_loop(env, kinds)
        body_env = _copy_env(env)
        self.refine(stmt.test, True, body_env)
        self._branch_stack.append((taint, ()))
        self.walk_body(stmt.body, body_env)
        self._branch_stack.pop()
        # After the loop: shrink-only vars keep their entry upper bound and
        # gain the negated condition; everything else stays widened.
        for name, hi in entry_his.items():
            if hi is not None:
                self._set_bound(env, name, hi=hi)
        self.refine(stmt.test, False, env)


_MIRROR: dict[type, type] = {
    ast.Lt: ast.Gt, ast.LtE: ast.GtE, ast.Gt: ast.Lt, ast.GtE: ast.LtE,
    ast.Eq: ast.Eq, ast.NotEq: ast.NotEq,
}
_NEGATE: dict[type, type] = {
    ast.Lt: ast.GtE, ast.LtE: ast.Gt, ast.Gt: ast.LtE, ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq, ast.NotEq: ast.Eq,
    ast.In: ast.NotIn, ast.NotIn: ast.In,
    ast.Is: ast.IsNot, ast.IsNot: ast.Is,
}


def _load_copy(node: ast.expr) -> ast.expr:
    clone = ast.copy_location(
        ast.parse(ast.unparse(node), mode="eval").body, node)
    ast.fix_missing_locations(clone)
    return clone


def _copy_env(env: dict[str, Value]) -> dict[str, Value]:
    return dict(env)


def _merge_envs(a: dict[str, Value], b: dict[str, Value],
                assumptions: Assumptions) -> dict[str, Value]:
    out: dict[str, Value] = {}
    for name in set(a) | set(b):
        va, vb = a.get(name), b.get(name)
        if va is None or vb is None:
            val = va or vb
            out[name] = Value(Interval.unknown(), val.taint, None,
                             val.buffer, val.func, val.is_ctx)
            continue
        if va is vb:
            out[name] = va
            continue
        out[name] = Value(
            va.interval.hull(vb.interval, assumptions),
            va.taint | vb.taint,
            va.lin if (va.lin is not None and vb.lin is not None
                       and va.lin.key() == vb.lin.key()) else None,
            va.buffer if va.buffer == vb.buffer else None,
            va.func if va.func is vb.func else None,
            va.is_ctx and vb.is_ctx,
        )
    return out
