"""Checked-in baseline of grandfathered findings.

The baseline lets the CI gate be strict about *new* findings while known
debt is paid down incrementally.  Entries are keyed by
:attr:`repro.analysis.findings.Finding.fingerprint` — rule + file basename
+ scope + message, deliberately excluding the line number so edits above a
grandfathered finding do not churn the file.

Policy (enforced by the driver, documented in ``docs/static-analysis.md``):
error-severity findings are never baselined — they must be fixed or
explicitly suppressed in code where a human can see the justification.
The baseline holds warnings only.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ValidationError
from ..util.io import atomic_write_text
from .findings import Finding, Severity

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict[str, dict[str, str]]:
    """fingerprint -> descriptive entry.  Missing file = empty baseline."""
    if not path.exists():
        return {}
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(raw, dict) or "findings" not in raw:
        raise ValidationError(
            f"baseline {path} must be an object with a 'findings' key"
        )
    findings = raw["findings"]
    if not isinstance(findings, dict):
        raise ValidationError(f"baseline {path}: 'findings' must map "
                              f"fingerprint -> entry")
    return findings


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write the non-error findings as the new baseline; returns count.

    Error-severity findings are refused (fix or suppress them instead) —
    the CI contract is that the error baseline is empty, always.
    """
    errors = [f for f in findings if f.severity >= Severity.ERROR]
    if errors:
        raise ValidationError(
            f"refusing to baseline {len(errors)} error-severity "
            f"finding(s); fix them or add a targeted "
            f"'# repro: ignore[...]' suppression "
            f"(first: {errors[0].format()})"
        )
    entries = {
        f.fingerprint: {
            "rule": f.rule,
            "severity": f.severity.name.lower(),
            "path": f.path,
            "scope": f.scope,
            "message": f.message,
        }
        for f in findings
    }
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(entries.items())),
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return len(entries)


def partition(findings: list[Finding],
              baseline: dict[str, dict[str, str]],
              ) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined)."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        (old if f.fingerprint in baseline else new).append(f)
    return new, old
