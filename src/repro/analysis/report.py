"""Text and JSON reporters for analyzer/linter findings."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO

from .findings import Finding, Severity


@dataclass
class Report:
    """The outcome of one full analysis run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    kernels_analyzed: int = 0

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for f in self.findings:
            out[f.severity.name.lower()] += 1
        return out

    @property
    def gate_failed(self) -> bool:
        """True when any non-baselined error-severity finding exists."""
        return any(f.severity >= Severity.ERROR for f in self.findings)


def render_text(report: Report, stream: IO[str]) -> None:
    for f in sorted(report.findings,
                    key=lambda f: (f.path, f.line, f.rule)):
        stream.write(f.format() + "\n")
    counts = report.counts()
    stream.write(
        f"repro.analysis: {report.files_scanned} files, "
        f"{report.kernels_analyzed} kernels; "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    if report.baselined:
        stream.write(f"; {len(report.baselined)} baselined")
    stream.write("\n")
    if report.gate_failed:
        stream.write("repro.analysis: FAIL (non-baselined errors)\n")
    else:
        stream.write("repro.analysis: OK\n")


def render_json(report: Report, stream: IO[str]) -> None:
    payload = {
        "version": 1,
        "ok": not report.gate_failed,
        "files_scanned": report.files_scanned,
        "kernels_analyzed": report.kernels_analyzed,
        "counts": report.counts(),
        "findings": [f.to_json() for f in sorted(
            report.findings, key=lambda f: (f.path, f.line, f.rule))],
        "baselined": [f.to_json() for f in sorted(
            report.baselined, key=lambda f: (f.path, f.line, f.rule))],
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")
