"""Command-line driver: ``python -m repro.analysis``.

Runs the static kernel analyzer over ``src/repro/kernels/*.py`` and the
project invariant linter over the whole ``repro`` package, merges the
findings against the checked-in baseline, renders a text or JSON report,
and exits non-zero when any **new error-severity** finding exists.  CI
runs exactly this as a blocking job; developers run it locally the same
way:

.. code-block:: console

   $ python -m repro.analysis                 # human-readable
   $ python -m repro.analysis --format=json   # machine-readable
   $ python -m repro.analysis --write-baseline  # accept current warnings

The baseline policy is one-way: only warnings can be grandfathered, the
error baseline is empty by construction (``write_baseline`` refuses
otherwise).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from ..errors import UsageError, ValidationError
from .baseline import load_baseline, partition, write_baseline
from .findings import Severity
from .kernels import analyze_kernel_file
from .project import lint_paths
from .report import Report, render_json, render_text

#: Default baseline location relative to the repo root.
DEFAULT_BASELINE = "analysis-baseline.json"


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` to the directory holding ``src/repro``."""
    here = (start or Path.cwd()).resolve()
    for cand in (here, *here.parents):
        if (cand / "src" / "repro").is_dir():
            return cand
    # Fall back to the package's own location (installed layouts).
    pkg = Path(__file__).resolve().parents[3]
    if (pkg / "src" / "repro").is_dir():
        return pkg
    raise UsageError(
        f"cannot locate the repo root (no src/repro above {here}); "
        f"pass --root"
    )


def collect_targets(root: Path) -> tuple[list[Path], list[Path]]:
    """(kernel modules, all lintable package files) under ``root``."""
    pkg = root / "src" / "repro"
    kernels = sorted(
        p for p in (pkg / "kernels").glob("*.py") if p.name != "__init__.py"
    )
    lintable = sorted(
        p for p in pkg.rglob("*.py") if "__pycache__" not in p.parts
    )
    return kernels, lintable


def run_analysis(root: Path, *,
                 min_severity: Severity = Severity.INFO) -> Report:
    """Run both analyzers; findings are unfiltered by the baseline."""
    kernels, lintable = collect_targets(root)
    report = Report()
    for path in kernels:
        report.findings.extend(analyze_kernel_file(path))
        report.kernels_analyzed += 1
    report.findings.extend(
        lint_paths(lintable, package_root=root / "src" / "repro")
    )
    report.files_scanned = len(lintable)
    report.findings = [
        f for f in report.findings if f.severity >= min_severity
    ]
    _relativize(report, root)
    return report


def _relativize(report: Report, root: Path) -> None:
    """Rewrite finding paths relative to the repo root for stable output."""
    rewritten = []
    for f in report.findings:
        try:
            rel = Path(f.path).resolve().relative_to(root).as_posix()
        except ValueError:
            rel = f.path
        rewritten.append(type(f)(
            rule=f.rule, severity=f.severity, path=rel, line=f.line,
            scope=f.scope, message=f.message, extra=f.extra,
        ))
    report.findings = rewritten


def main(argv: Optional[Sequence[str]] = None,
         stdout: Optional[IO[str]] = None) -> int:
    out = stdout if stdout is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static kernel analyzer + project invariant linter.",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<root>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current warning-severity findings "
                             "into the baseline and exit")
    parser.add_argument("--min-severity", type=Severity.parse,
                        default=Severity.INFO, metavar="LEVEL",
                        help="hide findings below LEVEL "
                             "(info/warning/error)")
    args = parser.parse_args(argv)

    try:
        root = args.root.resolve() if args.root else find_repo_root()
    except UsageError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2
    baseline_path = args.baseline or root / DEFAULT_BASELINE

    try:
        report = run_analysis(root, min_severity=args.min_severity)
    except ValidationError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        try:
            count = write_baseline(baseline_path, report.findings)
        except ValidationError as exc:
            print(f"repro.analysis: {exc}", file=sys.stderr)
            return 2
        print(f"repro.analysis: wrote {count} finding(s) to "
              f"{baseline_path}", file=out)
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    report.findings, report.baselined = partition(report.findings,
                                                  baseline)

    if args.format == "json":
        render_json(report, out)
    else:
        render_text(report, out)
    return 1 if report.gate_failed else 0
