"""Finding records shared by the kernel analyzer and the project linter."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..errors import ValidationError


class Severity(enum.IntEnum):
    """Finding severity; only ERROR findings gate the build."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            # ValidationError is also a ValueError, so argparse `type=`
            # failures still render as usage errors.
            raise ValidationError(
                f"unknown severity {text!r}; use info/warning/error"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``fingerprint`` identifies the finding across runs for the baseline
    file: it hashes the rule, the file's basename, the enclosing scope and
    the message — but **not** the line number, so unrelated edits above a
    grandfathered finding do not un-baseline it.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    scope: str
    message: str
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        basename = self.path.replace("\\", "/").rsplit("/", 1)[-1]
        digest = hashlib.sha256(
            f"{self.rule}|{basename}|{self.scope}|{self.message}"
            .encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def format(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity.name.lower()} "
                f"[{self.rule}] {self.scope}: {self.message}")

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
