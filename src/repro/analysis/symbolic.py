"""Symbolic interval arithmetic for the static kernel analyzer.

The kernel analyzer reasons about index expressions like ``off + 4*gy + dj``
without running the kernel.  Values are modelled as :class:`LinExpr` —
linear combinations of *atoms* with :class:`~fractions.Fraction`
coefficients — and bounds questions ("can this index reach the buffer
extent?") reduce to proving ``LinExpr >= 0`` under the per-atom assumptions
collected in an :class:`Assumptions` table (``h`` is a positive multiple of
4, a local size never exceeds the device workgroup limit, ...).

An atom is a string naming one opaque quantity: a scalar kernel argument
(``"h"``), an NDRange dimension (``"local_size:0"``), a closure variable
the factory left symbolic (``"off"``), or a floor-division term
(``fd(h-5, 4)``).  Products of atoms (needed for tile extents like
``(local_size:0 + 2) * (local_size:1 + 2)``) appear as monomials — sorted
tuples of atom names.

The prover is deliberately one-sided: :meth:`Assumptions.prove_nonneg`
answers "provably yes" or "don't know", never "provably no".  Rules treat
"don't know" as a finding, so the analyzer errs toward reporting — the
fixture suite pins down that the real kernel set stays clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

#: Monomial: sorted tuple of atom names.  ``()`` is the constant term.
Monomial = tuple[str, ...]

_ONE = Fraction(1)


@dataclass(frozen=True)
class AtomInfo:
    """Assumptions about one atom's value.

    ``minimum``/``maximum`` bound the atom when known (``None`` means
    unbounded on that side); ``multiple_of`` records a divisibility fact
    (image sides are multiples of 4) that makes floor divisions exact.
    """

    minimum: Optional[int] = None
    maximum: Optional[int] = None
    multiple_of: int = 1


class Assumptions:
    """Per-atom value assumptions plus the ``>= 0`` prover."""

    def __init__(self, atoms: Mapping[str, AtomInfo] | None = None) -> None:
        self._atoms: dict[str, AtomInfo] = dict(atoms or {})
        #: parent atom -> (quotient atom, divisor); ``h = 4 * (h/4)``.
        self._derived: dict[str, tuple[str, int]] = {}

    def copy(self) -> "Assumptions":
        out = Assumptions(self._atoms)
        out._derived = dict(self._derived)
        return out

    def declare(self, name: str, info: AtomInfo) -> None:
        self._atoms[name] = info

    def declare_derived(self, parent: str, quotient: str, k: int,
                        info: AtomInfo) -> None:
        """Record an exact division fact: ``parent == k * quotient``."""
        self._atoms[quotient] = info
        self._derived[parent] = (quotient, k)

    def get(self, name: str) -> AtomInfo:
        return self._atoms.get(name, AtomInfo())

    def _canonical(self, expr: "LinExpr") -> "LinExpr":
        """Rewrite parents of exact divisions in terms of their quotient
        atom (``h`` -> ``4 * (h/4)``) so mixed expressions compare."""
        if not self._derived:
            return expr
        terms: dict[Monomial, Fraction] = {}
        for mono, coeff in expr.terms.items():
            atoms = []
            for atom in mono:
                derived = self._derived.get(atom)
                if derived is not None:
                    quotient, k = derived
                    atoms.append(quotient)
                    coeff = coeff * k
                else:
                    atoms.append(atom)
            key = tuple(sorted(atoms))
            terms[key] = terms.get(key, Fraction(0)) + coeff
        return LinExpr(terms)

    # -- the prover ----------------------------------------------------------

    def _monomial_range(self, mono: Monomial) -> tuple[
        Optional[Fraction], Optional[Fraction]
    ]:
        """(min, max) of a monomial product, ``None`` for unbounded."""
        lo: Optional[Fraction] = _ONE
        hi: Optional[Fraction] = _ONE
        for atom in mono:
            info = self.get(atom)
            a_lo = None if info.minimum is None else Fraction(info.minimum)
            a_hi = None if info.maximum is None else Fraction(info.maximum)
            # Only nonnegative factor ranges keep interval products simple;
            # every atom the analyzer creates is a size or an id (>= 0).
            if a_lo is None or a_lo < 0:
                return None, None
            lo = None if lo is None else lo * a_lo
            hi = None if (hi is None or a_hi is None) else hi * a_hi
        return lo, hi

    def prove_nonneg(self, expr: "LinExpr") -> bool:
        """Is ``expr >= 0`` provable under the assumptions?

        Each monomial contributes its worst-case end (minimum for positive
        coefficients, maximum for negative); the sum must stay >= 0.
        """
        total = Fraction(0)
        resolved = self._canonical(expr.resolve_fd(self))
        for mono, coeff in resolved.terms.items():
            if not mono:
                total += coeff
                continue
            lo, hi = self._monomial_range(mono)
            bound = lo if coeff > 0 else hi
            if bound is None:
                return False
            total += coeff * bound
        return total >= 0

    def prove_zero(self, expr: "LinExpr") -> bool:
        resolved = self._canonical(expr.resolve_fd(self))
        return all(c == 0 for c in resolved.terms.values())


class LinExpr:
    """Linear combination of monomials with Fraction coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None
                 ) -> None:
        self.terms: dict[Monomial, Fraction] = {
            m: c for m, c in (terms or {}).items() if c != 0
        }

    # -- constructors --------------------------------------------------------

    @classmethod
    def const(cls, value: int | Fraction) -> "LinExpr":
        return cls({(): Fraction(value)})

    @classmethod
    def atom(cls, name: str) -> "LinExpr":
        return cls({(name,): _ONE})

    # -- queries -------------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return all(not m for m in self.terms)

    @property
    def const_value(self) -> Fraction:
        return self.terms.get((), Fraction(0))

    def atoms(self) -> set[str]:
        return {a for mono in self.terms for a in mono}

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "LinExpr") -> "LinExpr":
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return LinExpr(terms)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(-1)

    def scale(self, factor: int | Fraction) -> "LinExpr":
        f = Fraction(factor)
        return LinExpr({m: c * f for m, c in self.terms.items()})

    def multiply(self, other: "LinExpr") -> Optional["LinExpr"]:
        """Product; ``None`` when it would exceed degree 2 per factor pair
        blow-up limits (kept tiny — tile extents are the only real use)."""
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = tuple(sorted(m1 + m2))
                if len(mono) > 3:
                    return None
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return LinExpr(terms)

    # -- floor division ------------------------------------------------------

    def floordiv(self, k: int, assumptions: "Assumptions"
                 ) -> Optional["LinExpr"]:
        """``self // k`` as a LinExpr, exact where divisibility allows.

        Splits ``self`` into a part whose every term is divisible by ``k``
        (coefficient divisible, or the atom itself is a known multiple)
        plus a constant remainder; when that split is total the floor is
        exact.  Otherwise the quotient is represented as an opaque
        ``fd(expr, k)`` atom, bounded via ``(expr - k + 1)/k <= fd <=
        expr/k`` at proof time (see :meth:`resolve_fd`).
        """
        if k <= 0:
            return None
        exact = LinExpr()
        residue = Fraction(0)
        for mono, coeff in self.terms.items():
            if not mono:
                residue += coeff
                continue
            if coeff.denominator == 1 and coeff.numerator % k == 0:
                exact = exact + LinExpr({mono: coeff / k})
                continue
            if (len(mono) == 1 and coeff.denominator == 1
                    and assumptions.get(mono[0]).multiple_of % k == 0):
                # atom = k * (atom/k): fold via a derived quotient atom
                q = f"{mono[0]}/{k}"
                info = assumptions.get(mono[0])
                assumptions.declare_derived(mono[0], q, k, AtomInfo(
                    minimum=None if info.minimum is None
                    else info.minimum // k,
                    maximum=None if info.maximum is None
                    else info.maximum // k,
                    multiple_of=max(info.multiple_of // k, 1),
                ))
                exact = exact + LinExpr({(q,): coeff})
                continue
            return self._opaque_fd(k, assumptions)
        if residue.denominator != 1:
            return self._opaque_fd(k, assumptions)
        return exact + LinExpr.const(int(residue) // k)

    def _opaque_fd(self, k: int, assumptions: "Assumptions") -> "LinExpr":
        name = f"fd({self.key()},{k})"
        assumptions.declare(name, AtomInfo(minimum=None, maximum=None))
        # Record the inner expression so resolve_fd can relax the atom.
        _FD_TABLE[name] = (LinExpr(self.terms), k)
        return LinExpr.atom(name)

    def resolve_fd(self, assumptions: "Assumptions") -> "LinExpr":
        """Replace opaque fd atoms with their rational relaxation, picking
        the end that *weakens* the expression (sound for prove_nonneg)."""
        out = LinExpr()
        for mono, coeff in self.terms.items():
            fd_atoms = [a for a in mono if a in _FD_TABLE]
            if not fd_atoms or len(mono) != 1:
                out = out + LinExpr({mono: coeff})
                continue
            inner, k = _FD_TABLE[mono[0]]
            inner = inner.resolve_fd(assumptions)
            if coeff > 0:
                # fd >= (inner - k + 1)/k
                out = out + (inner - LinExpr.const(k - 1)).scale(
                    coeff / k)
            else:
                # fd <= inner/k
                out = out + inner.scale(coeff / k)
        return out

    # -- misc ----------------------------------------------------------------

    def key(self) -> str:
        """Canonical text form (stable across runs, used in messages)."""
        if not self.terms:
            return "0"
        parts = []
        for mono in sorted(self.terms, key=lambda m: (len(m), m)):
            coeff = self.terms[mono]
            name = "*".join(mono) if mono else ""
            if not mono:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(name)
            else:
                parts.append(f"{coeff}*{name}")
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinExpr({self.key()})"


#: Opaque floor-division atoms -> (inner expression, divisor).  Process-wide
#: is fine: names embed the canonical inner form, so collisions agree.
_FD_TABLE: dict[str, tuple[LinExpr, int]] = {}


@dataclass
class Interval:
    """A value known to lie in ``[lo, hi]`` (either side may be unknown)."""

    lo: Optional[LinExpr] = None
    hi: Optional[LinExpr] = None

    @classmethod
    def exact(cls, expr: LinExpr) -> "Interval":
        return cls(lo=expr, hi=expr)

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls.exact(LinExpr.const(value))

    @classmethod
    def unknown(cls) -> "Interval":
        return cls(None, None)

    @property
    def is_exact_const(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo.is_const and self.hi.is_const
                and self.lo.const_value == self.hi.const_value)

    def add(self, other: "Interval") -> "Interval":
        return Interval(
            lo=None if self.lo is None or other.lo is None
            else self.lo + other.lo,
            hi=None if self.hi is None or other.hi is None
            else self.hi + other.hi,
        )

    def sub(self, other: "Interval") -> "Interval":
        return Interval(
            lo=None if self.lo is None or other.hi is None
            else self.lo - other.hi,
            hi=None if self.hi is None or other.lo is None
            else self.hi - other.lo,
        )

    def negate(self) -> "Interval":
        return Interval(
            lo=None if self.hi is None else self.hi.scale(-1),
            hi=None if self.lo is None else self.lo.scale(-1),
        )

    def scale(self, factor: int | Fraction) -> "Interval":
        if factor < 0:
            return self.negate().scale(-factor)
        return Interval(
            lo=None if self.lo is None else self.lo.scale(factor),
            hi=None if self.hi is None else self.hi.scale(factor),
        )

    def multiply(self, other: "Interval",
                 assumptions: Assumptions) -> "Interval":
        """Interval product, defined only when both are provably >= 0."""
        for side in (self.lo, other.lo):
            if side is None or not assumptions.prove_nonneg(side):
                return Interval.unknown()
        lo = self.lo.multiply(other.lo) if (
            self.lo is not None and other.lo is not None) else None
        hi = self.hi.multiply(other.hi) if (
            self.hi is not None and other.hi is not None) else None
        return Interval(lo=lo, hi=hi)

    def floordiv(self, k: int, assumptions: Assumptions) -> "Interval":
        return Interval(
            lo=None if self.lo is None
            else self.lo.floordiv(k, assumptions),
            hi=None if self.hi is None
            else self.hi.floordiv(k, assumptions),
        )

    def hull(self, other: "Interval",
             assumptions: Assumptions) -> "Interval":
        """Smallest provable interval containing both (drops to unknown
        per side when the order of the ends cannot be proved)."""
        lo: Optional[LinExpr] = None
        if self.lo is not None and other.lo is not None:
            if assumptions.prove_nonneg(other.lo - self.lo):
                lo = self.lo
            elif assumptions.prove_nonneg(self.lo - other.lo):
                lo = other.lo
        hi: Optional[LinExpr] = None
        if self.hi is not None and other.hi is not None:
            if assumptions.prove_nonneg(self.hi - other.hi):
                hi = self.hi
            elif assumptions.prove_nonneg(other.hi - self.hi):
                hi = other.hi
        return Interval(lo=lo, hi=hi)

    def describe(self) -> str:
        lo = "?" if self.lo is None else self.lo.key()
        hi = "?" if self.hi is None else self.hi.key()
        return f"[{lo}, {hi}]"
