"""Project invariant linter: conventions the type checker cannot see.

The rules here encode project-wide contracts that hold the repo together
but live below the level of types:

* ``PL-METRIC`` — every metric registered through the
  :mod:`repro.obs.metrics` registry is named ``repro_*`` so dashboards can
  select the whole family with one prefix match.
* ``PL-RAISE`` — errors raised by library code come from the
  :mod:`repro.errors` taxonomy, never bare builtins, so callers can catch
  ``ReproError`` and the resilience layer can classify transience.
* ``PL-EXCEPT`` / ``PL-BROAD-EXCEPT`` — no bare ``except:``; catching
  ``Exception`` wholesale is allowed only at documented crash-isolation
  boundaries (suppressed explicitly there).
* ``PL-ATOMIC`` — on-disk state is written with the temp-file +
  :func:`os.replace` rotate idiom (:func:`repro.util.io.atomic_write_text`
  and friends) so a crash mid-write never leaves a truncated file.
* ``PL-TIME`` — plan-replayed code paths (the simulator, the kernels, the
  plan cache) never consult wall-clock time or ambient randomness: a
  cached plan replayed tomorrow must behave exactly like the recording.

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register_rule`, and the driver picks it up.  Every rule respects the
same ``# repro: ignore[RULE-ID]`` suppression comments the kernel analyzer
uses (on the finding's line or the enclosing ``def`` line).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, Severity
from .kernels import parse_suppressions

#: Metric names must match this (enforced by PL-METRIC).
METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")

#: Builtin exception types library code must not raise (PL-RAISE).
BUILTIN_RAISES = {
    "ValueError", "TypeError", "KeyError", "IndexError", "RuntimeError",
    "OSError", "IOError", "Exception", "BaseException", "ArithmeticError",
}

#: Module paths (relative to the package root) that are replayed from
#: cached plans and therefore must be deterministic (PL-TIME).
REPLAYED_PREFIXES = ("simgpu/", "kernels/", "core/plan.py")

#: Calls that read the wall clock or ambient randomness.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("datetime", "now"), ("datetime", "utcnow"),
}
_RANDOM_MODULES = {"random"}


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    #: path relative to the ``repro`` package root (``util/io.py``).
    rel: str
    source: str
    tree: ast.Module

    def str_constants(self) -> dict[str, str]:
        """Module-level ``NAME = "literal"`` string constants."""
        out: dict[str, str] = {}
        for node in self.tree.body:
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out[t.id] = node.value.value
        return out

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The innermost function whose span contains ``node``."""
        best: ast.AST | None = None
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.lineno <= lineno <= (fn.end_lineno or fn.lineno):
                if best is None or fn.lineno > best.lineno:  # type: ignore[attr-defined]
                    best = fn
        return best


class Rule:
    """Base class for linter rules."""

    rule_id: str = ""
    severity: Severity = Severity.WARNING

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST,
                message: str, *, scope: str | None = None,
                severity: Severity | None = None) -> Finding:
        if scope is None:
            fn = ctx.enclosing_function(node)
            scope = getattr(fn, "name", "<module>") if fn else "<module>"
        return Finding(
            rule=self.rule_id,
            severity=self.severity if severity is None else severity,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            scope=scope,
            message=message,
        )


RULES: list[type[Rule]] = []


def register_rule(cls: type[Rule]) -> type[Rule]:
    RULES.append(cls)
    return cls


@register_rule
class MetricNameRule(Rule):
    """Metric families registered via ``.counter/.gauge/.histogram`` must
    be named ``repro_*``."""

    rule_id = "PL-METRIC"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        consts = ctx.str_constants()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("counter", "gauge", "histogram")
                    and node.args):
                continue
            arg = node.args[0]
            name: str | None = None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
            elif isinstance(arg, ast.Name):
                name = consts.get(arg.id)
            if name is None:
                continue  # dynamic name: nothing to prove
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    ctx, node,
                    f"metric {name!r} does not match the repro_* naming "
                    f"convention (pattern {METRIC_NAME_RE.pattern})",
                )


@register_rule
class RaiseTaxonomyRule(Rule):
    """Library raises must come from the ``repro.errors`` taxonomy."""

    rule_id = "PL-RAISE"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if (isinstance(target, ast.Name)
                    and target.id in BUILTIN_RAISES):
                yield self.finding(
                    ctx, node,
                    f"raises builtin {target.id}; use the repro.errors "
                    f"taxonomy (e.g. ValidationError, UsageError) so "
                    f"callers can catch ReproError",
                )


@register_rule
class BareExceptRule(Rule):
    """``except:`` swallows KeyboardInterrupt and SystemExit."""

    rule_id = "PL-EXCEPT"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:'; catch a ReproError subclass, or "
                    "'Exception' at a documented crash boundary",
                )


@register_rule
class BroadExceptRule(Rule):
    """Catching Exception wholesale needs an explicit justification."""

    rule_id = "PL-BROAD-EXCEPT"
    severity = Severity.WARNING

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if (isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException")):
                yield self.finding(
                    ctx, node,
                    f"catches {node.type.id}; narrow it to the expected "
                    f"ReproError subtree, or suppress at a documented "
                    f"crash-isolation boundary",
                )


@register_rule
class AtomicWriteRule(Rule):
    """Truncating writes must use the temp-file + os.replace rotate."""

    rule_id = "PL-ATOMIC"
    severity = Severity.ERROR

    @staticmethod
    def _is_write_mode(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        return isinstance(mode, str) and "w" in mode

    @staticmethod
    def _has_replace(scope: ast.AST | None) -> bool:
        if scope is None:
            return False
        for sub in ast.walk(scope):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "replace"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "os"):
                return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            is_open = (isinstance(node, ast.Call)
                       and isinstance(node.func, ast.Name)
                       and node.func.id == "open")
            is_write_text = (isinstance(node, ast.Call)
                             and isinstance(node.func, ast.Attribute)
                             and node.func.attr in ("write_text",
                                                    "write_bytes"))
            if is_open and not self._is_write_mode(node):
                continue
            if not (is_open or is_write_text):
                continue
            scope = ctx.enclosing_function(node)
            if self._has_replace(scope if scope is not None else ctx.tree):
                continue
            yield self.finding(
                ctx, node,
                "truncating write without an atomic rotate; write a "
                "sibling temp file and os.replace() it into place "
                "(repro.util.io.atomic_write_text/atomic_write_bytes)",
            )


@register_rule
class DeterministicReplayRule(Rule):
    """Plan-replayed paths must not consult clocks or randomness."""

    rule_id = "PL-TIME"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not any(ctx.rel.startswith(p) for p in REPLAYED_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if not isinstance(base, ast.Name):
                continue
            if (base.id, node.attr) in _CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{base.id}.{node.attr} in a plan-replayed path; "
                    f"replaying a cached plan must be deterministic — "
                    f"take timestamps from the caller",
                )
            elif base.id in _RANDOM_MODULES:
                yield self.finding(
                    ctx, node,
                    f"ambient randomness ({base.id}.{node.attr}) in a "
                    f"plan-replayed path; thread an explicit seeded "
                    f"Generator through instead",
                )


def lint_file(path: Path, *, package_root: Path) -> list[Finding]:
    """Run every registered rule over one file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(
            rule="PL-PARSE", severity=Severity.ERROR, path=str(path),
            line=exc.lineno or 1, scope="<module>",
            message=f"syntax error: {exc.msg}",
        )]
    try:
        rel = path.relative_to(package_root).as_posix()
    except ValueError:
        rel = path.name
    ctx = LintContext(path=path, rel=rel, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    spans = [
        (fn.lineno, fn.end_lineno or fn.lineno)
        for fn in ast.walk(tree)
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    def suppressed(f: Finding) -> bool:
        lines = {f.line}
        lines.update(lo for lo, hi in spans if lo <= f.line <= hi)
        for line in lines:
            if line in suppressions:
                rules = suppressions[line]
                if rules is None or f.rule in rules:
                    return True
        return False

    findings: list[Finding] = []
    for rule_cls in RULES:
        findings.extend(rule_cls().check(ctx))
    findings = [f for f in findings if not suppressed(f)]
    findings.sort(key=lambda f: (f.line, f.rule, f.message))
    return findings


def lint_paths(paths: Iterable[Path], *,
               package_root: Path) -> list[Finding]:
    out: list[Finding] = []
    for path in sorted(paths):
        out.extend(lint_file(path, package_root=package_root))
    return out
