"""Static analysis for the repro codebase.

Two complementary layers, one driver (``python -m repro.analysis``):

* :mod:`repro.analysis.kernels` — a static analyzer for the Python-embedded
  GPU kernels under :mod:`repro.kernels`.  It abstract-interprets kernel
  bodies over the NDRange contract of :mod:`repro.kernels.base` and flags
  out-of-bounds indexing, barrier divergence, write-write race candidates,
  uncoalesced access patterns, local-memory overflow against the simulated
  :class:`~repro.simgpu.device.DeviceSpec` limits, and unused buffer
  arguments — before any kernel runs.  The dynamic
  :mod:`repro.simgpu.racecheck` tracker catches what this misses at
  runtime; the two cross-cite each other's diagnostics.
* :mod:`repro.analysis.project` — an invariant linter for project-wide
  conventions: ``repro_*`` metric names, the :mod:`repro.errors` taxonomy,
  no bare ``except``, atomic-rotate on-disk writes, and deterministic
  plan-replayed paths.

Findings share one model (:mod:`repro.analysis.findings`), one suppression
syntax (``# repro: ignore[RULE-ID]``), and one warning baseline
(:mod:`repro.analysis.baseline`).  See ``docs/static-analysis.md``.
"""

from .baseline import load_baseline, write_baseline
from .driver import main, run_analysis
from .findings import Finding, Severity
from .kernels import analyze_kernel_file
from .project import RULES, Rule, lint_file, register_rule

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "RULES",
    "register_rule",
    "analyze_kernel_file",
    "lint_file",
    "load_baseline",
    "write_baseline",
    "run_analysis",
    "main",
]
