"""Buffer-shape contracts for the kernel analyzer.

A *contract* tells the analyzer what it cannot read off the kernel body:
the symbolic extent of each buffer argument, expressed over the kernel's
scalar arguments and NDRange quantities.  Extents are plain Python
expressions evaluated symbolically in the kernel's environment, so they can
reference scalar args (``h``, ``w``, ``n``), factory closure variables
(``off``, ``wg``), module constants, and the special names

* ``local_size[d]`` / ``global_size[d]`` / ``num_groups[d]`` — the NDRange
  contract of :mod:`repro.kernels.base` (``pick_local_size`` only produces
  shapes that divide the global size, which is what makes ``num_groups``
  well-defined);
* arithmetic over any of the above (``(local_size[0] + 2) *
  (local_size[1] + 2)``).

The shipped registry below covers the real kernel set, keyed by module
basename, with per-kernel-function overrides where one variant hardcodes a
different shape (the tiled Sobel reads the padded source only).  Analyzed
files can instead carry their own contract in a module-level
``ANALYSIS_CONTRACTS`` dict literal of the same shape — the fixture
kernels under ``tests/fixtures/analysis`` do this — which takes precedence
over the registry.

``bindings`` equate an NDRange atom with a closure symbol (the reduction
kernels launch with ``local_size == (wg,)`` per ``reduction_layout``), and
``assume`` adds per-symbol value facts on top of the defaults (image sides
are positive multiples of 4 — the pipeline validates this before any
launch; reduction lengths are positive).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Optional

#: Default value assumptions for well-known scalar argument names.
DEFAULT_ASSUME: dict[str, dict[str, int]] = {
    "h": {"min": 8, "mult": 4},
    "w": {"min": 8, "mult": 4},
    "n": {"min": 1},
}


@dataclass
class Contract:
    """Shape contract for the kernels of one module."""

    #: arg name -> tuple of per-axis extent expressions (strings).
    buffers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: NDRange atom -> expression it equals at launch ("local_size:0": "wg")
    bindings: dict[str, str] = field(default_factory=dict)
    #: scalar symbol -> {"min": int, "max": int, "mult": int}
    assume: dict[str, dict[str, int]] = field(default_factory=dict)
    #: kernel function name -> partial Contract-shaped dict override.
    overrides: dict[str, dict[str, Any]] = field(default_factory=dict)

    def for_kernel(self, func_name: str) -> "Contract":
        """The effective contract for one kernel function."""
        over = self.overrides.get(func_name)
        if not over:
            return self
        merged = Contract(
            buffers=dict(self.buffers), bindings=dict(self.bindings),
            assume=dict(self.assume),
        )
        merged.buffers.update({
            k: tuple(v) for k, v in over.get("buffers", {}).items()
        })
        merged.bindings.update(over.get("bindings", {}))
        merged.assume.update(over.get("assume", {}))
        return merged


def _pixel(src_padded: bool = True) -> dict[str, tuple[str, ...]]:
    src = ("h + 2*off", "w + 2*off") if src_padded else ("h", "w")
    return {"src": src, "dst": ("h", "w")}


#: Registry keyed by kernel-module basename (without ``.py``).
REGISTRY: dict[str, Contract] = {
    "downscale": Contract(buffers={
        "src": ("h + 2*off", "w + 2*off"),
        "dst": ("h // 4", "w // 4"),
    }),
    "perror": Contract(buffers={
        "src": ("h + 2*off", "w + 2*off"),
        "up": ("h", "w"),
        "dst": ("h", "w"),
    }),
    "sobel": Contract(
        buffers=_pixel(),
        overrides={
            # The tiled variant is only built with padded=True and reads
            # the (h+2) x (w+2) padded source directly.
            "_emulator_tiled": {"buffers": {
                "src": ("h + 2", "w + 2"),
                "tile": ("(local_size[0] + 2) * (local_size[1] + 2)",),
            }},
        },
    ),
    "sharpness": Contract(buffers={
        "up": ("h", "w"),
        "p_edge": ("h", "w"),
        "p_error": ("h", "w"),
        "src": ("h + 2*off", "w + 2*off"),
        "prelim": ("h", "w"),
        "dst": ("h", "w"),
    }),
    "upscale_center": Contract(buffers={
        "down": ("h // 4", "w // 4"),
        "up": ("h", "w"),
    }),
    "upscale_border": Contract(buffers={
        "down": ("h // 4", "w // 4"),
        "up": ("h", "w"),
    }),
    "reduction": Contract(
        buffers={
            "src": ("n",),
            "partial": ("num_groups[0]",),
            "local_sum": ("local_size[0]",),
        },
        # reduction_layout launches with local_size == (wg,).
        bindings={"local_size:0": "wg"},
    ),
}


def load_inline_contract(tree: ast.Module) -> Optional[Contract]:
    """Read a module-level ``ANALYSIS_CONTRACTS`` dict literal, if any."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                targets = [node.target.id]
            value = node.value
        else:
            continue
        if "ANALYSIS_CONTRACTS" not in targets:
            continue
        try:
            raw = ast.literal_eval(value)
        except ValueError:
            return None
        if not isinstance(raw, dict):
            return None
        return Contract(
            buffers={k: tuple(v)
                     for k, v in raw.get("buffers", {}).items()},
            bindings=dict(raw.get("bindings", {})),
            assume={k: dict(v) for k, v in raw.get("assume", {}).items()},
            overrides={k: dict(v)
                       for k, v in raw.get("overrides", {}).items()},
        )
    return None


def contract_for(module_name: str, tree: ast.Module) -> Contract:
    """The contract for one analyzed module (inline wins over registry)."""
    inline = load_inline_contract(tree)
    if inline is not None:
        return inline
    return REGISTRY.get(module_name, Contract())
