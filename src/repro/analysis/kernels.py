"""The static kernel analyzer: discovery, factory envs, and the KA-* rules.

Entry point is :func:`analyze_kernel_file`.  For one kernel module it

1. discovers every kernel function — any ``def`` whose first parameter is
   ``ctx``, at module level or nested inside a factory (the repo's
   ``_make_emulator_*(off)`` idiom);
2. reconstructs the factory environment a kernel closes over: factory
   parameters are resolved from defaults, from call sites (``
   _make_emulator_scalar(off)`` inside ``make_sobel_spec``), or from a
   same-name default elsewhere in the module (the reduction factories are
   dispatched through a dict, so ``wg``/``ept`` resolve via
   ``reduction_layout``'s defaults); closure variables whose value is only
   bounded (``off = 1 if padded else 0``) become symbolic *atoms* so the
   same symbol appears in both the kernel's guards and the buffer-extent
   contract;
3. walks the kernel with :class:`~repro.analysis.kernelmodel.KernelWalker`
   and applies the rules:

   ========== ======== ====================================================
   rule       severity checks
   ========== ======== ====================================================
   KA-OOB     error    buffer index provably within the contract extent
   KA-BARRIER error    no barrier under an id-/data-dependent branch; no
                       early return that strands a later barrier
   KA-RACE    error/   write-write candidates: unpinned uniform writes are
              warning  errors (the dynamic ``repro.simgpu.racecheck``
                       tracker raises ``RaceConditionError`` for the same
                       pattern at runtime — the two detectors cross-cite);
                       pinned writes are checked pairwise for overlap
   KA-COALESCE warning non-unit stride in the fastest-varying id
   KA-LOCALMEM error/  requested local memory vs the DeviceSpec limit,
              warning  maximized over legal workgroup shapes
   KA-UNUSED  warning  buffer arguments the kernel never reads or writes
   KA-CONTRACT info    subscripted arguments with no shape contract
   ========== ======== ====================================================

The analyzer is deliberately one-sided: it reports what it cannot *prove*
safe.  Index taints are a heuristic in one direction only — a write indexed
by a work-item id is assumed distinct per item (the dynamic race tracker
remains the ground truth there), but everything KA-OOB accepts is a real
proof under the contract assumptions.

Suppressions: a ``# repro: ignore[KA-OOB]`` comment on the finding line or
on the ``def`` line of any enclosing function silences the named rules
(comma-separated; bare ``# repro: ignore`` silences all).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional

from ..simgpu.device import DeviceSpec, W8000
from .contracts import DEFAULT_ASSUME, Contract, contract_for
from .findings import Finding, Severity
from .kernelmodel import (
    TAINT_DATA,
    TAINT_GROUP,
    TAINT_ITEM,
    Access,
    KernelWalker,
    Value,
)
from .symbolic import Assumptions, AtomInfo, Interval, LinExpr

#: Bytes per local-memory element the emulator allocates by default
#: (``run_kernel(..., local_itemsize=4)``).
LOCAL_ITEMSIZE = 4

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[([A-Z0-9,\-\s]+)\])?"
)

_DIM_FAMILIES = ("local_size", "global_size", "num_groups")


def parse_suppressions(source: str) -> dict[int, Optional[set[str]]]:
    """line -> suppressed rule set (``None`` = all rules)."""
    out: dict[int, Optional[set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in m.group(1).split(",")
                           if r.strip()}
    return out


# ---------------------------------------------------------------------------
# module constants (including relative imports of plain int constants)
# ---------------------------------------------------------------------------


def _const_eval(node: ast.AST, consts: dict[str, int]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_eval(node.operand, consts)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _const_eval(node.left, consts)
        right = _const_eval(node.right, consts)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right != 0:
            return left // right
    return None


def _collect_plain_constants(tree: ast.Module) -> dict[str, int]:
    consts: dict[str, int] = {}
    for node in tree.body:
        targets: list[str] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        if not targets or value is None:
            continue
        folded = _const_eval(value, consts)
        if folded is not None:
            for name in targets:
                consts[name] = folded
    return consts


def module_constants(tree: ast.Module, path: Path) -> dict[str, int]:
    """Module-level int constants, following relative imports one hop."""
    consts: dict[str, int] = {}
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.level == 0 \
                or node.module is None:
            continue
        base = path.parent
        for _ in range(node.level - 1):
            base = base.parent
        target = base.joinpath(*node.module.split("."))
        target = target.with_suffix(".py")
        if not target.is_file():
            continue
        try:
            sub = ast.parse(target.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        sub_consts = _collect_plain_constants(sub)
        for alias in node.names:
            if alias.name in sub_consts:
                consts[alias.asname or alias.name] = sub_consts[alias.name]
    consts.update(_collect_plain_constants(tree))
    return consts


# ---------------------------------------------------------------------------
# function discovery
# ---------------------------------------------------------------------------


def _collect_functions(tree: ast.Module) -> dict[ast.FunctionDef,
                                                 list[ast.FunctionDef]]:
    """Every FunctionDef -> chain of enclosing FunctionDefs (outer first)."""
    out: dict[ast.FunctionDef, list[ast.FunctionDef]] = {}

    def visit(node: ast.AST, chain: list[ast.FunctionDef]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef):
                out[child] = list(chain)
                visit(child, chain + [child])
            elif isinstance(child, (ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            else:
                visit(child, chain)

    visit(tree, [])
    return out


def _is_kernel(fn: ast.FunctionDef) -> bool:
    return bool(fn.args.args) and fn.args.args[0].arg == "ctx"


def _param_names(fn: ast.FunctionDef) -> list[str]:
    return [a.arg for a in fn.args.args] + \
        [a.arg for a in fn.args.kwonlyargs]


def _param_defaults(fn: ast.FunctionDef) -> dict[str, ast.expr]:
    out: dict[str, ast.expr] = {}
    pos = fn.args.args
    for param, default in zip(pos[len(pos) - len(fn.args.defaults):],
                              fn.args.defaults):
        out[param.arg] = default
    for param, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if default is not None:
            out[param.arg] = default
    return out


# ---------------------------------------------------------------------------
# factory environment reconstruction
# ---------------------------------------------------------------------------


class _EnvBuilder:
    """Rebuilds the closure environment of factory functions."""

    def __init__(self, walker: KernelWalker, tree: ast.Module,
                 consts: dict[str, int],
                 functions: dict[ast.FunctionDef, list[ast.FunctionDef]],
                 ) -> None:
        self.walker = walker
        self.tree = tree
        self.consts = consts
        self.functions = functions
        self._cache: dict[Optional[ast.FunctionDef], dict[str, Value]] = {}
        self._building: set[int] = set()

    def module_env(self) -> dict[str, Value]:
        return {name: Value.const(v) for name, v in self.consts.items()}

    def env_for(self, fn: Optional[ast.FunctionDef]) -> dict[str, Value]:
        if fn is None:
            return dict(self.module_env())
        if fn in self._cache:
            return dict(self._cache[fn])
        if id(fn) in self._building:        # recursion cycle
            return dict(self.module_env())
        self._building.add(id(fn))
        try:
            chain = self.functions.get(fn, [])
            env = self.env_for(chain[-1] if chain else None)
            for name in _param_names(fn):
                env[name] = self._resolve_param(fn, name)
            self._exec_factory_body(fn, env)
        finally:
            self._building.discard(id(fn))
        self._cache[fn] = dict(env)
        return env

    def _resolve_param(self, fn: ast.FunctionDef, name: str) -> Value:
        defaults = _param_defaults(fn)
        default = defaults.get(name)
        if default is not None:
            if isinstance(default, ast.Constant) and isinstance(
                    default.value, bool):
                # bool flags select variants; analyze both (unknown).
                return Value.unknown()
            chain = self.functions.get(fn, [])
            val = self.walker.eval(
                default, self.env_for(chain[-1] if chain else None))
            if val.interval.lo is not None or val.interval.hi is not None:
                return val
        site_vals = self._call_site_values(fn, name)
        if site_vals:
            out = site_vals[0]
            for other in site_vals[1:]:
                out = Value(
                    out.interval.hull(other.interval,
                                      self.walker.assumptions),
                    out.taint | other.taint,
                )
            return out
        fallback = self._same_name_default(name)
        if fallback is not None:
            return fallback
        return Value.unknown()

    def _call_site_values(self, fn: ast.FunctionDef,
                          name: str) -> list[Value]:
        params = _param_names(fn)
        try:
            index = params.index(name)
        except ValueError:
            return []
        values: list[Value] = []
        for node in ast.walk(self.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == fn.name):
                continue
            caller = self._enclosing_function(node)
            arg: Optional[ast.expr] = None
            if index < len(node.args):
                arg = node.args[index]
            else:
                for kw in node.keywords:
                    if kw.arg == name:
                        arg = kw.value
            if arg is None:
                continue
            env = self.env_for(caller)
            values.append(self.walker.eval(arg, env))
        return values

    def _enclosing_function(self, node: ast.AST
                            ) -> Optional[ast.FunctionDef]:
        best: Optional[ast.FunctionDef] = None
        for fn in self.functions:
            if fn.lineno <= node.lineno <= (fn.end_lineno or fn.lineno):
                if best is None or fn.lineno > best.lineno:
                    best = fn
        return best

    def _same_name_default(self, name: str) -> Optional[Value]:
        """A parameter of the same name elsewhere with a constant default
        (covers factories dispatched through dicts, where no call site
        mentions the factory by name)."""
        candidates: set[int] = set()
        for fn in self.functions:
            default = _param_defaults(fn).get(name)
            if default is None:
                continue
            folded = _const_eval(default, self.consts)
            if folded is not None:
                candidates.add(folded)
        if len(candidates) == 1:
            return Value.const(candidates.pop())
        return None

    def _exec_factory_body(self, fn: ast.FunctionDef,
                           env: dict[str, Value]) -> None:
        """Execute the straight-line Assigns of a factory body."""
        for stmt in fn.body:
            if isinstance(stmt, ast.Assign):
                self.walker._do_assign(stmt.targets, stmt.value, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self.walker._do_assign([stmt.target], stmt.value, env)


def _atomize_closure(env: dict[str, Value],
                     assumptions: Assumptions) -> None:
    """Turn bounded-but-inexact closure values into named atoms so guards
    and contract extents share the symbol (``off`` in the padded kernels).
    """
    for name, val in list(env.items()):
        if val.buffer or val.func or val.is_ctx or val.taint:
            continue
        iv = val.interval
        if iv.lo is None or iv.hi is None:
            continue
        if not (iv.lo.is_const and iv.hi.is_const):
            continue
        lo, hi = iv.lo.const_value, iv.hi.const_value
        if lo == hi or lo.denominator != 1 or hi.denominator != 1:
            continue
        if lo < 0:
            continue    # the prover only multiplies nonnegative atoms
        assumptions.declare(name, AtomInfo(minimum=int(lo),
                                           maximum=int(hi)))
        expr = LinExpr.atom(name)
        env[name] = Value(Interval.exact(expr), frozenset(), expr)


# ---------------------------------------------------------------------------
# per-kernel analysis
# ---------------------------------------------------------------------------


class _KernelAnalysis:
    """One kernel function analyzed against its contract."""

    def __init__(self, *, path: Path, fn: ast.FunctionDef,
                 chain: list[ast.FunctionDef], tree: ast.Module,
                 consts: dict[str, int],
                 functions: dict[ast.FunctionDef, list[ast.FunctionDef]],
                 module_contract: Contract, device: DeviceSpec) -> None:
        self.path = path
        self.fn = fn
        self.scope = ".".join(f.name for f in chain + [fn])
        self.contract = module_contract.for_kernel(fn.name)
        self.device = device
        self.assumptions = Assumptions()
        self._declare_base_atoms()

        module_level = {f.name: f for f, parents in functions.items()
                        if not parents}
        self.walker = KernelWalker(
            assumptions=self.assumptions, bindings={},
            module_functions=module_level, scope=self.scope,
        )
        builder = _EnvBuilder(self.walker, tree, consts, functions)
        closure_env = builder.env_for(chain[-1] if chain else None)
        _atomize_closure(closure_env, self.assumptions)
        self.env = closure_env
        self._bind_ndrange_names()
        self._resolve_bindings()
        self._bind_params()
        self.findings: list[Finding] = []

    # -- setup ---------------------------------------------------------------

    def _declare_base_atoms(self) -> None:
        for d in range(3):
            self.assumptions.declare(
                f"local_size:{d}",
                AtomInfo(minimum=1,
                         maximum=self.device.max_workgroup_size))
            self.assumptions.declare(f"num_groups:{d}",
                                     AtomInfo(minimum=1))
            self.assumptions.declare(f"global_size:{d}",
                                     AtomInfo(minimum=1))
        assume = dict(DEFAULT_ASSUME)
        assume.update(self.contract.assume)
        for name, spec in assume.items():
            self.assumptions.declare(name, AtomInfo(
                minimum=spec.get("min"), maximum=spec.get("max"),
                multiple_of=spec.get("mult", 1)))

    def _bind_ndrange_names(self) -> None:
        """Expose ``local_size:0``-style names for extent expressions."""
        for family in _DIM_FAMILIES:
            for d in range(3):
                expr = self.walker._dim_expr(family, d)
                self.env[f"{family}:{d}"] = Value(
                    Interval.exact(expr), frozenset(), expr)

    def _resolve_bindings(self) -> None:
        for atom, expr_text in self.contract.bindings.items():
            val = self._eval_extent_expr(expr_text)
            if val is None:
                continue
            iv = val.interval
            if iv.lo is not None and iv.hi is not None \
                    and self.assumptions.prove_zero(iv.hi - iv.lo):
                self.walker.bindings[atom] = iv.lo
                self.env[atom] = Value(Interval.exact(iv.lo),
                                       frozenset(), iv.lo)

    def _bind_params(self) -> None:
        params = [a.arg for a in self.fn.args.args]
        for i, name in enumerate(params):
            if i == 0:
                self.env[name] = Value(is_ctx=True)
            elif name in self.contract.buffers:
                self.env[name] = Value(buffer=name)
            elif name in DEFAULT_ASSUME or name in self.contract.assume:
                expr = LinExpr.atom(name)
                self.env[name] = Value(Interval.exact(expr), frozenset(),
                                       expr)
            elif name not in self.env:
                self.env[name] = Value.unknown()

    # -- contract extents ----------------------------------------------------

    def _eval_extent_expr(self, text: str) -> Optional[Value]:
        try:
            expr = ast.parse(text, mode="eval").body
        except SyntaxError:
            return None
        expr = _DimNameRewriter().visit(expr)
        ast.fix_missing_locations(expr)
        return self.walker.eval(expr, self.env)

    def extents_for(self, buffer: str) -> Optional[list[Interval]]:
        texts = self.contract.buffers.get(buffer)
        if texts is None:
            return None
        out: list[Interval] = []
        for text in texts:
            val = self._eval_extent_expr(text)
            out.append(Interval.unknown() if val is None else val.interval)
        return out

    # -- run -----------------------------------------------------------------

    def run(self) -> list[Finding]:
        self.walker.walk_body(self.fn.body, dict(self.env))
        self._rule_oob()
        self._rule_barrier()
        self._rule_race()
        self._rule_coalesce()
        self._rule_unused()
        self._rule_contract_coverage()
        return self.findings

    def _emit(self, rule: str, severity: Severity, line: int,
              message: str, **extra: object) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, path=str(self.path), line=line,
            scope=self.scope, message=message, extra=dict(extra)))

    def _is_local_buffer(self, buffer: str) -> bool:
        texts = self.contract.buffers.get(buffer, ())
        return any("local_size" in t for t in texts)

    # -- KA-OOB --------------------------------------------------------------

    def _rule_oob(self) -> None:
        extent_cache: dict[str, Optional[list[Interval]]] = {}
        for acc in self.walker.accesses:
            if not acc.checked:
                continue
            if acc.buffer not in extent_cache:
                extent_cache[acc.buffer] = self.extents_for(acc.buffer)
            extents = extent_cache[acc.buffer]
            if extents is None:
                continue
            if len(extents) != len(acc.axes):
                self._emit(
                    "KA-OOB", Severity.WARNING, acc.node.lineno,
                    f"'{acc.buffer}' indexed with {len(acc.axes)} "
                    f"subscripts but its contract declares "
                    f"{len(extents)} axes")
                continue
            for i, (axis, extent) in enumerate(zip(acc.axes, extents)):
                self._check_axis(acc, i, axis, extent)

    def _check_axis(self, acc: Access, i: int, axis: Interval,
                    extent: Interval) -> None:
        kind = "write" if acc.is_write else "read"
        if axis.lo is None or not self.assumptions.prove_nonneg(axis.lo):
            self._emit(
                "KA-OOB", Severity.ERROR, acc.node.lineno,
                f"axis {i} of '{acc.buffer}' {kind} may be negative: "
                f"index in {axis.describe()}")
            return
        if axis.hi is None or extent.lo is None \
                or not self.assumptions.prove_nonneg(
                    extent.lo - LinExpr.const(1) - axis.hi):
            self._emit(
                "KA-OOB", Severity.ERROR, acc.node.lineno,
                f"axis {i} of '{acc.buffer}' {kind} may exceed the "
                f"extent: index in {axis.describe()}, extent "
                f"{extent.describe()}")

    # -- KA-BARRIER ----------------------------------------------------------

    def _rule_barrier(self) -> None:
        divergent = frozenset({TAINT_ITEM, TAINT_DATA})
        for sync in self.walker.syncs:
            bad = sync.branch_taints & divergent
            if bad:
                self._emit(
                    "KA-BARRIER", Severity.ERROR, sync.node.lineno,
                    f"{sync.kind} under a branch that depends on "
                    f"{'/'.join(sorted(bad))} state; work-items of one "
                    f"group may diverge at this barrier (the emulator "
                    f"raises BarrierDivergenceError)")
        if not self.walker.syncs:
            return
        for ret in self.walker.returns:
            if not (ret.branch_taints & divergent):
                continue
            later = [s for s in self.walker.syncs
                     if s.node.lineno > ret.node.lineno]
            if later:
                self._emit(
                    "KA-BARRIER", Severity.ERROR, ret.node.lineno,
                    "work-item may return under an id-/data-dependent "
                    "branch before a later barrier, stranding the rest "
                    "of its group",
                    barrier_line=later[0].node.lineno)

    # -- KA-RACE -------------------------------------------------------------

    def _rule_race(self) -> None:
        pinned: list[Access] = []
        for acc in self.walker.accesses:
            if not acc.is_write or not acc.checked:
                continue
            if TAINT_ITEM in acc.taints:
                continue        # per-item index: assumed distinct
            if not acc.pins:
                self._emit(
                    "KA-RACE", Severity.ERROR, acc.node.lineno,
                    f"write to '{acc.buffer}' is not distinguished by a "
                    f"work-item id or an `== const` guard; concurrent "
                    f"items write the same element (the dynamic detector "
                    f"in repro.simgpu.racecheck raises "
                    f"RaceConditionError for exactly this)")
                continue
            pinned.append(acc)
            if TAINT_GROUP not in acc.taints and all(
                    kind != "global" for _, _, kind in acc.pins):
                self._emit(
                    "KA-RACE", Severity.WARNING, acc.node.lineno,
                    f"write to '{acc.buffer}' is pinned to one item per "
                    f"workgroup but its index does not vary by group; "
                    f"every group writes the same element")
        for i, a in enumerate(pinned):
            for b in pinned[i + 1:]:
                if a.buffer != b.buffer or a.pins == b.pins:
                    continue
                if not self._provably_disjoint(a, b):
                    self._emit(
                        "KA-RACE", Severity.WARNING, b.node.lineno,
                        f"pinned writes to '{a.buffer}' from different "
                        f"guards may overlap (cannot prove the index "
                        f"ranges disjoint)",
                        other_line=a.node.lineno)

    def _provably_disjoint(self, a: Access, b: Access) -> bool:
        if len(a.axes) != len(b.axes):
            return False
        for ax_a, ax_b in zip(a.axes, b.axes):
            if ax_a.hi is not None and ax_b.lo is not None \
                    and self.assumptions.prove_nonneg(
                        ax_b.lo - ax_a.hi - LinExpr.const(1)):
                return True
            if ax_b.hi is not None and ax_a.lo is not None \
                    and self.assumptions.prove_nonneg(
                        ax_a.lo - ax_b.hi - LinExpr.const(1)):
                return True
        return False

    # -- KA-COALESCE ---------------------------------------------------------

    def _rule_coalesce(self) -> None:
        seen: set[tuple[str, str]] = set()
        for acc in self.walker.accesses:
            if not acc.checked or acc.pins:
                continue
            if acc.buffer not in self.contract.buffers \
                    or self._is_local_buffer(acc.buffer):
                continue
            last = acc.lins[-1]
            if last is None:
                continue
            stride = self._fastest_id_coeff(last)
            if stride is None:
                # Fastest id appearing only in a slower axis is the
                # transposed-access smell.
                if any(lin is not None
                       and self._fastest_id_coeff(lin) is not None
                       for lin in acc.lins[:-1]):
                    key = (acc.buffer, "transposed")
                    if key not in seen:
                        seen.add(key)
                        self._emit(
                            "KA-COALESCE", Severity.WARNING,
                            acc.node.lineno,
                            f"fastest-varying work-item id indexes a "
                            f"non-contiguous axis of '{acc.buffer}' "
                            f"(transposed access)")
                continue
            if abs(stride) != 1:
                key = (acc.buffer, f"stride:{stride}")
                if key not in seen:
                    seen.add(key)
                    self._emit(
                        "KA-COALESCE", Severity.WARNING, acc.node.lineno,
                        f"stride {stride} in the fastest-varying "
                        f"work-item id when indexing '{acc.buffer}'; "
                        f"adjacent items touch non-adjacent elements")

    @staticmethod
    def _fastest_id_coeff(lin: LinExpr) -> Optional[int]:
        coeff = None
        for mono, c in lin.terms.items():
            if len(mono) == 1 and mono[0] in ("gid:0", "lid:0"):
                if c.denominator != 1:
                    return None
                coeff = (coeff or 0) + int(c)
        return coeff

    # -- KA-UNUSED / KA-CONTRACT ---------------------------------------------

    def _loaded_names(self) -> set[str]:
        return {n.id for n in ast.walk(self.fn)
                if isinstance(n, ast.Name)}

    def _rule_unused(self) -> None:
        used = self._loaded_names()
        for arg in self.fn.args.args[1:]:
            if arg.arg in self.contract.buffers and arg.arg not in used:
                self._emit(
                    "KA-UNUSED", Severity.WARNING, self.fn.lineno,
                    f"buffer argument '{arg.arg}' is never used")

    def _rule_contract_coverage(self) -> None:
        params = {a.arg for a in self.fn.args.args[1:]}
        flagged: set[str] = set()
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in params \
                    and node.value.id not in self.contract.buffers \
                    and node.value.id not in flagged:
                flagged.add(node.value.id)
                self._emit(
                    "KA-CONTRACT", Severity.INFO, node.lineno,
                    f"'{node.value.id}' is subscripted but has no shape "
                    f"contract; its accesses are unchecked")


class _DimNameRewriter(ast.NodeTransformer):
    """``local_size[0]`` in extent expressions -> Name('local_size:0')."""

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        if isinstance(node.value, ast.Name) \
                and node.value.id in _DIM_FAMILIES \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, int):
            return ast.Name(id=f"{node.value.id}:{node.slice.value}",
                            ctx=ast.Load())
        return self.generic_visit(node)


# ---------------------------------------------------------------------------
# KA-LOCALMEM: KernelSpec local_mem lambdas vs the device limit
# ---------------------------------------------------------------------------


class _NumEvalError(Exception):
    pass


def _num_eval(node: ast.AST, consts: dict[str, int], ls_name: str,
              shape: tuple[int, ...]) -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in consts:
            return consts[node.id]
        raise _NumEvalError(node.id)
    if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name) and node.value.id == ls_name:
        if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, int):
            if node.slice.value >= len(shape):
                raise _NumEvalError("rank")
            return shape[node.slice.value]
        raise _NumEvalError("subscript")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_num_eval(node.operand, consts, ls_name, shape)
    if isinstance(node, ast.BinOp):
        left = _num_eval(node.left, consts, ls_name, shape)
        right = _num_eval(node.right, consts, ls_name, shape)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right != 0:
            return left // right
    raise _NumEvalError(type(node).__name__)


def _legal_shapes(max_wg: int) -> list[tuple[int, ...]]:
    shapes: list[tuple[int, ...]] = []
    a = 1
    while a <= max_wg:
        shapes.append((a,))
        b = 1
        while a * b <= max_wg:
            shapes.append((a, b))
            b *= 2
        a *= 2
    return shapes


def _rule_localmem(path: Path, tree: ast.Module, consts: dict[str, int],
                   device: DeviceSpec) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name_ok = (isinstance(func, ast.Name)
                   and func.id == "KernelSpec") or (
            isinstance(func, ast.Attribute) and func.attr == "KernelSpec")
        if not name_ok:
            continue
        spec_name = "<spec>"
        lam: Optional[ast.Lambda] = None
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                spec_name = kw.value.value
            if kw.arg == "local_mem" and isinstance(kw.value, ast.Lambda):
                lam = kw.value
        if lam is None or not isinstance(lam.body, ast.Dict):
            continue
        ls_name = lam.args.args[0].arg if lam.args.args else "local_size"
        usages: list[tuple[int, tuple[int, ...]]] = []
        for shape in _legal_shapes(device.max_workgroup_size):
            total = 0
            try:
                for value in lam.body.values:
                    total += _num_eval(value, consts, ls_name, shape)
            except _NumEvalError:
                continue
            usages.append((total * LOCAL_ITEMSIZE, shape))
        if not usages:
            findings.append(Finding(
                rule="KA-LOCALMEM", severity=Severity.INFO,
                path=str(path), line=lam.lineno, scope=spec_name,
                message=f"local_mem for spec '{spec_name}' is not "
                        f"statically evaluable"))
            continue
        limit = device.local_mem_per_cu
        min_bytes, _ = min(usages)
        max_bytes, max_shape = max(usages)
        if min_bytes > limit:
            findings.append(Finding(
                rule="KA-LOCALMEM", severity=Severity.ERROR,
                path=str(path), line=lam.lineno, scope=spec_name,
                message=f"local memory for spec '{spec_name}' needs "
                        f"{min_bytes} bytes at every workgroup shape, "
                        f"device limit is {limit}"))
        elif max_bytes > limit:
            findings.append(Finding(
                rule="KA-LOCALMEM", severity=Severity.WARNING,
                path=str(path), line=lam.lineno, scope=spec_name,
                message=f"local memory for spec '{spec_name}' reaches "
                        f"{max_bytes} bytes at workgroup shape "
                        f"{max_shape}, device limit is {limit}"))
    return findings


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def analyze_kernel_file(path: Path, *,
                        device: DeviceSpec = W8000) -> list[Finding]:
    """Analyze one kernel module; returns unsuppressed findings."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            rule="KA-PARSE", severity=Severity.ERROR, path=str(path),
            line=exc.lineno or 1, scope="<module>",
            message=f"cannot parse: {exc.msg}")]
    suppressions = parse_suppressions(source)
    consts = module_constants(tree, path)
    functions = _collect_functions(tree)
    contract = contract_for(path.stem, tree)

    findings: list[Finding] = []
    for fn, chain in functions.items():
        if not _is_kernel(fn):
            continue
        analysis = _KernelAnalysis(
            path=path, fn=fn, chain=chain, tree=tree, consts=consts,
            functions=functions, module_contract=contract, device=device)
        findings.extend(analysis.run())
    findings.extend(_rule_localmem(path, tree, consts, device))

    deduped: list[Finding] = []
    seen: set[tuple[str, int, str, str]] = set()
    for f in sorted(findings, key=lambda f: (f.line, f.rule, f.message)):
        key = (f.rule, f.line, f.scope, f.message)
        if key in seen:
            continue
        seen.add(key)
        if _is_suppressed(f, functions, suppressions):
            continue
        deduped.append(f)
    return deduped


def _is_suppressed(finding: Finding,
                   functions: dict[ast.FunctionDef, list[ast.FunctionDef]],
                   suppressions: dict[int, Optional[set[str]]]) -> bool:
    candidate_lines = {finding.line}
    for fn in functions:
        if fn.lineno <= finding.line <= (fn.end_lineno or fn.lineno):
            candidate_lines.add(fn.lineno)
    for line in candidate_lines:
        if line not in suppressions:
            continue
        rules = suppressions[line]
        if rules is None or finding.rule in rules:
            return True
    return False
