"""Tests for repro.types: Image validation, params, stage-time breakdowns."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.types import (
    FLOAT,
    Image,
    SharpnessParams,
    StageTimes,
    validate_plane,
)


class TestValidatePlane:
    def test_accepts_valid_plane(self):
        out = validate_plane(np.zeros((16, 32)))
        assert out.dtype == FLOAT
        assert out.shape == (16, 32)

    def test_returns_copy(self):
        src = np.zeros((16, 16))
        out = validate_plane(src)
        out[0, 0] = 42.0
        assert src[0, 0] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            validate_plane(np.zeros(64))

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-D"):
            validate_plane(np.zeros((16, 16, 3)))

    def test_rejects_too_small(self):
        with pytest.raises(ValidationError, match=">= 16"):
            validate_plane(np.zeros((8, 16)))

    def test_rejects_non_multiple_of_four(self):
        with pytest.raises(ValidationError, match="divisible by 4"):
            validate_plane(np.zeros((18, 16)))

    def test_rejects_negative_values(self):
        plane = np.zeros((16, 16))
        plane[3, 3] = -1.0
        with pytest.raises(ValidationError, match=r"\[0, 255\]"):
            validate_plane(plane)

    def test_rejects_above_255(self):
        plane = np.zeros((16, 16))
        plane[3, 3] = 255.5
        with pytest.raises(ValidationError, match=r"\[0, 255\]"):
            validate_plane(plane)

    def test_rejects_nan(self):
        plane = np.zeros((16, 16))
        plane[0, 0] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            validate_plane(plane)

    def test_accepts_uint8_input(self):
        out = validate_plane(np.full((16, 16), 255, dtype=np.uint8))
        assert out.max() == 255.0


class TestImage:
    def test_properties(self):
        img = Image.from_array(np.zeros((16, 32)))
        assert img.height == 16
        assert img.width == 32
        assert img.shape == (16, 32)
        assert img.nbytes_u8 == 16 * 32

    def test_to_u8_rounds_and_clips(self):
        plane = np.full((16, 16), 100.6)
        img = Image.from_array(plane)
        u8 = img.to_u8()
        assert u8.dtype == np.uint8
        assert int(u8[0, 0]) == 101

    def test_invalid_raises(self):
        with pytest.raises(ValidationError):
            Image.from_array(np.zeros((15, 16)))


class TestSharpnessParams:
    def test_defaults_valid(self):
        p = SharpnessParams()
        assert p.gain > 0 and 0 <= p.overshoot <= 1

    @pytest.mark.parametrize("kwargs", [
        {"gain": -0.1},
        {"gamma": 0.0},
        {"gamma": -1.0},
        {"strength_max": 0.0},
        {"overshoot": -0.01},
        {"overshoot": 1.01},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            SharpnessParams(**kwargs)


class TestStageTimes:
    def test_add_accumulates(self):
        st = StageTimes()
        st.add("a", 1.0)
        st.add("a", 2.0)
        st.add("b", 3.0)
        assert st.times == {"a": 3.0, "b": 3.0}
        assert st.total == 6.0

    def test_fractions_sum_to_one(self):
        st = StageTimes()
        st.add("a", 1.0)
        st.add("b", 3.0)
        fr = st.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert fr["b"] == 0.75

    def test_fractions_of_empty(self):
        assert StageTimes().fractions() == {}

    def test_merged_renames(self):
        st = StageTimes()
        st.add("perror", 1.0)
        st.add("overshoot", 2.0)
        st.add("sobel", 4.0)
        merged = st.merged({"perror": "sharpness", "overshoot": "sharpness"})
        assert merged.times == {"sharpness": 3.0, "sobel": 4.0}
        assert merged.total == st.total
