"""Cross-validation: cost-model byte declarations vs emulator-counted
accesses, for every kernel of the pipeline.

Rules checked per kernel:

* the model never declares *less* global traffic than the emulator
  actually performs (no silent undercounting in the timing model);
* the model overcounts by at most the documented transaction-granularity
  factor (4x for scalar byte loads — ``U8_SCATTERED``) plus grid padding;
* for float-dominated kernels the declaration is tight (within 2x).
"""

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.kernels import (
    make_downscale_spec,
    make_perror_spec,
    make_reduction_spec,
    make_sharpness_fused_spec,
    make_sobel_spec,
    make_upscale_center_spec,
)
from repro.kernels.base import round_up
from repro.kernels.reduction import reduction_layout
from repro.simgpu.accesscount import AccessCounts, CountingArray
from repro.simgpu.device import W8000
from repro.simgpu.emulator import run_kernel
from repro.simgpu.memory import GlobalBuffer
from repro.types import SharpnessParams
from repro.util import images

from .kernel_helpers import make_padded

# 64 keeps the 16x16 workgroup grids exact, so the declared-vs-actual
# ratios reflect the accounting rules rather than grid padding.
H = W = 64


@pytest.fixture(scope="module")
def data():
    plane = images.natural_like(H, W, seed=41)
    down = algo.downscale(plane)
    up = algo.upscale(down)
    edge = algo.sobel(plane)
    return {
        "plane": plane, "padded": make_padded(plane), "down": down,
        "up": up, "edge": edge, "mean": algo.reduce_mean(edge),
    }


def _counted_run(spec, gsz, lsz, buffers, scalars):
    """Run the emulator with counting wrappers.

    ``buffers`` is a list of (name, array, itemsize); scalars follow.
    Returns (counts, itemsizes).
    """
    counts = AccessCounts()
    itemsizes = {}
    args = []
    for name, host, itemsize in buffers:
        buf = GlobalBuffer(host.shape, transfer_itemsize=itemsize,
                           name=name)
        buf.data[...] = host
        itemsizes[name] = itemsize
        args.append(CountingArray(buf.checked(), name, counts))
    args.extend(scalars)
    run_kernel(
        spec.emulator, gsz, lsz, tuple(args), device=W8000,
        local_mem=spec.local_mem(lsz, tuple(args)) if spec.local_mem
        else {},
    )
    return counts, itemsizes


def _assert_bounds(spec, gsz, lsz, cost_args, counts, itemsizes, *,
                   tight=False):
    cost = spec.cost(W8000, gsz, lsz, cost_args)
    actual_read = counts.read_bytes(itemsizes)
    actual_write = counts.write_bytes(itemsizes)
    assert cost.global_bytes_read >= actual_read * 0.99, (
        f"{spec.name}: model declares {cost.global_bytes_read} read bytes "
        f"but the emulator performed {actual_read}"
    )
    assert cost.global_bytes_written >= actual_write * 0.99, spec.name
    upper = 2.0 if tight else 8.0
    assert cost.global_bytes_read <= max(actual_read * upper, 1024), \
        f"{spec.name}: model read declaration too loose"
    assert cost.global_bytes_written <= max(actual_write * upper, 1024), \
        f"{spec.name}: model write declaration too loose"


class TestCostDeclarationsMatchEmulator:
    def test_downscale(self, data):
        spec = make_downscale_spec(padded=True)
        gsz, lsz = (round_up(W // 4, 16), round_up(H // 4, 16)), (16, 16)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("src", data["padded"], 1),
             ("dst", np.zeros((H // 4, W // 4)), 4)],
            [H, W],
        )
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=True)

    def test_sobel_scalar(self, data):
        spec = make_sobel_spec(padded=True)
        gsz, lsz = (round_up(W, 16), round_up(H, 16)), (16, 16)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("src", data["padded"], 1), ("dst", np.zeros((H, W)), 4)],
            [H, W],
        )
        # Scalar byte loads are charged at transaction granularity (4x).
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=False)

    def test_sobel_vector(self, data):
        spec = make_sobel_spec(padded=True, vector=True)
        gsz, lsz = (round_up(W // 4, 16), round_up(H, 16)), (16, 16)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("src", data["padded"], 1), ("dst", np.zeros((H, W)), 4)],
            [H, W],
        )
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=True)

    def test_center_vector(self, data):
        spec = make_upscale_center_spec(vector=True)
        gsz, lsz = ((round_up((W - 4) // 4, 16), round_up((H - 4) // 4,
                                                          16)), (16, 16))
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("down", data["down"], 4), ("up", np.zeros((H, W)), 4)],
            [H, W],
        )
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=True)

    def test_perror(self, data):
        spec = make_perror_spec(padded=True)
        gsz, lsz = (round_up(W, 16), round_up(H, 16)), (16, 16)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("src", data["padded"], 1), ("up", data["up"], 4),
             ("dst", np.zeros((H, W)), 4)],
            [H, W],
        )
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=True)

    def test_sharpness_fused_vector(self, data):
        spec = make_sharpness_fused_spec(padded=True, vector=True)
        gsz, lsz = (round_up(W // 4, 16), round_up(H, 16)), (16, 16)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("up", data["up"], 4), ("pedge", data["edge"], 4),
             ("src", data["padded"], 1), ("dst", np.zeros((H, W)), 1)],
            [data["mean"], SharpnessParams(), H, W],
        )
        _assert_bounds(spec, gsz, lsz, (), counts, sizes, tight=False)

    @pytest.mark.parametrize("unroll", [0, 1, 2])
    def test_reduction(self, rng, unroll):
        values = rng.uniform(0, 255, 4096)
        n_groups, gsz, lsz = reduction_layout(values.size)
        spec = make_reduction_spec(unroll=unroll)
        counts, sizes = _counted_run(
            spec, gsz, lsz,
            [("src", values, 4), ("partial", np.zeros(n_groups), 4)],
            [values.size],
        )
        cost_args = (None, None, values.size)
        _assert_bounds(spec, gsz, lsz, cost_args, counts, sizes,
                       tight=True)
        # The reduction reads each element exactly once from global memory.
        assert counts.read_elements("src") == values.size
