"""Downscale stage: golden-reference equality and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.cpu import naive
from repro.errors import ValidationError

from .conftest import assert_allclose


class TestDownscaleGolden:
    def test_matches_naive_on_all_workloads(self, small_planes):
        for name, plane in small_planes.items():
            assert_allclose(algo.downscale(plane), naive.downscale(plane),
                            context=f"downscale({name})")

    def test_output_shape(self):
        out = algo.downscale(np.zeros((32, 64)))
        assert out.shape == (8, 16)

    def test_known_block_mean(self):
        plane = np.zeros((16, 16))
        plane[0:4, 0:4] = np.arange(16).reshape(4, 4)
        out = algo.downscale(plane)
        assert out[0, 0] == pytest.approx(np.arange(16).mean())
        assert out[0, 1] == 0.0

    def test_rejects_non_multiple_of_four(self):
        with pytest.raises(ValidationError):
            algo.downscale(np.zeros((10, 16)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            algo.downscale(np.zeros(64))


class TestDownscaleProperties:
    @given(
        st.integers(min_value=4, max_value=16).map(lambda k: 4 * k),
        st.integers(min_value=4, max_value=16).map(lambda k: 4 * k),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_preserves_global_mean(self, h, w, seed):
        """Non-overlapping block means preserve the global mean exactly."""
        plane = np.random.default_rng(seed).uniform(0, 255, (h, w))
        down = algo.downscale(plane)
        assert down.shape == (h // 4, w // 4)
        assert down.mean() == pytest.approx(plane.mean(), rel=1e-12)

    @given(st.floats(min_value=0, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_constant_maps_to_constant(self, value):
        plane = np.full((16, 16), value)
        down = algo.downscale(plane)
        assert_allclose(down, np.full((4, 4), value), atol=1e-12,
                        context="constant downscale")

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_output_within_input_range(self, seed):
        plane = np.random.default_rng(seed).uniform(0, 255, (32, 32))
        down = algo.downscale(plane)
        assert down.min() >= plane.min() - 1e-9
        assert down.max() <= plane.max() + 1e-9

    def test_linearity(self, small_planes):
        a = small_planes["natural"]
        b = small_planes["noise"]
        combo = algo.downscale(0.25 * a + 0.5 * b)
        parts = 0.25 * algo.downscale(a) + 0.5 * algo.downscale(b)
        assert_allclose(combo, parts, atol=1e-10, context="linearity")
