"""Rectangular images, minimum sizes, and parameter extremes end to end."""

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.core import BASE, OPTIMIZED, GPUPipeline
from repro.cpu import CPUPipeline, naive
from repro.types import Image, SharpnessParams
from repro.util import images

from .conftest import assert_allclose

RECT_SHAPES = [(16, 64), (64, 16), (32, 48), (48, 32), (16, 16)]


class TestRectangularGolden:
    @pytest.mark.parametrize("shape", RECT_SHAPES)
    def test_full_pipeline_matches_naive(self, shape):
        h, w = shape
        plane = images.natural_like(h, w, seed=h * 100 + w)
        ref = naive.sharpen(plane)
        out = algo.sharpen(plane)
        assert_allclose(out["final"], ref["final"], atol=1e-9,
                        context=f"rect {shape}")

    @pytest.mark.parametrize("shape", RECT_SHAPES)
    def test_gpu_pipeline_matches_reference(self, shape):
        h, w = shape
        plane = images.natural_like(h, w, seed=h + w)
        ref = algo.sharpen(plane)["final"]
        for flags in (BASE, OPTIMIZED):
            res = GPUPipeline(flags).run(Image.from_array(plane))
            assert_allclose(res.final, ref, atol=1e-9,
                            context=f"gpu rect {shape}")

    @pytest.mark.parametrize("shape", [(16, 64), (64, 16)])
    def test_emulated_rectangular(self, shape):
        h, w = shape
        plane = images.natural_like(h, w, seed=3)
        ref = algo.sharpen(plane)["final"]
        res = GPUPipeline(OPTIMIZED, mode="emulate").run(
            Image.from_array(plane))
        assert_allclose(res.final, ref, atol=1e-9,
                        context=f"emulate rect {shape}")


class TestMinimumSize:
    def test_16x16_everything(self):
        plane = images.checkerboard(16, 16, cell=2)
        ref = naive.sharpen(plane)
        fast = algo.sharpen(plane)
        assert_allclose(fast["final"], ref["final"], atol=1e-9,
                        context="16x16 naive")
        gpu = GPUPipeline(OPTIMIZED, mode="emulate").run(
            Image.from_array(plane))
        assert_allclose(gpu.final, ref["final"], atol=1e-9,
                        context="16x16 gpu emulate")

    def test_16x16_downscale_is_4x4(self):
        down = algo.downscale(np.zeros((16, 16)))
        assert down.shape == (4, 4)
        up = algo.upscale(down)
        assert up.shape == (16, 16)


class TestParameterExtremes:
    @pytest.mark.parametrize("params", [
        SharpnessParams(gain=0.0),
        SharpnessParams(gamma=2.0),
        SharpnessParams(gamma=0.2),
        SharpnessParams(strength_max=0.001),
        SharpnessParams(overshoot=0.0),
        SharpnessParams(overshoot=1.0),
        SharpnessParams(gain=100.0, strength_max=1000.0, overshoot=1.0),
    ])
    def test_pipeline_stays_valid(self, params):
        plane = images.noise(32, 32, seed=5)
        cpu = CPUPipeline(params).run(plane)
        gpu = GPUPipeline(OPTIMIZED, params).run(plane)
        assert_allclose(gpu.final, cpu.final, atol=1e-9,
                        context=f"params {params}")
        assert cpu.final.min() >= 0.0 and cpu.final.max() <= 255.0
        assert np.isfinite(cpu.final).all()

    def test_black_and_white_images(self):
        for value in (0.0, 255.0):
            plane = np.full((32, 32), value)
            res = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
            assert_allclose(res.final, plane, atol=1e-9,
                            context=f"flat {value}")

    def test_single_hot_pixel(self):
        """An impulse: finite response, output in range, no NaNs."""
        plane = np.zeros((32, 32))
        plane[16, 16] = 255.0
        res = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
        assert np.isfinite(res.final).all()
        assert res.final.min() >= 0.0 and res.final.max() <= 255.0
        assert res.final[16, 16] > 0

    def test_extreme_gamma_small_mean(self):
        """Tiny mean + small gamma stresses the pow path (norm >> 1)."""
        plane = np.zeros((32, 32))
        plane[0, 0] = 1.0  # nearly flat: tiny edge mean
        params = SharpnessParams(gain=1.0, gamma=0.2, strength_max=4.0)
        res = GPUPipeline(OPTIMIZED, params).run(Image.from_array(plane))
        assert np.isfinite(res.final).all()


class TestRectangularTimings:
    def test_transposed_images_cost_the_same(self):
        """The cost model depends on the pixel count and the border line
        lengths, both symmetric under transpose up to the serial border
        term (which uses max(h, w))."""
        a = GPUPipeline(OPTIMIZED).run(
            Image.from_array(images.gradient(32, 96)))
        b = GPUPipeline(OPTIMIZED).run(
            Image.from_array(images.gradient(96, 32)))
        assert a.total_time == pytest.approx(b.total_time, rel=0.05)

    def test_area_dominates_cost(self):
        wide = GPUPipeline(OPTIMIZED).run(
            Image.from_array(images.gradient(16, 256)))
        square = GPUPipeline(OPTIMIZED).run(
            Image.from_array(images.gradient(64, 64)))
        # Same pixel count: within a modest factor of each other.
        ratio = wide.total_time / square.total_time
        assert 0.5 < ratio < 2.0
