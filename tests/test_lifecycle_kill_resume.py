"""The crash story, end to end: SIGKILL a durable batch mid-run, resume,
and prove the stitched result is bit-identical with no recomputation.

These tests drive the real CLI in subprocesses (SIGKILL cannot be
simulated in-process: nothing runs after it, including ``finally``
blocks — exactly the hole the write-ahead journal covers).
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.lifecycle import JobJournal
from repro.util import images as synth
from repro.util.io import write_pgm

N_FRAMES = 8
REPO_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def frames_dir(tmp_path):
    src = tmp_path / "frames"
    src.mkdir()
    for i in range(N_FRAMES):
        write_pgm(src / f"f{i:02d}.pgm", synth.text_like(48, 48, seed=i))
    return src


def cli(args, **popen):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "sharpen", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, **popen,
    )


def run_cli(args, timeout=120):
    proc = cli(args)
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, out, err


def journal_frames(job_dir, run=None):
    """Frame records in the journal, optionally filtered by run number."""
    path = pathlib.Path(job_dir) / "journal.jsonl"
    records = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("kind") != "frame":
            continue
        if run is None or record.get("run") == run:
            records.append(record)
    return records


def wait_for_completed(job_dir, count, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = [r for r in journal_frames(job_dir)
                if r["status"] == "completed"]
        if len(done) >= count:
            return done
        time.sleep(0.02)
    raise AssertionError(
        f"journal never reached {count} completed frames "
        f"(has {len(journal_frames(job_dir))})"
    )


def read_outputs(out_dir):
    return {p.name: p.read_bytes()
            for p in sorted(pathlib.Path(out_dir).glob("*.pgm"))}


@pytest.mark.parametrize("sig", [signal.SIGKILL])
def test_sigkill_then_resume_is_bit_identical(tmp_path, frames_dir, sig):
    # Reference: one uninterrupted durable run.
    rc, _, err = run_cli([
        str(frames_dir / "*.pgm"), str(tmp_path / "ref-out"), "--batch",
        "--job-dir", str(tmp_path / "ref-job"), "--workers", "1",
    ])
    assert rc == 0, err
    reference = read_outputs(tmp_path / "ref-out")
    assert len(reference) == N_FRAMES

    # Victim: same job, slowed down (~0.2 s/frame via an uncancelled
    # hang-site stall), killed hard after two frames hit the journal.
    job_dir = tmp_path / "job"
    proc = cli([
        str(frames_dir / "*.pgm"), str(tmp_path / "out"), "--batch",
        "--job-dir", str(job_dir), "--workers", "1",
        "--inject-faults", "hang:rate=1.0,seconds=0.2;seed=1",
    ])
    try:
        wait_for_completed(job_dir, 2)
        proc.send_signal(sig)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == -sig

    run1 = journal_frames(job_dir, run=1)
    run1_completed = [r for r in run1 if r["status"] == "completed"]
    assert 2 <= len(run1_completed) < N_FRAMES
    # SIGKILL skipped every finally block: the manifest still says running
    manifest = json.loads((job_dir / "manifest.json").read_text())
    assert manifest["state"] == "running"

    # Resume (no fault slowdown) finishes the job.
    rc, _, err = run_cli(["--resume", str(job_dir)])
    assert rc == 0, err

    # No frame ran twice: run 2 journaled exactly the leftovers.
    run2 = journal_frames(job_dir, run=2)
    assert len(run2) == N_FRAMES - len(run1_completed)
    assert {r["frame_id"] for r in run1_completed}.isdisjoint(
        {r["frame_id"] for r in run2})

    # The stitched outputs match the uninterrupted run bit for bit.
    assert read_outputs(tmp_path / "out") == reference
    manifest = json.loads((job_dir / "manifest.json").read_text())
    assert manifest["state"] == "completed"


def test_sigterm_drains_with_exit_3_then_resume(tmp_path, frames_dir):
    job_dir = tmp_path / "job"
    proc = cli([
        str(frames_dir / "*.pgm"), str(tmp_path / "out"), "--batch",
        "--job-dir", str(job_dir), "--workers", "1",
        "--inject-faults", "hang:rate=1.0,seconds=0.2;seed=1",
        "--drain-timeout", "30",
    ])
    try:
        wait_for_completed(job_dir, 1)
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == 3, err
    state = JobJournal.replay(job_dir)
    assert state.completed and len(state.completed) < N_FRAMES
    manifest = json.loads((job_dir / "manifest.json").read_text())
    assert manifest["state"] == "drained"

    rc, _, err = run_cli(["--resume", str(job_dir)])
    assert rc == 0, err
    assert len(read_outputs(tmp_path / "out")) == N_FRAMES


def test_double_sigterm_aborts_with_exit_4(tmp_path, frames_dir):
    job_dir = tmp_path / "job"
    proc = cli([
        str(frames_dir / "*.pgm"), str(tmp_path / "out"), "--batch",
        "--job-dir", str(job_dir), "--workers", "1",
        "--inject-faults", "hang:rate=1.0,seconds=0.5;seed=1",
        "--drain-timeout", "300",
    ])
    try:
        wait_for_completed(job_dir, 1)
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.2)
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == 4, err
    manifest = json.loads((job_dir / "manifest.json").read_text())
    assert manifest["state"] == "aborted"
    # the checkpoint is still resumable
    rc, _, err = run_cli(["--resume", str(job_dir)])
    assert rc == 0, err
    assert len(read_outputs(tmp_path / "out")) == N_FRAMES
