"""Retry policy: deterministic backoff, budget, timeout, outcome metrics."""

import io

import pytest

from repro.errors import (
    ConfigError,
    FrameTimeoutError,
    RetryExhaustedError,
    TransferFault,
    ValidationError,
)
from repro.obs import RunContext
from repro.resilience import RetryBudget, RetryPolicy, Timeout
from repro.resilience.policy import execute


def quiet_obs():
    return RunContext.create(log_level="error", log_stream=io.StringIO())


def outcome_counts(obs):
    family = obs.metrics.get("repro_retries_total")
    if family is None:
        return {}
    return {c.labels["outcome"]: c.value for c in family.children}


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="ok", exc=None):
        self.failures = failures
        self.value = value
        if exc is None:
            # mark the fault retryable, as the fault plan does at injection
            exc = TransferFault("boom")
            exc.transient = True
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


class TestBackoffSchedule:
    def test_deterministic_across_instances(self):
        a = RetryPolicy(max_attempts=6, seed=13)
        b = RetryPolicy(max_attempts=6, seed=13)
        assert a.schedule() == b.schedule()
        # element-by-element: backoff(k) is a pure function of (policy, k)
        for k in range(1, 6):
            assert a.backoff(k) == b.backoff(k)

    def test_seed_changes_schedule(self):
        a = RetryPolicy(max_attempts=6, seed=1)
        b = RetryPolicy(max_attempts=6, seed=2)
        assert a.schedule() != b.schedule()

    def test_no_jitter_is_pure_exponential(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.001,
                        multiplier=2.0, max_delay=1.0, jitter=0.0)
        assert p.schedule() == [0.001, 0.002, 0.004, 0.008]

    def test_capped_at_max_delay_plus_jitter(self):
        p = RetryPolicy(max_attempts=10, base_delay=0.01,
                        multiplier=10.0, max_delay=0.05, jitter=0.1)
        for delay in p.schedule():
            assert delay <= 0.05 * 1.1 + 1e-12

    def test_schedule_length_is_retries_not_attempts(self):
        assert len(RetryPolicy(max_attempts=4).schedule()) == 3
        assert RetryPolicy(max_attempts=1).schedule() == []

    def test_jitter_is_nonnegative_addition(self):
        p = RetryPolicy(max_attempts=8, base_delay=0.001, jitter=0.5,
                        max_delay=1.0)
        base = RetryPolicy(max_attempts=8, base_delay=0.001, jitter=0.0,
                           max_delay=1.0)
        for with_j, without in zip(p.schedule(), base.schedule()):
            assert without <= with_j <= without * 1.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"base_delay": 0.2, "max_delay": 0.1},
        {"jitter": 1.5},
        {"jitter": -0.1},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_index_must_be_positive(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff(0)


class TestTimeoutAndBudget:
    @pytest.mark.parametrize("seconds", [0.0, -1.0])
    def test_timeout_must_be_positive(self, seconds):
        with pytest.raises(ConfigError):
            Timeout(seconds)

    def test_budget_take_until_spent(self):
        budget = RetryBudget(2)
        assert budget.take() and budget.take()
        assert not budget.take()
        assert budget.remaining == 0

    def test_budget_rejects_negative(self):
        with pytest.raises(ConfigError):
            RetryBudget(-1)


class TestExecute:
    def test_success_first_try(self):
        result, attempts = execute(lambda: 42, RetryPolicy(), sleep=lambda s: None)
        assert (result, attempts) == (42, 1)

    def test_transient_retried_to_success(self):
        obs = quiet_obs()
        fn = Flaky(failures=2)
        result, attempts = execute(fn, RetryPolicy(max_attempts=5),
                                   obs=obs, sleep=lambda s: None)
        assert (result, attempts) == ("ok", 3)
        counts = outcome_counts(obs)
        assert counts["retried"] == 2
        assert counts["success"] == 1

    def test_permanent_raises_immediately(self):
        obs = quiet_obs()
        fn = Flaky(failures=10, exc=ValidationError("bad input"))
        with pytest.raises(ValidationError):
            execute(fn, RetryPolicy(max_attempts=5), obs=obs,
                    sleep=lambda s: None)
        assert fn.calls == 1
        assert outcome_counts(obs) == {"permanent": 1}

    def test_exhausted_raises_and_chains_cause(self):
        obs = quiet_obs()
        fn = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError) as exc_info:
            execute(fn, RetryPolicy(max_attempts=3), obs=obs,
                    sleep=lambda s: None)
        assert fn.calls == 3
        assert isinstance(exc_info.value.__cause__, TransferFault)
        assert outcome_counts(obs)["exhausted"] == 1

    def test_budget_stops_retries(self):
        obs = quiet_obs()
        budget = RetryBudget(1)
        fn = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError):
            execute(fn, RetryPolicy(max_attempts=5), budget=budget,
                    obs=obs, sleep=lambda s: None)
        # 1 token == 1 retry == 2 calls
        assert fn.calls == 2
        counts = outcome_counts(obs)
        assert counts["budget"] == 1
        assert "exhausted" not in counts

    def test_deadline_stops_retries(self):
        obs = quiet_obs()
        now = [0.0]
        fn = Flaky(failures=10)
        with pytest.raises(FrameTimeoutError):
            execute(fn, RetryPolicy(max_attempts=5, base_delay=10.0,
                                    max_delay=10.0, jitter=0.0),
                    timeout=Timeout(1.0), obs=obs,
                    sleep=lambda s: None, clock=lambda: now[0])
        assert fn.calls == 1
        assert outcome_counts(obs)["deadline"] == 1

    def test_sleeps_follow_the_schedule(self):
        policy = RetryPolicy(max_attempts=4, seed=3)
        slept = []
        fn = Flaky(failures=3)
        execute(fn, policy, sleep=slept.append)
        assert slept == policy.schedule()
