"""Metrics registry: counters/gauges/histograms, percentiles, exporters."""

import json
import math

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert reg.counter("c_total")._default_child().value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.dec(4)
        g.inc()
        assert g._default_child().value == 7

    def test_labelled_children_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", labelnames=("kind",))
        fam.labels(kind="a").inc(1)
        fam.labels(kind="b").inc(5)
        assert fam.labels(kind="a").value == 1
        assert fam.labels(kind="b").value == 5

    def test_registration_idempotent_but_typed(self):
        reg = MetricsRegistry()
        assert reg.counter("m") is reg.counter("m")
        with pytest.raises(ValidationError):
            reg.gauge("m")
        with pytest.raises(ValidationError):
            reg.counter("m", labelnames=("x",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("bad-name")
        with pytest.raises(ValidationError):
            reg.counter("ok", labelnames=("bad-label",))

    def test_label_mismatch_rejected(self):
        fam = MetricsRegistry().counter("c", labelnames=("kind",))
        with pytest.raises(ValidationError):
            fam.labels(other="x")
        with pytest.raises(ValidationError):
            fam.inc()  # unlabelled use of a labelled family


class TestHistogramMath:
    def test_percentile_linear_interpolation(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0)) \
                             .labels()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == pytest.approx(2.5)
        assert h.percentile(25) == pytest.approx(1.75)

    def test_percentile_single_observation(self):
        h = MetricsRegistry().histogram("h").labels()
        h.observe(0.5)
        assert h.percentile(99) == 0.5

    def test_percentile_empty_raises(self):
        h = MetricsRegistry().histogram("h").labels()
        with pytest.raises(ValidationError):
            h.percentile(50)

    def test_percentile_out_of_range_raises(self):
        h = MetricsRegistry().histogram("h").labels()
        h.observe(1.0)
        with pytest.raises(ValidationError):
            h.percentile(101)

    def test_sum_count_mean(self):
        h = MetricsRegistry().histogram("h").labels()
        for v in (0.25, 0.75):
            h.observe(v)
        assert h.sum == 1.0
        assert h.count == 2
        assert h.mean == 0.5

    def test_cumulative_buckets_monotone_and_end_with_inf(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0)) \
                             .labels()
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        pairs = h.cumulative_buckets()
        assert pairs[-1] == (math.inf, 4)
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)
        assert counts == [1, 2, 3, 4]

    def test_boundary_lands_in_le_bucket(self):
        # Prometheus buckets are le (inclusive upper bounds).
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0)).labels()
        h.observe(1.0)
        assert h.cumulative_buckets()[0] == (1.0, 1)


class TestPrometheusText:
    def test_full_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "Total runs", ("pipeline",)) \
           .labels(pipeline="gpu").inc(2)
        text = reg.to_prometheus_text()
        assert "# HELP runs_total Total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{pipeline="gpu"} 2' in text
        assert text.endswith("\n")

    def test_histogram_series(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", "x", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus_text()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.05" in text
        assert "h_seconds_count 1" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", ("path",)) \
           .labels(path='a\\b"c\nd').inc()
        text = reg.to_prometheus_text()
        assert r'path="a\\b\"c\nd"' in text
        # Exactly one physical line for the sample.
        sample_lines = [ln for ln in text.splitlines()
                        if ln.startswith("c{")]
        assert len(sample_lines) == 1

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "line1\nline2 \\ backslash")
        text = reg.to_prometheus_text()
        assert "# HELP c line1\\nline2 \\\\ backslash" in text


class TestExportFiles:
    def test_write_prometheus_accepts_str_and_path(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        p1 = reg.write_prometheus(str(tmp_path / "a.prom"))
        p2 = reg.write_prometheus(tmp_path / "b.prom")
        assert p1.read_text() == p2.read_text()

    def test_write_json_parses(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("h", "x", ("stage",), buckets=(1.0,)) \
           .labels(stage="sobel").observe(0.5)
        path = reg.write_json(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        series = doc["h"]["series"][0]
        assert series["labels"] == {"stage": "sobel"}
        assert series["count"] == 1
        assert series["buckets"][-1]["le"] == "+Inf"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.write_prometheus(tmp_path / "m.prom")
        leftovers = [p for p in tmp_path.iterdir() if p.name != "m.prom"]
        assert leftovers == []

    def test_atomic_write_failure_keeps_old_content(self, tmp_path,
                                                    monkeypatch):
        from repro.util import io as uio
        target = tmp_path / "m.prom"
        target.write_text("old")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(uio.os, "replace", boom)
        with pytest.raises(OSError):
            uio.atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["m.prom"]
