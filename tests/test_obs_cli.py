"""CLI smoke tests: --trace-out / --metrics-out produce parseable files."""

import json
import re

import pytest

from repro.__main__ import main
from repro.core.metrics import GPU_STAGE_ORDER
from repro.util.io import write_pgm
from repro.util import images


@pytest.fixture()
def demo_pgm(tmp_path):
    path = tmp_path / "demo.pgm"
    write_pgm(path, images.text_like(64, 64, seed=1))
    return path


def test_sharpen_writes_trace_and_metrics(tmp_path, demo_pgm, capsys):
    trace = tmp_path / "run.json"
    prom = tmp_path / "metrics.prom"
    rc = main([
        "sharpen", str(demo_pgm), str(tmp_path / "out.pgm"),
        "--pipeline", "gpu",
        "--trace-out", str(trace),
        "--metrics-out", str(prom),
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "wrote trace" in err and "wrote metrics" in err

    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    host = [e for e in events if e.get("pid") == 1 and e["ph"] == "X"]
    device = [e for e in events if e.get("pid", 1) != 1 and e["ph"] == "X"]
    assert any(e["name"] == "cli.sharpen" for e in host)
    assert any(e["name"] == "gpu.run" for e in host)
    assert any(e["name"].startswith("kernel:") for e in device)

    text = prom.read_text()
    for stage in GPU_STAGE_ORDER:
        assert re.search(
            rf'repro_stage_seconds_count\{{pipeline="gpu",'
            rf'stage="{stage}"\}} \d+', text
        ), f"missing histogram for stage {stage}"
    assert "# TYPE repro_stage_seconds histogram" in text


def test_sharpen_debug_logging(tmp_path, demo_pgm, capsys):
    rc = main([
        "sharpen", str(demo_pgm), str(tmp_path / "out.pgm"),
        "--pipeline", "gpu-base", "--log-level", "debug",
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "event=cl.cmd" in err
    assert "event=pipeline.complete" in err
    assert "pipeline=gpu-base" in err


def test_sharpen_json_log_format(tmp_path, demo_pgm, capsys):
    rc = main([
        "sharpen", str(demo_pgm), str(tmp_path / "out.pgm"),
        "--pipeline", "cpu", "--log-level", "info",
        "--log-format", "json",
    ])
    assert rc == 0
    err = capsys.readouterr().err
    records = [json.loads(line) for line in err.splitlines()
               if line.startswith("{")]
    assert any(r["event"] == "pipeline.complete" for r in records)


def test_sharpen_quiet_by_default(tmp_path, demo_pgm, capsys):
    rc = main(["sharpen", str(demo_pgm), str(tmp_path / "out.pgm")])
    assert rc == 0
    captured = capsys.readouterr()
    # No structured records unless asked for; stdout unchanged.
    assert "event=" not in captured.err
    assert "wrote" in captured.out


def test_cpu_pipeline_metrics_out(tmp_path, demo_pgm):
    prom = tmp_path / "cpu.prom"
    rc = main([
        "sharpen", str(demo_pgm), str(tmp_path / "out.pgm"),
        "--pipeline", "cpu", "--metrics-out", str(prom),
    ])
    assert rc == 0
    text = prom.read_text()
    assert 'pipeline="cpu"' in text
    assert "repro_pipeline_runs_total" in text
