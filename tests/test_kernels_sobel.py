"""Sobel kernel variants: scalar, padded, vectorized."""

import pytest

from repro.algo import stages as algo
from repro.errors import ConfigError
from repro.kernels import make_sobel_spec
from repro.simgpu.device import W8000

from .conftest import assert_allclose
from .kernel_helpers import grid2d, make_padded, run_spec

H = W = 32


@pytest.fixture(scope="module")
def plane():
    from repro.util import images
    return images.natural_like(H, W, seed=9)


def _args(plane, padded):
    src_host = make_padded(plane) if padded else plane

    def build(ctx):
        src = ctx.create_buffer(src_host.shape, transfer_itemsize=1)
        src.data[...] = src_host
        dst = ctx.create_buffer((H, W), transfer_itemsize=4)
        return (src, dst, H, W), {"dst": dst}

    return build


class TestSobelVariants:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("padded", [False, True])
    def test_scalar_matches_algo(self, plane, mode, padded):
        spec = make_sobel_spec(padded=padded)
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, _args(plane, padded), mode=mode)
        assert_allclose(out["dst"], algo.sobel(plane), atol=1e-9,
                        context=f"sobel scalar {mode} padded={padded}")

    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_vector_matches_algo(self, plane, mode):
        spec = make_sobel_spec(padded=True, vector=True)
        gsz, lsz = grid2d(W // 4, H)
        out = run_spec(spec, gsz, lsz, _args(plane, True), mode=mode)
        assert_allclose(out["dst"], algo.sobel(plane), atol=1e-9,
                        context=f"sobel vector {mode}")

    def test_vector_requires_padding(self):
        with pytest.raises(ConfigError, match="padding"):
            make_sobel_spec(padded=False, vector=True)

    def test_vector_on_checkerboard(self):
        """Dense edges: every lane takes the non-trivial path."""
        from repro.util import images
        board = images.checkerboard(H, W, cell=2)
        spec = make_sobel_spec(padded=True, vector=True)
        gsz, lsz = grid2d(W // 4, H)
        out = run_spec(spec, gsz, lsz, _args(board, True), mode="emulate")
        assert_allclose(out["dst"], algo.sobel(board), atol=1e-9,
                        context="sobel vector checkerboard")


class TestSobelCosts:
    def test_unpadded_is_divergent(self):
        assert make_sobel_spec(padded=False).cost(
            W8000, (32, 32), (16, 16), ()).divergent

    def test_padded_removes_divergence(self):
        assert not make_sobel_spec(padded=True).cost(
            W8000, (32, 32), (16, 16), ()).divergent

    def test_vector_halves_read_traffic(self):
        """Fig. 11: 18 loads per 4 outputs instead of 4 x 8."""
        scalar = make_sobel_spec(padded=True)
        vector = make_sobel_spec(padded=True, vector=True)
        c_s = scalar.cost(W8000, (64, 64), (16, 16), ())
        c_v = vector.cost(W8000, (16, 64), (16, 16), ())
        assert c_v.global_bytes_read < 0.7 * c_s.global_bytes_read
        # Same output pixels -> same write traffic:
        assert c_v.global_bytes_written == c_s.global_bytes_written

    def test_builtins_flag_propagates(self):
        c = make_sobel_spec(padded=True, builtins=True).cost(
            W8000, (32, 32), (16, 16), ())
        assert c.uses_builtins
