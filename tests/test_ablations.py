"""Ablation experiments and the extra kernel variants they exercise."""

import pytest

from repro.algo import stages as algo
from repro.cl import CommandQueue, Context
from repro.errors import ConfigError
from repro.experiments import ablations
from repro.kernels import make_sobel_spec
from repro.kernels.reduction import (
    barriers_for,
    make_reduction_spec,
    reduction_layout,
)
from repro.simgpu.device import W8000

from .conftest import assert_allclose
from .kernel_helpers import make_padded


class TestTiledSobel:
    @pytest.fixture(scope="class")
    def plane(self):
        from repro.util import images
        return images.natural_like(32, 32, seed=13)

    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_matches_algo(self, plane, mode):
        ctx = Context(mode=mode)
        queue = CommandQueue(ctx)
        src = ctx.create_buffer((34, 34), transfer_itemsize=1)
        src.data[...] = make_padded(plane)
        dst = ctx.create_buffer((32, 32), transfer_itemsize=4)
        spec = make_sobel_spec(padded=True, tiled=True)
        queue.enqueue_nd_range(spec.create().set_args(src, dst, 32, 32),
                               (32, 32), (16, 16))
        assert_allclose(dst.data, algo.sobel(plane), atol=1e-9,
                        context=f"tiled sobel {mode}")

    def test_small_workgroup_emulation(self, plane):
        """The cooperative tile load must work for any tile shape."""
        ctx = Context(mode="emulate")
        queue = CommandQueue(ctx)
        src = ctx.create_buffer((34, 34), transfer_itemsize=1)
        src.data[...] = make_padded(plane)
        dst = ctx.create_buffer((32, 32), transfer_itemsize=4)
        spec = make_sobel_spec(padded=True, tiled=True)
        queue.enqueue_nd_range(spec.create().set_args(src, dst, 32, 32),
                               (32, 32), (8, 8))
        assert_allclose(dst.data, algo.sobel(plane), atol=1e-9,
                        context="tiled sobel 8x8")

    def test_requires_padding(self):
        with pytest.raises(ConfigError):
            make_sobel_spec(tiled=True)

    def test_exclusive_with_vector(self):
        with pytest.raises(ConfigError, match="exclusive"):
            make_sobel_spec(padded=True, vector=True, tiled=True)

    def test_cost_shape(self):
        """Tiled: low global traffic, LDS traffic, one barrier per group."""
        spec = make_sobel_spec(padded=True, tiled=True)
        c = spec.cost(W8000, (1024, 1024), (16, 16), (None, None, 1024,
                                                      1024))
        scalar = make_sobel_spec(padded=True).cost(
            W8000, (1024, 1024), (16, 16), (None, None, 1024, 1024))
        assert c.global_bytes_read < 0.2 * scalar.global_bytes_read
        assert c.local_bytes > 0
        assert c.barriers_per_group == 1.0


class TestReductionLayouts:
    def test_layout_parameters(self):
        n_groups, gsz, lsz = reduction_layout(10_000, wg=64, ept=2)
        assert lsz == (64,)
        assert n_groups == -(-10_000 // 128)
        assert gsz == (n_groups * 64,)

    def test_invalid_layouts_rejected(self):
        with pytest.raises(Exception):
            reduction_layout(100, wg=96)  # not a power of two
        with pytest.raises(ConfigError):
            reduction_layout(100, ept=0)
        with pytest.raises(ConfigError):
            make_reduction_spec(unroll=1, ept=0)

    def test_barriers_formula(self):
        assert barriers_for(0, 128) == 8
        assert barriers_for(1, 64) == 1
        assert barriers_for(1, 128) == 1
        assert barriers_for(1, 256) == 2
        assert barriers_for(2, 128) == 3 - 1  # 2: algorithm 2 on 128

    def test_unroll2_requires_two_wavefronts(self):
        with pytest.raises(ConfigError, match="two wavefronts"):
            make_reduction_spec(unroll=2, wg=64)

    @pytest.mark.parametrize("wg,ept", [(64, 2), (128, 8), (256, 4)])
    def test_emulated_correctness_across_layouts(self, rng, wg, ept):
        n = wg * ept * 2 + 17
        values = rng.uniform(0, 255, n)
        n_groups, gsz, lsz = reduction_layout(n, wg=wg, ept=ept)
        ctx = Context(mode="emulate")
        queue = CommandQueue(ctx)
        src = ctx.create_buffer((n,), transfer_itemsize=4)
        src.data[...] = values
        partial = ctx.create_buffer((n_groups,), transfer_itemsize=4)
        spec = make_reduction_spec(unroll=1, wg=wg, ept=ept)
        queue.enqueue_nd_range(spec.create().set_args(src, partial, n),
                               gsz, lsz)
        assert partial.data.sum() == pytest.approx(values.sum(), rel=1e-12)

    def test_wg256_unroll1_needs_extra_barrier(self, rng):
        """For a 4-wavefront group the s=128 step crosses wavefronts, so
        Algorithm 1 must barrier once more — verified via the emulator's
        own barrier count."""
        from repro.simgpu.emulator import run_kernel
        from repro.simgpu.memory import GlobalBuffer

        n = 256 * 4
        values = rng.uniform(0, 255, n)
        n_groups, gsz, lsz = reduction_layout(n, wg=256, ept=4)
        src = GlobalBuffer((n,), transfer_itemsize=4)
        src.data[...] = values
        partial = GlobalBuffer((n_groups,), transfer_itemsize=4)
        spec = make_reduction_spec(unroll=1, wg=256, ept=4)
        stats = run_kernel(spec.emulator, gsz, lsz,
                           (src.checked(), partial.checked(), n),
                           device=W8000,
                           local_mem=spec.local_mem(lsz, ()))
        assert stats.barrier_releases == 2 * n_groups
        assert partial.data.sum() == pytest.approx(values.sum(), rel=1e-12)


class TestAblationExperiments:
    def test_sobel_ablation_shapes(self):
        rows = ablations.run_sobel()
        for r in rows:
            assert r.vector_time < r.scalar_time
            assert r.tiled_time < r.scalar_time
            # vector and tiled are the same ballpark (within 2x).
            ratio = r.tiled_time / r.vector_time
            assert 0.5 < ratio < 2.0

    def test_reduction_layout_sweep(self):
        rows = ablations.run_reduction_layout(n=1024 * 1024)
        best = ablations.best_reduction_layout(rows)
        assert best.time == min(r.time for r in rows)
        # More elements per thread amortize barriers: at fixed wg=128 the
        # time is non-increasing in ept for this size.
        at_128 = sorted((r.ept, r.time) for r in rows if r.wg == 128)
        times = [t for _, t in at_128]
        assert times == sorted(times, reverse=True)

    def test_papers_layout_is_near_optimal(self):
        """The paper's 128 x 8 layout is within 15% of the sweep's best."""
        rows = ablations.run_reduction_layout()
        best = ablations.best_reduction_layout(rows)
        paper = [r for r in rows if r.wg == 128 and r.ept == 8][0]
        assert paper.time <= 1.15 * best.time

    def test_fusion_ablation(self):
        rows = ablations.run_fusion()
        for r in rows:
            assert 0.0 < r.traffic_saving < 1.0
            assert r.fused_time < r.unfused_time

    def test_reports_render(self):
        text = ablations.report_all()
        assert "Sobel" in text
        assert "reduction layout" in text
        assert "fusion" in text

    def test_cli_integration(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["ablations"]) == 0
        assert "Ablation" in capsys.readouterr().out
