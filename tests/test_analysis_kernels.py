"""Static kernel analyzer: real kernels stay clean, seeded bugs get caught."""

import pathlib

import numpy as np
import pytest

from repro.analysis.findings import Severity
from repro.analysis.kernels import analyze_kernel_file
from repro.errors import RaceConditionError
from repro.simgpu.device import W8000
from repro.simgpu.emulator import run_kernel
from repro.simgpu.memory import CheckedArray

pytestmark = pytest.mark.analysis

REPO = pathlib.Path(__file__).resolve().parents[1]
KERNELS = REPO / "src" / "repro" / "kernels"
FIXTURES = REPO / "tests" / "fixtures" / "analysis"


def findings_for(name: str):
    return analyze_kernel_file(FIXTURES / name)


def rules_by_scope(findings):
    out = {}
    for f in findings:
        out.setdefault(f.scope, set()).add(f.rule)
    return out


def test_real_kernel_set_has_no_errors():
    """The acceptance bar: every shipped kernel proves clean."""
    for path in sorted(KERNELS.glob("*.py")):
        errors = [f for f in analyze_kernel_file(path)
                  if f.severity >= Severity.ERROR]
        assert not errors, "\n".join(f.format() for f in errors)


def test_real_kernel_set_analyzes_every_module():
    names = {p.name for p in KERNELS.glob("*.py")}
    assert {"downscale.py", "sobel.py", "sharpness.py", "reduction.py",
            "upscale_center.py", "upscale_border.py"} <= names


def test_oob_fixture_flags_both_seeded_bugs():
    scopes = rules_by_scope(findings_for("bad_oob.py"))
    assert "KA-OOB" in scopes["oob_row"]
    assert "KA-OOB" in scopes["oob_negative"]


def test_oob_fixture_reports_direction_and_interval():
    messages = {f.scope: f.message for f in findings_for("bad_oob.py")
                if f.rule == "KA-OOB"}
    assert "may exceed the extent" in messages["oob_row"]
    assert "may be negative" in messages["oob_negative"]


def test_oob_suppression_comment_silences_the_finding():
    scopes = rules_by_scope(findings_for("bad_oob.py"))
    assert "oob_suppressed" not in scopes


def test_clean_control_kernel_produces_no_findings():
    scopes = rules_by_scope(findings_for("bad_oob.py"))
    assert "clean" not in scopes


def test_barrier_fixture_flags_all_three_divergence_shapes():
    findings = [f for f in findings_for("bad_barrier.py")
                if f.rule == "KA-BARRIER"]
    assert {f.scope for f in findings} == {
        "item_divergent", "early_return_before_barrier", "data_divergent",
    }
    assert all(f.severity is Severity.ERROR for f in findings)


def test_race_fixture_flags_uniform_write_statically():
    findings = [f for f in findings_for("bad_race.py")
                if f.rule == "KA-RACE"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.ERROR
    # The diagnostic cross-cites the dynamic detector.
    assert "racecheck" in findings[0].message


def test_race_fixture_also_races_dynamically():
    """The same seeded kernel trips the runtime RaceTracker: the static
    rule and the dynamic detector agree on this bug."""
    from tests.fixtures.analysis.bad_race import racy_accumulate

    src = CheckedArray(np.arange(8, dtype=np.float64), name="src")
    dst = CheckedArray(np.zeros(1, dtype=np.float64), name="dst")
    with pytest.raises(RaceConditionError):
        run_kernel(racy_accumulate, (8,), (8,), (src, dst, 8),
                   device=W8000, race_check=True)


def test_localmem_fixture_severity_split():
    findings = {f.scope: f for f in findings_for("bad_localmem.py")
                if f.rule == "KA-LOCALMEM"}
    assert findings["fixture_localmem_always_over"].severity \
        is Severity.ERROR
    assert findings["fixture_localmem_sometimes_over"].severity \
        is Severity.WARNING
    assert "65536" in findings["fixture_localmem_always_over"].message


def test_misc_fixture_flags_unused_and_uncoalesced():
    rules = {f.rule for f in findings_for("bad_misc.py")}
    assert "KA-UNUSED" in rules
    assert "KA-COALESCE" in rules
    unused = [f for f in findings_for("bad_misc.py")
              if f.rule == "KA-UNUSED"]
    assert "scratch" in unused[0].message


def test_fixture_errors_would_fail_the_gate():
    """Seeded-bug fixtures exit the driver non-zero (acceptance check)."""
    errors = [
        f
        for name in ("bad_oob.py", "bad_barrier.py", "bad_race.py",
                     "bad_localmem.py")
        for f in findings_for(name)
        if f.severity >= Severity.ERROR
    ]
    assert len(errors) >= 6
