"""Public API surface: the names README/docs promise exist and work."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.algo", "repro.algo.color", "repro.cl", "repro.core",
        "repro.core.dag", "repro.core.portability", "repro.core.stream",
        "repro.cpu", "repro.experiments", "repro.kernels", "repro.presets",
        "repro.simgpu", "repro.simgpu.racecheck", "repro.simgpu.schedule",
        "repro.util", "repro.util.io", "repro.util.metrics",
    ])
    def test_documented_modules_import(self, module):
        importlib.import_module(module)

    def test_subpackage_all_lists_resolve(self):
        for module in ("repro.core", "repro.simgpu", "repro.util",
                       "repro.kernels", "repro.experiments"):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                assert getattr(mod, name, None) is not None, \
                    f"{module}.{name}"

    def test_presets_shared_single_source(self):
        from repro.__main__ import PRESETS as cli_presets
        from repro.experiments.quality import PRESETS as quality_presets
        from repro.presets import PRESETS
        assert cli_presets is PRESETS
        assert dict(quality_presets) == PRESETS

    def test_ladder_flags_are_frozen(self):
        from repro import LADDER, OPTIMIZED
        with pytest.raises(Exception):
            OPTIMIZED.vectorize = False  # frozen dataclass
        assert LADDER[-1][1] == OPTIMIZED

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart runs verbatim (smaller image)."""
        import numpy as np
        from repro import (
            CPUPipeline,
            GPUPipeline,
            Image,
            OPTIMIZED,
            SharpnessParams,
        )

        # 128^2: above the size where the GPU's launch/transfer floors
        # stop dominating (at 64^2 the CPU legitimately wins).
        plane = np.random.default_rng(0).uniform(0, 255, (128, 128))
        image = Image.from_array(plane)
        params = SharpnessParams(gain=1.2, gamma=0.5, overshoot=0.25)
        cpu = CPUPipeline(params).run(image)
        gpu = GPUPipeline(OPTIMIZED, params).run(image)
        assert np.allclose(cpu.final, gpu.final)
        assert cpu.total_time / gpu.total_time > 1.0
        assert gpu.final_u8().dtype == np.uint8
