"""The OpenCL-flavoured host API: contexts, buffers, queues, programs."""

import numpy as np
import pytest

from repro.cl import Buffer, CommandQueue, Context, KernelSpec, Program
from repro.errors import (
    CLError,
    ConfigError,
    InvalidBufferError,
    InvalidKernelArgsError,
    MapError,
    QueueError,
)
from repro.simgpu.costmodel import KernelCost


def _noop_spec(name="noop"):
    def functional(global_size, local_size, *args):
        pass

    def cost(device, global_size, local_size, args):
        items = 1
        for g in global_size:
            items *= g
        return KernelCost(work_items=items, workgroup_size=64)

    return KernelSpec(name=name, functional=functional, cost=cost)


@pytest.fixture
def ctx():
    return Context()


@pytest.fixture
def queue(ctx):
    return CommandQueue(ctx)


class TestContext:
    def test_default_device_is_w8000(self, ctx):
        assert "W8000" in ctx.device.name

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            Context(mode="turbo")

    def test_reset_timeline(self, ctx, queue):
        queue.finish()
        assert ctx.timeline.total > 0
        ctx.reset_timeline()
        assert ctx.timeline.total == 0


class TestTransfers:
    def test_write_read_roundtrip(self, ctx, queue, rng):
        buf = ctx.create_buffer((8, 8))
        host = rng.uniform(0, 1, (8, 8))
        queue.enqueue_write_buffer(buf, host)
        out = queue.enqueue_read_buffer(buf)
        assert np.array_equal(out, host)
        assert len(ctx.timeline.of_kind("transfer")) == 2

    def test_transfer_time_uses_itemsize(self, ctx, queue):
        small = ctx.create_buffer((64, 64), transfer_itemsize=1)
        large = ctx.create_buffer((64, 64), transfer_itemsize=4)
        queue.enqueue_write_buffer(small, np.zeros((64, 64)))
        t1 = ctx.timeline.events[-1].duration
        queue.enqueue_write_buffer(large, np.zeros((64, 64)))
        t2 = ctx.timeline.events[-1].duration
        assert t2 > t1

    def test_partial_read(self, ctx, queue):
        buf = ctx.create_buffer((16,), transfer_itemsize=4)
        queue.enqueue_write_buffer(buf, np.arange(16.0))
        out = queue.enqueue_read_region_bytes(buf, 16)  # 4 elements
        assert np.array_equal(out, [0, 1, 2, 3])

    def test_partial_read_bounds(self, ctx, queue):
        buf = ctx.create_buffer((4,), transfer_itemsize=4)
        with pytest.raises(InvalidBufferError):
            queue.enqueue_read_region_bytes(buf, 17)

    def test_foreign_context_rejected(self, queue):
        other = Context()
        buf = other.create_buffer((4, 4))
        with pytest.raises(InvalidBufferError, match="foreign"):
            queue.enqueue_write_buffer(buf, np.zeros((4, 4)))


class TestMapUnmap:
    def test_map_write_commits_on_unmap(self, ctx, queue, rng):
        buf = ctx.create_buffer((4, 4))
        host = rng.uniform(0, 1, (4, 4))
        mapped = queue.enqueue_map_buffer(buf, write=True)
        mapped[...] = host
        # Not visible yet on the device:
        assert not np.array_equal(buf.data, host)
        queue.enqueue_unmap(buf, mapped)
        assert np.array_equal(buf.data, host)

    def test_map_read_returns_contents(self, ctx, queue, rng):
        buf = ctx.create_buffer((4, 4))
        host = rng.uniform(0, 1, (4, 4))
        queue.enqueue_write_buffer(buf, host)
        out = queue.enqueue_map_buffer(buf, write=False)
        queue.enqueue_unmap(buf)
        assert np.array_equal(out, host)

    def test_double_map_rejected(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))
        queue.enqueue_map_buffer(buf, write=True)
        with pytest.raises(MapError, match="already mapped"):
            queue.enqueue_map_buffer(buf, write=True)

    def test_unmap_without_map_rejected(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))
        with pytest.raises(MapError, match="without map"):
            queue.enqueue_unmap(buf)

    def test_kernel_on_mapped_buffer_rejected(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))
        queue.enqueue_map_buffer(buf, write=True)
        kernel = _noop_spec().create().set_args(buf)
        with pytest.raises(MapError, match="mapped"):
            queue.enqueue_nd_range(kernel, (4, 4), (4, 4))


class TestWriteBufferRect:
    def test_rect_lands_in_subregion(self, ctx, queue, rng):
        buf = ctx.create_buffer((6, 6))
        host = rng.uniform(1, 2, (4, 4))
        queue.enqueue_write_buffer_rect(buf, host, (1, 1))
        assert np.array_equal(buf.data[1:5, 1:5], host)
        assert np.all(buf.data[0] == 0)
        assert np.all(buf.data[:, 0] == 0)

    def test_rect_out_of_bounds_rejected(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))
        with pytest.raises(InvalidBufferError, match="exceeds"):
            queue.enqueue_write_buffer_rect(buf, np.zeros((4, 4)), (1, 1))

    def test_rect_requires_2d(self, ctx, queue):
        buf = ctx.create_buffer((16,))
        with pytest.raises(InvalidBufferError, match="2-D"):
            queue.enqueue_write_buffer_rect(buf, np.zeros(4), (0, 0))


class TestKernelLaunch:
    def test_enqueue_runs_functional(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))

        def functional(global_size, local_size, dst):
            dst[...] = 7.0

        def cost(device, global_size, local_size, args):
            return KernelCost(work_items=16, workgroup_size=16)

        spec = KernelSpec(name="fill", functional=functional, cost=cost)
        queue.enqueue_nd_range(spec.create().set_args(buf), (4, 4), (4, 4))
        assert np.all(buf.data == 7.0)
        assert len(ctx.timeline.of_kind("kernel")) == 1

    def test_unset_args_rejected(self, queue):
        kernel = _noop_spec().create()
        with pytest.raises(InvalidKernelArgsError, match="set_args"):
            queue.enqueue_nd_range(kernel, (4,), (4,))

    def test_arg_arity_checked(self):
        spec = KernelSpec(
            name="k", functional=lambda *a: None,
            cost=lambda *a: KernelCost(work_items=1),
            arg_names=("a", "b"),
        )
        with pytest.raises(InvalidKernelArgsError, match="expected 2"):
            spec.create().set_args(1)

    def test_stage_label_recorded(self, ctx, queue):
        queue.enqueue_nd_range(
            _noop_spec().create().set_args(), (64,), (64,), stage="sobel"
        )
        assert ctx.timeline.events[-1].stage == "sobel"


class TestQueueLifecycle:
    def test_finish_records_sync(self, ctx, queue):
        queue.finish()
        assert ctx.timeline.events[-1].kind == "sync"
        assert ctx.timeline.events[-1].duration == \
            ctx.device.sync_overhead_s

    def test_host_step(self, ctx, queue):
        queue.host_step("border_host", 1e-4, stage="border")
        e = ctx.timeline.events[-1]
        assert e.kind == "host" and e.duration == 1e-4

    def test_release_blocks_use(self, ctx, queue):
        queue.release()
        with pytest.raises(QueueError):
            queue.finish()
        with pytest.raises(QueueError):
            queue.enqueue_write_buffer(ctx.create_buffer((4, 4)),
                                       np.zeros((4, 4)))


class TestProgram:
    def test_create_kernel_by_name(self, ctx):
        prog = Program(ctx, [_noop_spec("a"), _noop_spec("b")])
        assert prog.kernel_names == ["a", "b"]
        assert prog.create_kernel("a").name == "a"

    def test_unknown_kernel_rejected(self, ctx):
        prog = Program(ctx, [_noop_spec("a")])
        with pytest.raises(CLError, match="no kernel"):
            prog.create_kernel("zzz")

    def test_mismatched_registration_rejected(self, ctx):
        with pytest.raises(CLError, match="registered under"):
            Program(ctx, {"wrong": _noop_spec("right")})


class TestBufferObject:
    def test_nbytes_and_shape(self, ctx):
        buf = ctx.create_buffer((8, 4), transfer_itemsize=1)
        assert buf.shape == (8, 4)
        assert buf.nbytes == 32

    def test_release_propagates(self, ctx, queue):
        buf = ctx.create_buffer((4, 4))
        buf.release()
        with pytest.raises(InvalidBufferError):
            queue.enqueue_read_buffer(buf)

    def test_data_property_checks_liveness(self, ctx):
        buf = ctx.create_buffer((4, 4))
        buf.release()
        with pytest.raises(InvalidBufferError):
            _ = buf.data

    def test_buffer_is_buffer_type(self, ctx):
        assert isinstance(ctx.create_buffer((4, 4)), Buffer)
