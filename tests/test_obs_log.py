"""Structured logger: levels, binding, formats, null sink."""

import io
import json

import pytest

from repro.errors import ValidationError
from repro.obs import Logger, NullLogger


def make_logger(**kw):
    stream = io.StringIO()
    kw.setdefault("clock", lambda: 1_700_000_000.0)
    return Logger(stream=stream, **kw), stream


class TestLevels:
    def test_below_threshold_dropped(self):
        log, stream = make_logger(level="info")
        log.debug("hidden")
        assert stream.getvalue() == ""

    def test_at_and_above_threshold_emitted(self):
        log, stream = make_logger(level="info")
        log.info("a")
        log.error("b")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "level=info" in lines[0]
        assert "level=error" in lines[1]

    def test_numeric_and_name_levels_agree(self):
        log, _ = make_logger(level=30)
        assert log.enabled_for("warning")
        assert not log.enabled_for("info")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValidationError):
            Logger(level="loud")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValidationError):
            Logger(fmt="xml")


class TestBinding:
    def test_bound_fields_on_every_record(self):
        log, stream = make_logger()
        child = log.bind(run="r1", pipeline="gpu")
        child.info("ev1")
        child.info("ev2")
        for line in stream.getvalue().splitlines():
            assert "run=r1" in line
            assert "pipeline=gpu" in line

    def test_bind_does_not_mutate_parent(self):
        log, stream = make_logger()
        log.bind(run="r1")
        log.info("ev")
        assert "run=" not in stream.getvalue()

    def test_call_fields_override_bound(self):
        log, stream = make_logger()
        log.bind(stage="a").info("ev", stage="b")
        assert "stage=b" in stream.getvalue()
        assert "stage=a" not in stream.getvalue()


class TestFormats:
    def test_logfmt_quotes_spaces_and_escapes(self):
        log, stream = make_logger()
        log.info("ev", msg='say "hi" now', path="a b")
        line = stream.getvalue()
        assert 'msg="say \\"hi\\" now"' in line
        assert 'path="a b"' in line

    def test_logfmt_newline_escaped(self):
        log, stream = make_logger()
        log.info("ev", msg="two\nlines")
        assert "\n" not in stream.getvalue().rstrip("\n")

    def test_json_records_parse(self):
        log, stream = make_logger(fmt="json")
        log.bind(run="r1").info("ev", n=3, f=1.5)
        record = json.loads(stream.getvalue())
        assert record["event"] == "ev"
        assert record["run"] == "r1"
        assert record["n"] == 3
        assert record["f"] == 1.5
        assert record["level"] == "info"

    def test_timestamp_iso8601(self):
        log, stream = make_logger()
        log.info("ev")
        assert "ts=2023-11-14T22:13:20Z" in stream.getvalue()

    def test_bool_rendered_lowercase(self):
        log, stream = make_logger()
        log.info("ev", ok=True)
        assert "ok=true" in stream.getvalue()


class TestNullLogger:
    def test_drops_everything(self, capsys):
        log = NullLogger()
        log.error("ev", x=1)
        log.bind(a=1).info("ev")
        assert capsys.readouterr().err == ""

    def test_enabled_for_nothing(self):
        assert not NullLogger().enabled_for("error")

    def test_bind_returns_self(self):
        log = NullLogger()
        assert log.bind(x=1) is log
