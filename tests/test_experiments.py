"""Experiment harness: every figure's *shape* must match the paper."""

import pytest

from repro.experiments import (
    fig12_speedup,
    fig13_fractions,
    fig14_stepwise,
    fig15_unroll,
    fig16_reduction,
    fig17_border,
    hardware,
    make_image,
)
from repro.experiments.__main__ import main as cli_main
from repro.errors import ValidationError

#: Reduced size grid so the suite stays fast; shapes hold at every scale.
SIZES = (256, 512, 1024)


class TestTable1:
    def test_simulator_matches_paper_table(self):
        assert hardware.matches_paper()

    def test_report_contains_all_specs(self):
        text = hardware.report()
        assert "1792" in text and "3230" in text
        assert "57.76" in text and "176" in text

    def test_rows_shape(self):
        rows = hardware.run()
        assert len(rows) == 4
        assert all(len(r) == 3 for r in rows)


@pytest.fixture(scope="module")
def fig12_rows():
    return fig12_speedup.run(SIZES, validate=True)


class TestFig12:
    def test_gpu_always_faster_than_cpu(self, fig12_rows):
        for r in fig12_rows:
            assert r.base_speedup > 1.0
            assert r.opt_speedup > 1.0

    def test_speedup_grows_with_size(self, fig12_rows):
        base = [r.base_speedup for r in fig12_rows]
        opt = [r.opt_speedup for r in fig12_rows]
        assert base == sorted(base)
        assert opt == sorted(opt)

    def test_smallest_size_near_paper_anchors(self, fig12_rows):
        """Paper: 9.8x (base) and 10.7x (optimized) at 256x256."""
        r = fig12_rows[0]
        assert r.base_speedup == pytest.approx(9.8, rel=0.25)
        assert r.opt_speedup == pytest.approx(10.7, rel=0.25)

    def test_optimized_wins_at_large_sizes(self, fig12_rows):
        assert fig12_rows[-1].opt_over_base > 1.5

    def test_report_renders(self, fig12_rows):
        text = fig12_speedup.report(fig12_rows)
        assert "Fig. 12" in text and "256x256" in text

    @pytest.mark.slow
    def test_paper_endpoint_at_4096(self):
        rows = fig12_speedup.run((4096,), validate=False)
        assert rows[0].opt_speedup == pytest.approx(69.3, rel=0.25)


class TestFig13:
    def test_cpu_bottlenecks(self):
        fracs = fig13_fractions.run("cpu", SIZES)
        for size, fr in fracs.items():
            assert set(fig13_fractions.dominant_stages(fr)) == \
                {"strength", "overshoot"}, size

    def test_base_gpu_bottlenecks_shift(self):
        """Fig. 13(b): the bottleneck moves away from the sharpness tail
        (overshoot + strength parallelize well on the GPU); reduction
        becomes the top stage."""
        cpu = fig13_fractions.run("cpu", (1024,))["1024x1024"]
        base = fig13_fractions.run("base", (1024,))["1024x1024"]
        cpu_tail = cpu["overshoot"] + cpu["strength"]
        assert base["sharpness"] < 0.5 * cpu_tail
        assert fig13_fractions.dominant_stages(base, top=1) == ["reduction"]

    def test_optimized_more_even_than_base(self):
        """Fig. 13(c): "more evenly distributed without prominent
        bottlenecks" — compared over the kernel stages (the transfer
        share of our PCI-E model is a recorded deviation, see
        EXPERIMENTS.md)."""
        kernel_stages = ("downscale", "center", "sobel", "reduction",
                         "sharpness")

        def kernel_evenness(fr):
            total = sum(fr.get(s, 0.0) for s in kernel_stages)
            return max(fr.get(s, 0.0) for s in kernel_stages) / total

        base = fig13_fractions.run("base", (4096,))["4096x4096"]
        opt = fig13_fractions.run("optimized", (4096,))["4096x4096"]
        assert kernel_evenness(opt) < kernel_evenness(base)

    def test_report_renders_all_three(self):
        text = fig13_fractions.report_all((256,))
        assert "13(a)" in text and "13(b)" in text and "13(c)" in text


class TestFig14:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig14_stepwise.run((256, 1024))

    def test_transfer_fusion_hurts_small_images(self, rows):
        """The paper's observation: the rw + fusion step reduces
        performance at small sizes (map/unmap is effective there)."""
        step1_256 = [r for r in rows
                     if r.size == 256 and r.step == "transfer+fusion"][0]
        assert step1_256.speedup_vs_base < 1.0

    def test_full_ladder_wins_everywhere(self, rows):
        finals = fig14_stepwise.final_speedups(rows)
        assert all(s >= 1.0 for s in finals.values())

    def test_gain_grows_with_size(self, rows):
        finals = fig14_stepwise.final_speedups(rows)
        assert finals[1024] > finals[256]

    def test_small_size_near_paper_low_anchor(self, rows):
        """Paper: 1.15x total gain at the small end."""
        finals = fig14_stepwise.final_speedups(rows)
        assert finals[256] == pytest.approx(1.15, rel=0.2)

    def test_reduction_and_vectorization_contribute_most(self):
        rows = fig14_stepwise.run((1024,))
        by_step = {r.step: r.time for r in rows}
        gain_red = by_step["transfer+fusion"] / by_step["+reduction"]
        gain_vec = by_step["+reduction"] / by_step["+vector+border"]
        gain_fusion = by_step["base"] / by_step["transfer+fusion"]
        assert gain_red > gain_fusion
        assert gain_vec > gain_fusion

    def test_report_renders(self, rows):
        assert "Fig. 14" in fig14_stepwise.report(rows)


class TestFig15:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig15_unroll.run((256, 1024, 4096))

    def test_unroll_one_always_wins(self, rows):
        for r in rows:
            assert r.unroll1_time <= r.unroll2_time, r.size

    def test_both_unrolls_beat_plain_tree(self, rows):
        for r in rows:
            assert r.unroll1_time < r.naive_time
            assert r.unroll2_time < r.naive_time

    def test_gap_is_modest(self, rows):
        """Fig. 15 shows a visible but small gap, not an order of
        magnitude."""
        for r in rows:
            assert r.unroll1_vs_unroll2 < 1.5

    def test_model_matches_pipeline_reduction_stage(self):
        """The standalone model prices exactly what the pipeline's
        timeline records for the reduction stage."""
        from repro.core import OPTIMIZED, GPUPipeline

        image = make_image(256)
        res = GPUPipeline(OPTIMIZED).run(image)
        model = fig15_unroll.reduction_gpu_time(256 * 256, unroll=1)
        assert res.times.times["reduction"] == pytest.approx(model,
                                                             rel=1e-9)

    def test_report_renders(self, rows):
        assert "Fig. 15" in fig15_unroll.report(rows)


class TestFig16:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig16_reduction.run((256, 1024, 4096))

    def test_gpu_wins_from_moderate_sizes(self, rows):
        for r in rows:
            assert r.speedup > 1.0, r.size

    def test_speedup_grows_with_size(self, rows):
        sp = [r.speedup for r in rows]
        assert sp == sorted(sp)

    def test_peak_near_paper_value(self, rows):
        """Paper: up to 30.8x."""
        assert rows[-1].speedup == pytest.approx(30.8, rel=0.3)

    def test_report_renders(self, rows):
        assert "Fig. 16" in fig16_reduction.report(rows)


class TestFig17:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig17_border.run()

    def test_winner_flips_exactly_at_768(self, rows):
        winners = {r.size: r.winner for r in rows}
        assert winners == {448: "cpu", 576: "cpu", 704: "cpu",
                           768: "gpu", 832: "gpu"}

    def test_report_names_crossover(self, rows):
        text = fig17_border.report(rows)
        assert "768x768" in text


class TestRunnerAndCli:
    def test_make_image_workloads(self):
        for name in ("natural", "text", "checker", "noise", "gradient",
                     "blobs", "steps"):
            img = make_image(64, name)
            assert img.shape == (64, 64)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError, match="workload"):
            make_image(64, "mandelbrot")

    def test_cli_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_fig16(self, capsys):
        assert cli_main(["fig16", "--sizes", "256", "512"]) == 0
        out = capsys.readouterr().out
        assert "512x512" in out

    def test_cli_fig12_small(self, capsys):
        assert cli_main(["fig12", "--sizes", "256", "--workload",
                         "checker"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])
