"""Every example script runs end to end (small arguments, tmp cwd)."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def _subprocess_env() -> dict[str, str]:
    """Environment with ``src`` on PYTHONPATH so ``import repro`` works
    in subprocesses regardless of how the test run itself found it."""
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return env


def _run(script: str, *args: str, cwd) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300, cwd=cwd,
        env=_subprocess_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = _run("quickstart.py", "128", cwd=tmp_path)
        assert "simulated speedup" in out
        assert "GPU stage breakdown" in out

    def test_tv_realtime(self, tmp_path):
        out = _run("tv_realtime.py", "2", cwd=tmp_path)
        assert "GPU optimized" in out
        assert "overlap" in out
        assert "fps" in out

    def test_optimization_ladder(self, tmp_path):
        out = _run("optimization_ladder.py", "256", cwd=tmp_path)
        assert "vs base" in out
        for step in ("base", "transfer+fusion", "+reduction",
                     "+vector+border", "+others"):
            assert step in out

    def test_tuning_gallery(self, tmp_path):
        out = _run("tuning_gallery.py", str(tmp_path / "gallery"),
                   cwd=tmp_path)
        assert "ringing-free" in out
        pgms = list((tmp_path / "gallery").glob("*.pgm"))
        assert len(pgms) == 6  # original + 5 presets

    def test_device_whatif(self, tmp_path):
        out = _run("device_whatif.py", cwd=tmp_path)
        assert "crossover" in out
        assert "wavefront" in out
        assert "PCI-E share" in out

    def test_trace_viewer(self, tmp_path):
        out = _run("trace_viewer.py", str(tmp_path / "traces"),
                   cwd=tmp_path)
        assert "Pipelined" in out
        traces = list((tmp_path / "traces").glob("*.trace.json"))
        assert len(traces) == 2


@pytest.mark.parametrize("module,args", [
    ("repro", ["demo", "{tmp}/x.pgm", "--size", "64"]),
    ("repro.experiments", ["table1"]),
])
def test_module_entrypoints(module, args, tmp_path):
    args = [a.format(tmp=tmp_path) for a in args]
    result = subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, timeout=120, cwd=tmp_path,
        env=_subprocess_env(),
    )
    assert result.returncode == 0, result.stderr
