"""Durable-job lifecycle: drain/abort, resume bit-identity, watchdog,
health — all in-process (the subprocess SIGKILL story lives in
``test_lifecycle_kill_resume.py``)."""

import json
import threading
import time

import pytest

from repro.errors import ConfigError, UsageError, ValidationError
from repro.lifecycle import (
    BatchJob,
    EXIT_ABORTED,
    EXIT_DRAINED,
    EXIT_OK,
    EXIT_RUNTIME,
    FrameWatch,
    JobJournal,
    LifecycleConfig,
    Manifest,
    ShutdownCoordinator,
    Watchdog,
)
from repro.obs import RunContext
from repro.resilience import FaultPlan
from repro.util import images as synth
from repro.util.io import write_pgm

FAST = LifecycleConfig(fsync=False)  # tmpfs tests don't need real fsync


@pytest.fixture
def frames_dir(tmp_path):
    src = tmp_path / "frames"
    src.mkdir()
    for i in range(6):
        write_pgm(src / f"f{i:02d}.pgm", synth.text_like(32, 32, seed=i))
    return src


def make_job(tmp_path, frames_dir, *, name="job", out="out", obs=None,
             lifecycle=FAST, workers=2):
    return BatchJob(
        inputs=sorted(frames_dir.glob("*.pgm")),
        output_dir=tmp_path / out,
        job_dir=tmp_path / name,
        workers=workers,
        obs=obs or RunContext.disabled(),
        lifecycle=lifecycle,
    )


def read_outputs(out_dir):
    return {p.name: p.read_bytes() for p in sorted(out_dir.glob("*.pgm"))}


class TestHappyPath:
    def test_run_completes_and_journals(self, tmp_path, frames_dir):
        job = make_job(tmp_path, frames_dir)
        outcome = job.run()
        assert outcome.state == "completed"
        assert outcome.exit_code == EXIT_OK
        assert outcome.executed == 6
        assert len(read_outputs(tmp_path / "out")) == 6
        state = JobJournal.replay(tmp_path / "job")
        assert set(state.completed) == {f"f{i:02d}.pgm" for i in range(6)}
        assert Manifest.load(tmp_path / "job").state == "completed"

    def test_frame_ids_are_input_names(self, tmp_path, frames_dir):
        job = make_job(tmp_path, frames_dir)
        assert job.frame_ids == [f"f{i:02d}.pgm" for i in range(6)]
        job.run()
        for fid, record in JobJournal.replay(job.job_dir).completed.items():
            assert record["output"] == fid
            assert record["backend"] == "gpu"

    def test_duplicate_input_names_rejected(self, tmp_path, frames_dir):
        other = tmp_path / "other"
        other.mkdir()
        write_pgm(other / "f00.pgm", synth.text_like(32, 32, seed=9))
        with pytest.raises(ValidationError, match="unique"):
            BatchJob(inputs=[frames_dir / "f00.pgm", other / "f00.pgm"],
                     output_dir=tmp_path / "out", job_dir=tmp_path / "job")

    def test_resume_of_finished_job_is_noop(self, tmp_path, frames_dir):
        make_job(tmp_path, frames_dir).run()
        before = read_outputs(tmp_path / "out")
        outcome = BatchJob.resume(tmp_path / "job", lifecycle=FAST).run()
        assert outcome.executed == 0
        assert outcome.exit_code == EXIT_OK
        assert read_outputs(tmp_path / "out") == before

    def test_fresh_job_refuses_used_dir(self, tmp_path, frames_dir):
        make_job(tmp_path, frames_dir).run()
        with pytest.raises(UsageError, match="already holds a journal"):
            make_job(tmp_path, frames_dir).run()

    def test_deleted_output_demotes_frame_to_pending(self, tmp_path,
                                                     frames_dir):
        make_job(tmp_path, frames_dir).run()
        (tmp_path / "out" / "f03.pgm").unlink()
        outcome = BatchJob.resume(tmp_path / "job", lifecycle=FAST).run()
        assert outcome.executed == 1
        assert (tmp_path / "out" / "f03.pgm").exists()

    def test_health_snapshot_written(self, tmp_path, frames_dir):
        job = make_job(tmp_path, frames_dir)
        job.run()
        health = json.loads((tmp_path / "job" / "health.json").read_text())
        assert health["state"] == "completed"
        assert health["completed"] == 6
        assert health["pending"] == 0
        assert health["inflight"] == 0
        assert health["ready"] is False  # finished jobs admit nothing
        assert health["live"] is True


def slow_obs(spec="hang:rate=1.0,seconds=0.15;seed=1"):
    """An obs context whose fault plan stalls every frame (cancellable),
    slowing the batch enough to interrupt it deterministically."""
    return RunContext.create(log_level="error",
                             faults=FaultPlan.parse(spec))


def drain_when(job, ready, reason="test"):
    """Background thread: request drain once ``ready(job)`` turns true."""
    def watch():
        for _ in range(2000):
            if job.shutdown is not None and ready(job):
                job.shutdown.request_drain(reason)
                return
            time.sleep(0.005)
    thread = threading.Thread(target=watch, daemon=True)
    thread.start()
    return thread


class TestDrainResume:
    def test_drain_leaves_resumable_checkpoint(self, tmp_path, frames_dir):
        # Reference: an uninterrupted run in a separate directory.
        ref = make_job(tmp_path, frames_dir, name="ref-job", out="ref-out")
        ref.run()
        reference = read_outputs(tmp_path / "ref-out")

        job = make_job(tmp_path, frames_dir, obs=slow_obs(), workers=1)
        drain_when(job, lambda j: len(j._completed_ids) >= 2)
        outcome = job.run()
        assert outcome.state == "drained"
        assert outcome.exit_code == EXIT_DRAINED
        assert 0 < outcome.executed < 6
        assert outcome.pending
        assert Manifest.load(job.job_dir).state == "drained"
        run1 = outcome.executed

        resumed = BatchJob.resume(job.job_dir, lifecycle=FAST)
        outcome2 = resumed.run()
        assert outcome2.state == "completed"
        assert outcome2.exit_code == EXIT_OK
        # no frame ran twice...
        assert run1 + outcome2.executed == 6
        # ...and the stitched outputs are bit-identical to the clean run
        assert read_outputs(tmp_path / "out") == reference

    def test_abort_exits_4_with_valid_checkpoint(self, tmp_path,
                                                 frames_dir):
        job = make_job(tmp_path, frames_dir, obs=slow_obs(), workers=1)

        def abort_soon():
            for _ in range(2000):
                if job.shutdown is not None and job._completed_ids:
                    job.shutdown.request_abort("test")
                    return
                time.sleep(0.005)
        threading.Thread(target=abort_soon, daemon=True).start()
        outcome = job.run()
        assert outcome.state == "aborted"
        assert outcome.exit_code == EXIT_ABORTED
        # the checkpoint is valid and resume completes the job
        outcome2 = BatchJob.resume(job.job_dir, lifecycle=FAST).run()
        assert outcome2.state == "completed"
        assert len(read_outputs(tmp_path / "out")) == 6


class TestWatchdogIntegration:
    def test_hung_frame_is_cancelled_and_dead_lettered(self, tmp_path,
                                                       frames_dir):
        # One frame stalls "forever"; the watchdog cancels it.
        obs = slow_obs("hang:rate=1.0,max=1,seconds=60;seed=1")
        job = make_job(
            tmp_path, frames_dir, obs=obs,
            lifecycle=LifecycleConfig(fsync=False, hang_timeout=0.2,
                                      watchdog_interval=0.02),
        )
        outcome = job.run()
        assert outcome.state == "completed"  # no pending frames
        assert outcome.exit_code == EXIT_RUNTIME  # but one dead letter
        assert len(outcome.failed) == 1
        assert len(outcome.completed) == 5
        state = JobJournal.replay(job.job_dir)
        [(fid, record)] = state.failed.items()
        assert record["error_type"] == "FrameHangError"
        # the hang landed in the metrics
        assert job.watch.hangs_total == 1

        # --replay-failures re-runs exactly the dead letter (no faults now)
        replay = BatchJob.resume(job.job_dir, lifecycle=FAST)
        outcome2 = replay.run(replay_failures=True)
        assert outcome2.executed == 1
        assert outcome2.exit_code == EXIT_OK
        assert not outcome2.failed
        assert len(read_outputs(tmp_path / "out")) == 6

    def test_replay_failures_with_clean_job_is_noop(self, tmp_path,
                                                    frames_dir):
        make_job(tmp_path, frames_dir).run()
        outcome = BatchJob.resume(tmp_path / "job", lifecycle=FAST).run(
            replay_failures=True)
        assert outcome.executed == 0
        assert outcome.exit_code == EXIT_OK


class TestShutdownCoordinator:
    def test_two_stage_contract(self):
        clock = [0.0]
        coord = ShutdownCoordinator(drain_timeout=5.0,
                                    clock=lambda: clock[0])
        assert not coord.draining and not coord.aborted
        coord.request_drain("first")
        assert coord.draining and not coord.aborted
        assert not coord.abandon()
        clock[0] = 5.1  # deadline blown -> abandon without abort
        assert coord.abandon() and not coord.aborted
        coord.request_abort("second")
        assert coord.aborted

    def test_signal_handler_escalates(self):
        import signal as _signal
        coord = ShutdownCoordinator(drain_timeout=5.0)
        coord._handle(_signal.SIGTERM, None)
        assert coord.draining and not coord.aborted
        coord._handle(_signal.SIGTERM, None)
        assert coord.aborted
        assert "SIGTERM" in coord.drain_reason

    def test_callbacks_fire_once(self):
        drains, aborts = [], []
        coord = ShutdownCoordinator(drain_timeout=5.0,
                                    on_drain=drains.append,
                                    on_abort=aborts.append)
        coord.request_drain("a")
        coord.request_drain("b")
        coord.request_abort("c")
        coord.request_abort("d")
        assert drains == ["a"] and aborts == ["c"]

    @pytest.mark.parametrize("aborted,draining,pending,failed,expected", [
        (False, False, 0, 0, EXIT_OK),
        (False, False, 0, 3, EXIT_RUNTIME),
        (False, True, 2, 0, EXIT_DRAINED),
        (False, True, 0, 0, EXIT_OK),      # drain finished everything
        (False, False, 2, 0, EXIT_RUNTIME),  # pending without drain: bug
        (True, True, 2, 1, EXIT_ABORTED),
    ])
    def test_exit_code_contract(self, aborted, draining, pending, failed,
                                expected):
        coord = ShutdownCoordinator(drain_timeout=5.0)
        if draining:
            coord.request_drain("t")
        if aborted:
            coord.request_abort("t")
        assert coord.exit_code(pending=pending, failed=failed) == expected

    def test_rejects_bad_drain_timeout(self):
        with pytest.raises(ConfigError):
            ShutdownCoordinator(drain_timeout=0)


class TestWatchdogUnit:
    def make(self, *, hang_timeout=1.0, capacity=2):
        clock = [0.0]
        watch = FrameWatch(clock=lambda: clock[0])
        sheds = []
        dog = Watchdog(watch, hang_timeout=hang_timeout, capacity=capacity,
                       on_shed=lambda: sheds.append(True))
        return clock, watch, dog, sheds

    def test_marks_overdue_frames_and_sets_cancel(self):
        clock, watch, dog, _ = self.make()
        token = watch.begin(0, "a.pgm")
        clock[0] = 0.5
        dog.tick()
        assert not token.is_set() and not watch.is_hung(0)
        clock[0] = 1.5
        dog.tick()
        assert token.is_set() and watch.is_hung(0)
        assert watch.hangs_total == 1
        dog.tick()  # idempotent: no double count
        assert watch.hangs_total == 1

    def test_finished_frames_are_never_marked(self):
        clock, watch, dog, _ = self.make()
        watch.begin(0, "a.pgm")
        watch.end(0)
        clock[0] = 10.0
        dog.tick()
        assert watch.hangs_total == 0

    def test_load_shedding_trips_when_all_workers_hung(self):
        clock, watch, dog, sheds = self.make(capacity=2)
        watch.begin(0, "a.pgm")
        watch.begin(1, "b.pgm")
        clock[0] = 2.0
        dog.tick()
        # both marked hung, but still inside the shed grace period
        assert watch.hangs_total == 2 and not dog.shedding
        clock[0] = 2.0 + dog.shed_grace
        dog.tick()
        assert dog.shedding and sheds == [True]
        dog.tick()  # latched: fires once
        assert sheds == [True]

    def test_no_shedding_below_capacity(self):
        clock, watch, dog, sheds = self.make(capacity=2)
        watch.begin(0, "a.pgm")
        clock[0] = 2.0
        dog.tick()
        clock[0] = 2.0 + dog.shed_grace
        dog.tick()
        assert watch.is_hung(0) and not dog.shedding

    def test_zombie_that_finishes_uncounts(self):
        clock, watch, dog, sheds = self.make(capacity=1)
        watch.begin(0, "a.pgm")
        clock[0] = 2.0
        dog.tick()
        watch.end(0)  # the cancel worked: the worker returned
        clock[0] = 2.0 + dog.shed_grace
        dog.tick()
        assert not dog.shedding

    def test_disabled_hang_detection_still_ticks(self):
        ticks = []
        watch = FrameWatch()
        dog = Watchdog(watch, hang_timeout=None,
                       on_tick=lambda: ticks.append(1))
        watch.begin(0, "a.pgm")
        dog.tick()
        assert ticks == [1] and watch.hangs_total == 0

    def test_rejects_bad_hang_timeout(self):
        with pytest.raises(ConfigError):
            Watchdog(FrameWatch(), hang_timeout=-1)

    def test_cancel_all_sets_every_token(self):
        watch = FrameWatch()
        tokens = [watch.begin(i, f"{i}.pgm") for i in range(3)]
        assert watch.cancel_all() == 3
        assert all(t.is_set() for t in tokens)
