"""Fixture: seeded write-write race for the static analyzer.

``tests/test_analysis_kernels.py`` cross-checks this module both ways:
the static ``KA-RACE`` rule flags it without running anything, and the
dynamic :class:`repro.simgpu.racecheck.RaceTracker` raises
``RaceConditionError`` when the same kernel is actually launched.
"""

ANALYSIS_CONTRACTS = {
    "buffers": {
        "src": ("n",),
        "dst": ("1",),
    },
    "assume": {"n": {"min": 2}},
}


def racy_accumulate(ctx, src, dst, n):
    """Every item writes ``dst[0]`` — the canonical unsynchronized
    accumulation bug the tree reduction exists to avoid."""
    gx = ctx.get_global_id(0)
    if gx >= n:
        return
    dst[0] = dst[0] + src[gx]
