"""Fixture: seeded local-memory overflow for the static analyzer.

The specs are never launched; the analyzer evaluates the ``local_mem``
lambdas over every legal workgroup shape of the target device.
"""

from repro.cl.kernel import KernelSpec


def _emulator(ctx, src, dst, n, big):
    gx = ctx.get_global_id(0)
    if gx < n:
        dst[gx] = src[gx]


def _cost(device, global_size, local_size, args):
    raise NotImplementedError("fixture spec is never launched")


#: 32768 elements * 4 bytes = 128 KiB on every shape: exceeds the device
#: limit no matter how the kernel is launched (KA-LOCALMEM error).
ALWAYS_OVER = KernelSpec(
    name="fixture_localmem_always_over",
    functional=_emulator,
    cost=_cost,
    emulator=_emulator,
    local_mem=lambda local_size, args: {"big": 32768},
    arg_names=("src", "dst", "n"),
)

#: Scales with the workgroup: fine at small shapes, over the limit at the
#: largest legal one (KA-LOCALMEM warning).
SOMETIMES_OVER = KernelSpec(
    name="fixture_localmem_sometimes_over",
    functional=_emulator,
    cost=_cost,
    emulator=_emulator,
    local_mem=lambda local_size, args: {"tile": local_size[0] * 128},
    arg_names=("src", "dst", "n"),
)
