"""Fixture: unused buffer argument and uncoalesced access pattern."""

ANALYSIS_CONTRACTS = {
    "buffers": {
        "src": ("h", "w"),
        "dst": ("h", "w"),
        "scratch": ("h", "w"),
    },
}


def strided(ctx, src, dst, scratch, h, w):
    """``scratch`` is never touched; the live accesses stride by 2."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w // 2 or gy >= h:
        return
    dst[gy, 2 * gx] = src[gy, 2 * gx]
