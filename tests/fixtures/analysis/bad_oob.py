"""Fixture: seeded out-of-bounds reads for the static kernel analyzer.

Not a real kernel module — analyzed by ``tests/test_analysis_kernels.py``
to prove the analyzer catches what it claims to catch.
"""

ANALYSIS_CONTRACTS = {
    "buffers": {
        "src": ("h", "w"),
        "dst": ("h", "w"),
    },
}


def oob_row(ctx, src, dst, h, w):
    """Reads row ``h`` when ``gy == h - 1`` (the +1 has no guard)."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w or gy >= h:
        return
    dst[gy, gx] = src[gy + 1, gx]


def oob_negative(ctx, src, dst, h, w):
    """Reads column ``-1`` when ``gx == 0``."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w or gy >= h:
        return
    dst[gy, gx] = src[gy, gx - 1]


def oob_suppressed(ctx, src, dst, h, w):  # repro: ignore[KA-OOB]
    """Same bug as oob_row, silenced by an inline suppression."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w or gy >= h:
        return
    dst[gy, gx] = src[gy + 1, gx]


def clean(ctx, src, dst, h, w):
    """Control: fully guarded unit-stride copy; must produce no errors."""
    gx = ctx.get_global_id(0)
    gy = ctx.get_global_id(1)
    if gx >= w or gy >= h:
        return
    dst[gy, gx] = src[gy, gx]
