"""Fixture: wall-clock reads in a (fake) plan-replayed path (PL-TIME)."""

import random
import time


def stamp():
    return time.time()


def jitter():
    return random.random()
