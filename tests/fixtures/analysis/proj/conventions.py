"""Fixture: one violation of each project-linter convention."""


def bad_metric(obs):
    obs.metrics.counter("frames_total", "missing the repro_ prefix").inc()


def bad_raise(x):
    if x < 0:
        raise ValueError("should be a repro.errors type")


def bad_bare_except(fn):
    try:
        return fn()
    except:
        return None


def broad_except(fn):
    try:
        return fn()
    except Exception:
        return None


def suppressed_broad_except(fn):  # repro: ignore[PL-BROAD-EXCEPT]
    try:
        return fn()
    except Exception:
        return None


def non_atomic_write(path, text):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
