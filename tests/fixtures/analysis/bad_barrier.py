"""Fixture: seeded barrier-divergence bugs for the static analyzer."""

from repro.simgpu.emulator import BARRIER

ANALYSIS_CONTRACTS = {
    "buffers": {
        "src": ("n",),
        "dst": ("n",),
    },
    "assume": {"n": {"min": 1}},
}


def item_divergent(ctx, src, dst, n):
    """Only items with ``gx < 7`` reach the barrier: guaranteed hang."""
    gx = ctx.get_global_id(0)
    if gx < 7:
        yield BARRIER
    if gx < n:
        dst[gx] = src[0]


def early_return_before_barrier(ctx, src, dst, n):
    """Tail items return before the barrier the rest will wait at."""
    gx = ctx.get_global_id(0)
    if gx >= n:
        return
    v = src[gx]
    yield BARRIER
    dst[gx] = v


def data_divergent(ctx, src, dst, n):
    """Barrier under a data-dependent branch: items disagree per input."""
    gx = ctx.get_global_id(0)
    v = src[0]
    if v > 0.5:
        yield BARRIER
    if gx < n:
        dst[gx] = v
