"""Emulator race detection: the epoch model and the production kernels."""

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.errors import RaceConditionError
from repro.kernels import (
    make_downscale_spec,
    make_reduction_spec,
    make_sharpness_fused_spec,
    make_sobel_spec,
    make_upscale_border_spec,
    make_upscale_center_spec,
)
from repro.kernels.base import round_up
from repro.kernels.reduction import reduction_layout
from repro.kernels.upscale_border import BORDER_GLOBAL, BORDER_LOCAL
from repro.simgpu.device import W8000
from repro.simgpu.emulator import BARRIER, WF_SYNC, run_kernel
from repro.simgpu.memory import GlobalBuffer
from repro.types import SharpnessParams

from .kernel_helpers import make_padded

H = W = 32


def _grid(nx, ny, tile=16):
    return (round_up(nx, tile), round_up(ny, tile)), (tile, tile)


class TestDetection:
    def test_write_write_race(self):
        buf = GlobalBuffer((4,))

        def kernel(ctx, dst):
            dst[0] = float(ctx.get_local_id(0))

        with pytest.raises(RaceConditionError, match="both write"):
            run_kernel(kernel, (4,), (4,), (buf.checked(),),
                       device=W8000, race_check=True)

    def test_read_after_unsynced_write(self):
        def kernel(ctx, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid)
            # Missing barrier: reading the (already-written) neighbour's
            # slot races.
            _ = scratch[(lid - 1) % 4]
            yield BARRIER

        with pytest.raises(RaceConditionError, match="reads a value"):
            run_kernel(kernel, (4,), (4,), (), device=W8000,
                       local_mem={"scratch": 4}, race_check=True)

    def test_write_after_unsynced_read(self):
        def kernel(ctx, scratch):
            lid = ctx.get_local_id(0)
            _ = scratch[0]
            if lid == 2:
                scratch[0] = 1.0  # someone else read it this epoch
            yield BARRIER

        with pytest.raises(RaceConditionError, match="read in the same"):
            run_kernel(kernel, (4,), (4,), (), device=W8000,
                       local_mem={"scratch": 4}, race_check=True)

    def test_barrier_clears_conflict(self):
        out = GlobalBuffer((4,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid)
            yield BARRIER
            dst[lid] = scratch[(lid + 1) % 4]

        run_kernel(kernel, (4,), (4,), (out.checked(),), device=W8000,
                   local_mem={"scratch": 4}, race_check=True)
        assert np.array_equal(out.data, [1, 2, 3, 0])

    def test_wf_sync_clears_conflict(self):
        dev = W8000.with_(wavefront_size=4, max_workgroup_size=4)
        out = GlobalBuffer((4,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid)
            yield WF_SYNC
            dst[lid] = scratch[(lid + 1) % 4]

        run_kernel(kernel, (4,), (4,), (out.checked(),), device=dev,
                   local_mem={"scratch": 4}, race_check=True)

    def test_same_item_rmw_is_fine(self):
        buf = GlobalBuffer((8,))

        def kernel(ctx, dst):
            g = ctx.get_global_id(0)
            dst[g] = 1.0
            dst[g] = dst[g] + 1.0

        run_kernel(kernel, (8,), (4,), (buf.checked(),), device=W8000,
                   race_check=True)
        assert np.all(buf.data == 2.0)

    def test_groups_tracked_independently(self):
        """Each group writes the same *local* slot — no cross-group race."""
        def kernel(ctx, scratch):
            if ctx.get_local_id(0) == 0:
                scratch[0] = float(ctx.get_group_id(0))
            yield BARRIER

        run_kernel(kernel, (8,), (4,), (), device=W8000,
                   local_mem={"scratch": 4}, race_check=True)

    def test_off_by_default(self):
        buf = GlobalBuffer((4,))

        def kernel(ctx, dst):
            dst[0] = float(ctx.get_local_id(0))

        run_kernel(kernel, (4,), (4,), (buf.checked(),), device=W8000)


class TestProductionKernelsAreRaceFree:
    """Every pipeline kernel passes the detector on a small image."""

    @pytest.fixture(scope="class")
    def data(self):
        from repro.util import images
        plane = images.natural_like(H, W, seed=23)
        down = algo.downscale(plane)
        up = algo.upscale(down)
        edge = algo.sobel(plane)
        return {
            "plane": plane, "padded": make_padded(plane), "down": down,
            "up": up, "edge": edge, "mean": algo.reduce_mean(edge),
        }

    def _run(self, spec, gsz, lsz, args):
        run_kernel(
            spec.emulator, gsz, lsz, args, device=W8000,
            local_mem=spec.local_mem(lsz, args) if spec.local_mem else {},
            race_check=True,
        )

    def test_downscale(self, data):
        src = GlobalBuffer((H + 2, W + 2))
        src.data[...] = data["padded"]
        dst = GlobalBuffer((H // 4, W // 4))
        gsz, lsz = _grid(W // 4, H // 4)
        spec = make_downscale_spec(padded=True)
        self._run(spec, gsz, lsz, (src.checked(), dst.checked(), H, W))

    def test_upscale_center_vector(self, data):
        down = GlobalBuffer(data["down"].shape)
        down.data[...] = data["down"]
        up = GlobalBuffer((H, W))
        gsz, lsz = _grid((W - 4) // 4, (H - 4) // 4)
        spec = make_upscale_center_spec(vector=True)
        self._run(spec, gsz, lsz, (down.checked(), up.checked(), H, W))

    def test_upscale_border(self, data):
        """The ownership split (column items own the border columns) is
        exactly what makes this kernel race-free; the canonical CPU
        assembly order would be a write-write race if parallelized
        naively."""
        down = GlobalBuffer(data["down"].shape)
        down.data[...] = data["down"]
        up = GlobalBuffer((H, W))
        spec = make_upscale_border_spec()
        self._run(spec, BORDER_GLOBAL, BORDER_LOCAL,
                  (down.checked(), up.checked(), H, W))

    def test_sobel_tiled(self, data):
        src = GlobalBuffer((H + 2, W + 2))
        src.data[...] = data["padded"]
        dst = GlobalBuffer((H, W))
        gsz, lsz = _grid(W, H)
        spec = make_sobel_spec(padded=True, tiled=True)
        self._run(spec, gsz, lsz, (src.checked(), dst.checked(), H, W))

    def test_sobel_vector(self, data):
        src = GlobalBuffer((H + 2, W + 2))
        src.data[...] = data["padded"]
        dst = GlobalBuffer((H, W))
        gsz, lsz = _grid(W // 4, H)
        spec = make_sobel_spec(padded=True, vector=True)
        self._run(spec, gsz, lsz, (src.checked(), dst.checked(), H, W))

    def test_sharpness_fused_vector(self, data):
        up = GlobalBuffer((H, W))
        up.data[...] = data["up"]
        edge = GlobalBuffer((H, W))
        edge.data[...] = data["edge"]
        src = GlobalBuffer((H + 2, W + 2))
        src.data[...] = data["padded"]
        dst = GlobalBuffer((H, W))
        gsz, lsz = _grid(W // 4, H)
        spec = make_sharpness_fused_spec(padded=True, vector=True)
        self._run(spec, gsz, lsz,
                  (up.checked(), edge.checked(), src.checked(),
                   dst.checked(), data["mean"], SharpnessParams(), H, W))

    @pytest.mark.parametrize("unroll", [0, 1, 2])
    def test_reductions(self, rng, unroll):
        values = rng.uniform(0, 255, 2048)
        n_groups, gsz, lsz = reduction_layout(values.size)
        src = GlobalBuffer(values.shape, transfer_itemsize=4)
        src.data[...] = values
        partial = GlobalBuffer((n_groups,), transfer_itemsize=4)
        spec = make_reduction_spec(unroll=unroll)
        self._run(spec, gsz, lsz,
                  (src.checked(), partial.checked(), values.size))
        assert partial.data.sum() == pytest.approx(values.sum(), rel=1e-12)
