"""Write-ahead journal + checkpoint manifest: durability semantics.

The property tests pin the contract resume depends on: replay is
idempotent under duplicated records and tolerant of any torn trailing
bytes a crash can leave behind.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UsageError, ValidationError
from repro.lifecycle import (
    JOURNAL_NAME,
    JobJournal,
    Manifest,
    STATUS_COMPLETED,
    STATUS_FAILED,
)


class TestJournalBasics:
    def test_append_replay_roundtrip(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_run("start", run=1, state="running")
            journal.record_frame(frame_id="a.pgm", index=0,
                                 status=STATUS_COMPLETED, run=1,
                                 backend="gpu", attempts=1,
                                 edge_mean=12.5, output="a.pgm")
            journal.record_frame(frame_id="b.pgm", index=1,
                                 status=STATUS_FAILED, run=1,
                                 error="boom", error_type="DeviceFault")
            journal.record_run("end", run=1, state="drained")
        state = JobJournal.replay(tmp_path)
        assert state.runs == 1
        assert state.torn == 0
        assert set(state.completed) == {"a.pgm"}
        assert set(state.failed) == {"b.pgm"}
        assert state.completed["a.pgm"]["edge_mean"] == 12.5
        assert state.failed["b.pgm"]["error_type"] == "DeviceFault"

    def test_replay_of_missing_journal_is_empty(self, tmp_path):
        state = JobJournal.replay(tmp_path / "nowhere")
        assert state.records == 0 and not state.completed

    def test_completion_is_sticky(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_frame(frame_id="x", index=0,
                                 status=STATUS_COMPLETED, run=1)
            journal.record_frame(frame_id="x", index=0,
                                 status=STATUS_FAILED, run=2, error="late")
        state = JobJournal.replay(tmp_path)
        assert state.status("x") == STATUS_COMPLETED
        assert "x" not in state.failed
        assert state.duplicates == 1

    def test_latest_failure_wins_until_success(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_frame(frame_id="x", index=0,
                                 status=STATUS_FAILED, run=1, error="first")
            journal.record_frame(frame_id="x", index=0,
                                 status=STATUS_FAILED, run=2, error="second")
        state = JobJournal.replay(tmp_path)
        assert state.failed["x"]["error"] == "second"
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_frame(frame_id="x", index=0,
                                 status=STATUS_COMPLETED, run=3)
        state = JobJournal.replay(tmp_path)
        assert state.status("x") == STATUS_COMPLETED

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_frame(frame_id="ok", index=0,
                                 status=STATUS_COMPLETED, run=1)
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"frame","frame_id":"torn","sta')  # no newline
        state = JobJournal.replay(tmp_path)
        assert set(state.completed) == {"ok"}
        assert state.torn == 1

    def test_pending_and_failed_of_preserve_order(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            journal.record_frame(frame_id="b", index=1,
                                 status=STATUS_COMPLETED, run=1)
            journal.record_frame(frame_id="c", index=2,
                                 status=STATUS_FAILED, run=1, error="x")
        state = JobJournal.replay(tmp_path)
        assert state.pending_of(["a", "b", "c"]) == ["a", "c"]
        assert state.failed_of(["a", "b", "c"]) == ["c"]

    def test_bad_status_rejected(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        with pytest.raises(ValidationError):
            journal.record_frame(frame_id="x", index=0,
                                 status="maybe", run=1)


class TestManifest:
    def make(self):
        return Manifest.create(
            frame_ids=["a.pgm", "b.pgm"], inputs=["in/a.pgm", "in/b.pgm"],
            output_dir="out", config={"workers": 2},
        )

    def test_write_load_roundtrip(self, tmp_path):
        manifest = self.make()
        manifest.write(tmp_path)
        loaded = Manifest.load(tmp_path)
        assert loaded.job_id == manifest.job_id
        assert loaded.frame_ids == ["a.pgm", "b.pgm"]
        assert loaded.config == {"workers": 2}
        assert loaded.state == "starting"

    def test_rotation_keeps_previous(self, tmp_path):
        manifest = self.make()
        manifest.write(tmp_path)
        manifest.transition("running", tmp_path)
        prev = json.loads((tmp_path / "manifest.json.prev").read_text())
        assert prev["state"] == "starting"
        assert Manifest.load(tmp_path).state == "running"

    def test_load_missing_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="not a job directory"):
            Manifest.load(tmp_path)

    def test_load_corrupt_is_usage_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(UsageError, match="corrupt"):
            Manifest.load(tmp_path)

    def test_newer_version_rejected(self, tmp_path):
        manifest = self.make()
        manifest.write(tmp_path)
        data = json.loads((tmp_path / "manifest.json").read_text())
        data["version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(UsageError, match="version"):
            Manifest.load(tmp_path)

    def test_duplicate_frame_ids_rejected(self):
        with pytest.raises(ValidationError, match="unique"):
            Manifest.create(frame_ids=["a", "a"], inputs=["x", "y"],
                            output_dir="out")

    def test_bad_state_rejected(self, tmp_path):
        manifest = self.make()
        with pytest.raises(ValidationError, match="job state"):
            manifest.transition("confused", tmp_path)


# -- property tests: the resume contract ------------------------------------

frame_ids = st.sampled_from([f"f{i}.pgm" for i in range(6)])
outcomes = st.sampled_from([STATUS_COMPLETED, STATUS_FAILED])
records = st.lists(st.tuples(frame_ids, outcomes), min_size=0, max_size=30)


def _write_journal(tmp_path, history, run=1):
    journal = JobJournal(tmp_path, fsync=False)
    for fid, status in history:
        journal.record_frame(
            frame_id=fid, index=int(fid[1]), status=status, run=run,
            error="injected" if status == STATUS_FAILED else None,
        )
    journal.close()


@settings(max_examples=60, deadline=None)
@given(history=records, dupes=st.data())
def test_replay_is_idempotent_under_duplicates(tmp_path_factory, history,
                                               dupes):
    """Replaying a journal with any subset of records duplicated (appended
    again, as a crashed-then-replayed run would) yields the same verdicts
    as the clean journal."""
    base = tmp_path_factory.mktemp("journal")
    _write_journal(base, history)
    clean = JobJournal.replay(base)

    noisy_dir = tmp_path_factory.mktemp("journal-dup")
    duplicated = dupes.draw(st.lists(st.sampled_from(history),
                                     min_size=0, max_size=10)
                            if history else st.just([]))
    # Re-append duplicates of *terminal* outcomes only: a completed
    # frame's completion record, or a failed frame's latest failure —
    # exactly what a replayed run can restate.
    tail = [
        (fid, status) for fid, status in duplicated
        if clean.status(fid) == status
    ]
    _write_journal(noisy_dir, history + tail, run=1)
    noisy = JobJournal.replay(noisy_dir)

    assert set(noisy.completed) == set(clean.completed)
    assert set(noisy.failed) == set(clean.failed)
    all_ids = sorted({fid for fid, _ in history})
    assert noisy.pending_of(all_ids) == clean.pending_of(all_ids)
    assert noisy.failed_of(all_ids) == clean.failed_of(all_ids)


@settings(max_examples=60, deadline=None)
@given(history=records,
       torn_tail=st.binary(min_size=0, max_size=40).filter(
           lambda b: b"\n" not in b))
def test_replay_tolerates_torn_trailing_bytes(tmp_path_factory, history,
                                              torn_tail):
    """A crash can leave arbitrary torn bytes at the end of the journal;
    replay must keep every intact record and never raise."""
    base = tmp_path_factory.mktemp("journal")
    _write_journal(base, history)
    clean = JobJournal.replay(base)

    torn_dir = tmp_path_factory.mktemp("journal-torn")
    _write_journal(torn_dir, history)
    with open(torn_dir / JOURNAL_NAME, "ab") as fh:
        fh.write(torn_tail)
    torn = JobJournal.replay(torn_dir)

    assert set(torn.completed) == set(clean.completed)
    assert set(torn.failed) == set(clean.failed)
    # A resumed process appends after the torn tail; the writer must heal
    # the tail (terminate the garbage line) so the new record survives.
    journal = JobJournal(torn_dir, fsync=False)
    journal.append({"kind": "frame", "frame_id": "after-torn",
                    "index": 9, "status": STATUS_COMPLETED, "run": 2})
    journal.close()
    again = JobJournal.replay(torn_dir)
    assert "after-torn" in again.completed
    assert set(again.failed) == set(clean.failed)
