"""Strength map, preliminary sharpen, overshoot control, full pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.cpu import naive
from repro.errors import ValidationError
from repro.types import SharpnessParams

from .conftest import assert_allclose


class TestStrengthMap:
    def test_matches_naive(self, small_planes, params):
        edge = algo.sobel(small_planes["natural"])
        mean = algo.reduce_mean(edge)
        assert_allclose(
            algo.strength_map(edge, mean, params),
            naive.strength_map(edge, mean, params),
            context="strength map",
        )

    def test_zero_mean_gives_zero_map(self, params):
        out = algo.strength_map(np.ones((8, 8)), 0.0, params)
        assert np.all(out == 0)

    def test_clamped_at_strength_max(self):
        p = SharpnessParams(gain=10.0, gamma=1.0, strength_max=2.5)
        out = algo.strength_map(np.array([[100.0]]), 1.0, p)
        assert out[0, 0] == 2.5

    def test_gain_scales_linearly_below_clamp(self):
        edge = np.array([[1.0, 4.0]])
        a = algo.strength_map(edge, 4.0, SharpnessParams(gain=0.5))
        b = algo.strength_map(edge, 4.0, SharpnessParams(gain=1.0))
        assert_allclose(2 * a, b, context="gain linearity")

    def test_gamma_one_is_proportional(self):
        p = SharpnessParams(gain=1.0, gamma=1.0, strength_max=100.0)
        edge = np.array([[2.0, 6.0]])
        out = algo.strength_map(edge, 2.0, p)
        assert_allclose(out, [[1.0, 3.0]], context="gamma=1")

    def test_mean_pixel_gets_gain(self):
        """A pixel exactly at the mean edge level receives strength = gain."""
        p = SharpnessParams(gain=1.7, gamma=0.5, strength_max=10.0)
        out = algo.strength_map(np.array([[5.0]]), 5.0, p)
        assert out[0, 0] == pytest.approx(1.7)


class TestPreliminary:
    def test_matches_naive(self, small_planes, params):
        plane = small_planes["natural"]
        down = algo.downscale(plane)
        up = algo.upscale(down)
        err = algo.perror(plane, up)
        edge = algo.sobel(plane)
        strength = algo.strength_map(edge, algo.reduce_mean(edge), params)
        assert_allclose(
            algo.preliminary_sharpen(up, err, strength),
            naive.preliminary_sharpen(up, err, strength),
            context="preliminary",
        )

    def test_zero_strength_returns_upscaled(self, rng):
        up = rng.uniform(0, 255, (8, 8))
        err = rng.uniform(-10, 10, (8, 8))
        out = algo.preliminary_sharpen(up, err, np.zeros((8, 8)))
        assert_allclose(out, up, context="zero strength")

    def test_unit_strength_adds_error(self, rng):
        up = rng.uniform(0, 200, (8, 8))
        err = rng.uniform(-10, 10, (8, 8))
        out = algo.preliminary_sharpen(up, err, np.ones((8, 8)))
        assert_allclose(out, up + err, context="unit strength")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            algo.preliminary_sharpen(np.zeros((8, 8)), np.zeros((8, 8)),
                                     np.zeros((4, 4)))

    def test_perror_is_difference(self, rng):
        a = rng.uniform(0, 255, (8, 8))
        b = rng.uniform(0, 255, (8, 8))
        assert_allclose(algo.perror(a, b), a - b, context="perror")

    def test_perror_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            algo.perror(np.zeros((8, 8)), np.zeros((8, 4)))


class TestOvershootControl:
    def test_matches_naive(self, small_planes, params):
        plane = small_planes["checker"]
        prelim = plane + np.random.default_rng(0).uniform(-60, 60,
                                                          plane.shape)
        assert_allclose(
            algo.overshoot_control(prelim, plane, params),
            naive.overshoot_control(prelim, plane, params),
            context="overshoot",
        )

    def test_output_in_range(self, small_planes, params):
        plane = small_planes["noise"]
        prelim = plane * 3.0 - 100.0  # force out-of-range values
        out = algo.overshoot_control(prelim, plane, params)
        assert out.min() >= 0.0 and out.max() <= 255.0

    def test_within_local_range_passes_through(self, params):
        """Preliminary values inside the local min/max are just clamped."""
        plane = np.tile(np.arange(16, dtype=float) * 10, (16, 1))
        prelim = plane.copy()  # exactly the original: within [min, max]
        out = algo.overshoot_control(prelim, plane, params)
        assert_allclose(out[1:-1, 1:-1], plane[1:-1, 1:-1],
                        context="pass-through body")

    def test_overshoot_zero_clips_to_local_max(self):
        p = SharpnessParams(overshoot=0.0)
        plane = np.full((16, 16), 100.0)
        prelim = np.full((16, 16), 180.0)
        out = algo.overshoot_control(prelim, plane, p)
        # body: local max is 100, overshoot 0 -> exactly 100
        assert np.all(out[1:-1, 1:-1] == 100.0)

    def test_overshoot_one_keeps_full_value(self):
        p = SharpnessParams(overshoot=1.0)
        plane = np.full((16, 16), 100.0)
        prelim = np.full((16, 16), 180.0)
        out = algo.overshoot_control(prelim, plane, p)
        assert np.all(out[1:-1, 1:-1] == 180.0)

    def test_undershoot_symmetric(self):
        p = SharpnessParams(overshoot=0.5)
        plane = np.full((16, 16), 100.0)
        prelim = np.full((16, 16), 60.0)
        out = algo.overshoot_control(prelim, plane, p)
        # local min 100, undershoot 40, blend: 100 - 0.5*40 = 80
        assert np.all(out[1:-1, 1:-1] == 80.0)

    def test_border_copied_and_clamped(self, params):
        plane = np.full((16, 16), 100.0)
        prelim = np.full((16, 16), 300.0)
        out = algo.overshoot_control(prelim, plane, params)
        assert np.all(out[0] == 255.0)
        assert np.all(out[:, -1] == 255.0)

    def test_shape_mismatch_rejected(self, params):
        with pytest.raises(ValidationError):
            algo.overshoot_control(np.zeros((8, 8)), np.zeros((8, 4)),
                                   params)


class TestFullPipeline:
    def test_matches_naive_on_all_workloads(self, small_planes, params):
        for name, plane in small_planes.items():
            ref = naive.sharpen(plane, params)
            out = algo.sharpen(plane, params)
            assert out["edge_mean"] == pytest.approx(ref["edge_mean"],
                                                     rel=1e-12)
            for key in ("downscaled", "upscaled", "p_error", "p_edge",
                        "strength", "preliminary", "final"):
                assert_allclose(out[key], ref[key], atol=1e-9,
                                context=f"{name}.{key}")

    def test_constant_image_is_fixed_point(self, params):
        plane = np.full((32, 32), 128.0)
        out = algo.sharpen(plane, params)
        assert_allclose(out["final"], plane, atol=1e-9,
                        context="constant fixed point")
        assert out["edge_mean"] == 0.0

    def test_final_in_pixel_range(self, small_planes, params):
        for name, plane in small_planes.items():
            final = algo.sharpen(plane, params)["final"]
            assert final.min() >= 0.0 and final.max() <= 255.0, name

    def test_sharpening_increases_edge_energy(self, small_planes):
        """The point of the algorithm: the sharpened image has more edge
        energy than the low-pass reconstruction it corrects."""
        plane = small_planes["natural"]
        out = algo.sharpen(plane)
        assert algo.sobel(out["final"]).sum() > algo.sobel(
            out["upscaled"]).sum()

    def test_high_gain_sharpens_beyond_original(self, small_planes):
        """With gain > 1 the output out-edges the original (high boost)."""
        plane = small_planes["checker"]
        params = SharpnessParams(gain=2.0, gamma=0.5, strength_max=4.0,
                                 overshoot=1.0)
        final = algo.sharpen(plane, params)["final"]
        assert algo.sobel(final).sum() > algo.sobel(plane).sum()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_output_valid_for_random_images(self, seed):
        plane = np.random.default_rng(seed).uniform(0, 255, (32, 32))
        final = algo.sharpen(plane)["final"]
        assert final.shape == plane.shape
        assert np.isfinite(final).all()
        assert final.min() >= 0.0 and final.max() <= 255.0
