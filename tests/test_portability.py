"""Device portability: flag checks, retuning, cross-device behaviour."""

import pytest

from repro.core import BASE, OPTIMIZED, GPUPipeline
from repro.core.portability import (
    check_flags,
    device_tuning_summary,
    retune,
)
from repro.errors import ConfigError
from repro.experiments import portability
from repro.simgpu.device import EMBEDDED, W8000, WARP32
from repro.types import Image
from repro.util import images


class TestCheckFlags:
    def test_w8000_optimized_is_clean(self):
        assert check_flags(OPTIMIZED, W8000) == []

    def test_warp32_unrolled_reduction_flagged(self):
        warnings = check_flags(OPTIMIZED, WARP32)
        assert any("lock-step" in w for w in warnings)

    def test_plain_tree_is_fine_everywhere(self):
        flags = OPTIMIZED.with_(reduction_unroll=0)
        for device in (W8000, WARP32, EMBEDDED):
            assert not any("lock-step" in w
                           for w in check_flags(flags, device))

    def test_embedded_border_threshold_flagged(self):
        warnings = check_flags(OPTIMIZED, EMBEDDED)
        assert any("border" in w for w in warnings)

    def test_base_flags_make_no_device_assumptions(self):
        assert not any("lock-step" in w for w in check_flags(BASE, WARP32))


class TestRetune:
    def test_drops_unroll_on_narrow_wavefront(self):
        safe = retune(OPTIMIZED, WARP32)
        assert safe.reduction_unroll == 0
        assert safe.vectorize == OPTIMIZED.vectorize  # everything else kept

    def test_noop_on_w8000(self):
        assert retune(OPTIMIZED, W8000) == OPTIMIZED


class TestPipelineGuard:
    def test_unrolled_reduction_rejected_on_warp32(self):
        with pytest.raises(ConfigError, match="wavefront"):
            GPUPipeline(OPTIMIZED, device=WARP32)

    def test_retuned_flags_run_and_match(self):
        plane = images.natural_like(64, 64, seed=19)
        ref = GPUPipeline(OPTIMIZED).run(Image.from_array(plane)).final
        for device in (WARP32, EMBEDDED):
            res = GPUPipeline(retune(OPTIMIZED, device),
                              device=device).run(Image.from_array(plane))
            assert res.final == pytest.approx(ref, abs=1e-9)

    def test_cpu_reduction_flags_allowed_anywhere(self):
        GPUPipeline(BASE, device=WARP32)  # reduction on CPU: no hazard


class TestTuningSummary:
    def test_w8000_values(self):
        t = device_tuning_summary(W8000)
        assert t["border_crossover_side"] == 768.0
        assert t["unrolled_reduction_valid"] == 1.0

    def test_warp32_unrolled_invalid(self):
        assert device_tuning_summary(WARP32)[
            "unrolled_reduction_valid"] == 0.0

    def test_embedded_map_always_wins(self):
        """Unified memory: mapped access beats explicit copies at every
        size (infinite crossover)."""
        t = device_tuning_summary(EMBEDDED)
        assert t["transfer_crossover_bytes"] == float("inf")

    def test_embedded_border_crossover_much_higher(self):
        cheap_link = device_tuning_summary(EMBEDDED)
        w8000 = device_tuning_summary(W8000)
        assert cheap_link["border_crossover_side"] > \
            2 * w8000["border_crossover_side"]


class TestPortabilityExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return portability.run(size=512)

    def test_every_device_benefits_from_the_ladder(self, rows):
        for device in {r.device for r in rows}:
            final = [r for r in rows if r.device == device][-1]
            assert final.step == "+others"
            assert final.speedup_vs_base > 1.0

    def test_warp32_steps_marked_retuned(self, rows):
        warp_rows = [r for r in rows if "Warp-32" in r.device]
        retuned = [r for r in warp_rows if r.retuned]
        assert retuned, "GPU-reduction steps must be retuned on warp-32"
        for r in retuned:
            assert r.step in ("+reduction", "+vector+border", "+others")

    def test_report_renders(self, rows):
        text = portability.report(rows)
        assert "INVALID" in text
        assert "Handheld" in text

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["portability"]) == 0
        assert "Portability" in capsys.readouterr().out
