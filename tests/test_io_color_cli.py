"""Netpbm I/O, colour pipeline, and the package CLI."""

import numpy as np
import pytest

from repro.__main__ import PRESETS, main as cli_main
from repro.algo import stages as algo
from repro.algo.color import rgb_to_ycbcr, sharpen_rgb, ycbcr_to_rgb
from repro.errors import ValidationError
from repro.util.io import read_pgm, read_ppm, write_pgm, write_ppm

from .conftest import assert_allclose


class TestPgm:
    def test_roundtrip(self, tmp_path, rng):
        plane = np.rint(rng.uniform(0, 255, (24, 32)))
        path = tmp_path / "x.pgm"
        write_pgm(path, plane)
        assert_allclose(read_pgm(path), plane, context="pgm roundtrip")

    def test_float_values_rounded(self, tmp_path):
        path = tmp_path / "x.pgm"
        write_pgm(path, np.full((4, 4), 10.6))
        assert read_pgm(path)[0, 0] == 11.0

    def test_values_clamped(self, tmp_path):
        path = tmp_path / "x.pgm"
        write_pgm(path, np.full((4, 4), 300.0))
        assert read_pgm(path)[0, 0] == 255.0

    def test_ascii_pgm(self, tmp_path):
        path = tmp_path / "a.pgm"
        path.write_bytes(b"P2\n# comment\n3 2\n255\n0 1 2\n3 4 5\n")
        out = read_pgm(path)
        assert out.shape == (2, 3)
        assert out[1, 2] == 5.0

    def test_comments_in_header(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# made by hand\n2 2\n255\n" + bytes(4))
        assert read_pgm(path).shape == (2, 2)

    def test_maxval_rescaled(self, tmp_path):
        path = tmp_path / "m.pgm"
        path.write_bytes(b"P5\n2 2\n15\n" + bytes([15, 0, 7, 15]))
        out = read_pgm(path)
        assert out[0, 0] == 255.0

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + bytes(12))
        with pytest.raises(ValidationError, match="PGM"):
            read_pgm(path)

    def test_truncated_raster_rejected(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_bytes(b"P5\n4 4\n255\n" + bytes(3))
        with pytest.raises(ValidationError, match="truncated"):
            read_pgm(path)

    def test_write_rejects_3d(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4, 3)))


class TestPpm:
    def test_roundtrip(self, tmp_path, rng):
        rgb = np.rint(rng.uniform(0, 255, (16, 16, 3)))
        path = tmp_path / "x.ppm"
        write_ppm(path, rgb)
        assert_allclose(read_ppm(path), rgb, context="ppm roundtrip")

    def test_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P5\n2 2\n255\n" + bytes(4))
        with pytest.raises(ValidationError, match="PPM"):
            read_ppm(path)


class TestColor:
    def test_ycbcr_roundtrip(self, rng):
        rgb = rng.uniform(0, 255, (16, 16, 3))
        out = ycbcr_to_rgb(*rgb_to_ycbcr(rgb))
        assert_allclose(out, rgb, atol=1e-9, context="ycbcr roundtrip")

    def test_gray_image_has_neutral_chroma(self):
        gray = np.full((8, 8, 3), 100.0)
        y, cb, cr = rgb_to_ycbcr(gray)
        assert_allclose(y, np.full((8, 8), 100.0), context="gray luma")
        assert_allclose(cb, np.full((8, 8), 128.0), context="gray cb")
        assert_allclose(cr, np.full((8, 8), 128.0), context="gray cr")

    def test_luma_weights_bt601(self):
        red = np.zeros((4, 4, 3))
        red[..., 0] = 255.0
        y, _, _ = rgb_to_ycbcr(red)
        assert y[0, 0] == pytest.approx(0.299 * 255.0)

    def test_sharpen_rgb_only_touches_luma(self, rng):
        """Chroma planes are preserved exactly."""
        from repro.util import images
        base = images.natural_like(32, 32, seed=4)
        rgb = np.stack([base, np.roll(base, 3, axis=0), 255 - base],
                       axis=-1)
        out = sharpen_rgb(rgb)
        _, cb_in, cr_in = rgb_to_ycbcr(rgb)
        _, cb_out, cr_out = rgb_to_ycbcr(out)
        # Chroma may be clipped where RGB hit [0,255]; compare on the
        # unclipped interior of value space.
        interior = np.all((out > 1) & (out < 254), axis=-1)
        assert interior.sum() > 100
        assert_allclose(cb_out[interior], cb_in[interior], atol=1e-6,
                        context="cb preserved")
        assert_allclose(cr_out[interior], cr_in[interior], atol=1e-6,
                        context="cr preserved")

    def test_sharpen_rgb_uses_canonical_luma(self):
        from repro.util import images
        base = images.natural_like(32, 32, seed=4)
        rgb = np.stack([base] * 3, axis=-1)  # gray
        out = sharpen_rgb(rgb)
        expected = algo.sharpen(base)["final"]
        assert_allclose(out[..., 0], expected, atol=1e-9,
                        context="gray sharpen = luma sharpen")

    def test_custom_luma_sharpener(self, rng):
        rgb = rng.uniform(10, 240, (16, 16, 3))
        out = sharpen_rgb(rgb, luma_sharpener=lambda y: y)  # identity
        assert_allclose(out, np.clip(rgb, 0, 255), atol=1e-9,
                        context="identity sharpener")

    def test_shape_mismatch_sharpener_rejected(self, rng):
        rgb = rng.uniform(0, 255, (16, 16, 3))
        with pytest.raises(ValidationError, match="shape"):
            sharpen_rgb(rgb, luma_sharpener=lambda y: y[:8])

    def test_bad_rgb_shape_rejected(self):
        with pytest.raises(ValidationError):
            rgb_to_ycbcr(np.zeros((4, 4)))


class TestCli:
    def test_demo_and_sharpen_pgm(self, tmp_path, capsys):
        src = tmp_path / "in.pgm"
        dst = tmp_path / "out.pgm"
        assert cli_main(["demo", str(src), "--size", "64"]) == 0
        assert cli_main(["sharpen", str(src), str(dst),
                         "--preset", "crisp"]) == 0
        out = read_pgm(dst)
        assert out.shape == (64, 64)
        assert not np.array_equal(out, read_pgm(src))

    def test_sharpen_ppm(self, tmp_path, rng):
        src = tmp_path / "in.ppm"
        dst = tmp_path / "out.ppm"
        write_ppm(src, rng.uniform(0, 255, (32, 32, 3)))
        assert cli_main(["sharpen", str(src), str(dst),
                         "--pipeline", "cpu"]) == 0
        assert read_ppm(dst).shape == (32, 32, 3)

    def test_report_flag(self, tmp_path, capsys):
        src = tmp_path / "in.pgm"
        dst = tmp_path / "out.pgm"
        cli_main(["demo", str(src), "--size", "64"])
        cli_main(["sharpen", str(src), str(dst), "--report"])
        err = capsys.readouterr().err
        assert "simulated time" in err

    def test_param_overrides(self, tmp_path):
        src = tmp_path / "in.pgm"
        cli_main(["demo", str(src), "--size", "64"])
        a = tmp_path / "a.pgm"
        b = tmp_path / "b.pgm"
        cli_main(["sharpen", str(src), str(a), "--gain", "0.0"])
        cli_main(["sharpen", str(src), str(b), "--gain", "3.0",
                  "--overshoot", "1.0"])
        assert not np.array_equal(read_pgm(a), read_pgm(b))

    def test_unsupported_format_fails_cleanly(self, tmp_path, capsys):
        src = tmp_path / "in.png"
        src.write_bytes(b"not an image")
        rc = cli_main(["sharpen", str(src), str(tmp_path / "o.pgm")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_image_size_fails_cleanly(self, tmp_path, capsys):
        src = tmp_path / "in.pgm"
        write_pgm(src, np.zeros((30, 30)))  # not divisible by 4
        rc = cli_main(["sharpen", str(src), str(tmp_path / "o.pgm")])
        assert rc == 1

    def test_presets_all_valid(self):
        for name, params in PRESETS.items():
            assert params.gamma > 0, name
