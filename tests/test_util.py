"""Workload generators and report formatting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.types import validate_plane
from repro.util import images as imgs
from repro.util.tables import format_fraction_table, format_table
from repro.util.validation import (
    require,
    require_positive,
    require_power_of_two,
)


class TestGenerators:
    ALL = [
        ("gradient", lambda: imgs.gradient(64, 32)),
        ("checkerboard", lambda: imgs.checkerboard(64, 32)),
        ("step_edges", lambda: imgs.step_edges(64, 32)),
        ("noise", lambda: imgs.noise(64, 32, seed=1)),
        ("gaussian_blobs", lambda: imgs.gaussian_blobs(64, 32, seed=1)),
        ("natural_like", lambda: imgs.natural_like(64, 32, seed=1)),
        ("text_like", lambda: imgs.text_like(64, 32, seed=1)),
    ]

    @pytest.mark.parametrize("name,gen", ALL)
    def test_valid_planes(self, name, gen):
        """Every generator yields a plane the pipeline accepts."""
        plane = gen()
        assert plane.shape == (64, 32), name
        validate_plane(plane)  # raises on violation

    def test_deterministic_with_seed(self):
        a = imgs.natural_like(32, 32, seed=5)
        b = imgs.natural_like(32, 32, seed=5)
        assert np.array_equal(a, b)
        c = imgs.natural_like(32, 32, seed=6)
        assert not np.array_equal(a, c)

    def test_gradient_monotone(self):
        g = imgs.gradient(16, 32)
        assert np.all(np.diff(g[0]) >= 0)
        assert g[0, 0] == 0.0 and g[0, -1] == 255.0

    def test_vertical_gradient(self):
        g = imgs.gradient(32, 16, horizontal=False)
        assert np.all(np.diff(g[:, 0]) >= 0)

    def test_checkerboard_two_levels(self):
        b = imgs.checkerboard(16, 16, cell=4, low=10, high=200)
        assert set(np.unique(b)) == {10.0, 200.0}
        assert b[0, 0] != b[0, 4]

    def test_step_edges_count(self):
        s = imgs.step_edges(16, 64, n_steps=4)
        assert len(np.unique(s)) == 4

    def test_natural_like_spectrum_decays(self):
        """1/f content: low frequencies carry more power than high."""
        plane = imgs.natural_like(128, 128, seed=0)
        spec = np.abs(np.fft.fft2(plane - plane.mean()))
        low = spec[1:5, 1:5].mean()
        high = spec[40:60, 40:60].mean()
        assert low > 5 * high

    def test_video_sequence_correlated(self):
        frames = imgs.video_sequence(64, 64, 4, seed=2)
        assert len(frames) == 4
        # consecutive frames are near-duplicates, distant ones less so
        d01 = np.abs(frames[0] - frames[1]).mean()
        d03 = np.abs(frames[0] - frames[3]).mean()
        assert d01 < d03

    @pytest.mark.parametrize("call", [
        lambda: imgs.gradient(0, 16),
        lambda: imgs.checkerboard(16, 16, cell=0),
        lambda: imgs.step_edges(16, 16, n_steps=0),
        lambda: imgs.gaussian_blobs(16, 16, n_blobs=0),
        lambda: imgs.text_like(16, 16, line_height=2),
        lambda: imgs.text_like(16, 16, fill=1.5),
        lambda: imgs.video_sequence(16, 16, 0),
    ])
    def test_invalid_args_rejected(self, call):
        with pytest.raises(ValidationError):
            call()


class TestTables:
    def test_aligned_columns(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]], floatfmt=".3g")
        assert "0.123" in text and "0.123456789" not in text

    def test_row_arity_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_fraction_table_percentages(self):
        text = format_fraction_table(
            ["s1", "s2"], {"256": {"s1": 0.25, "s2": 0.75}})
        assert "25.00%" in text and "75.00%" in text

    def test_fraction_table_missing_stage_is_zero(self):
        text = format_fraction_table(["s1", "s2"], {"256": {"s1": 1.0}})
        assert "0.00%" in text


class TestFormatSpeedup:
    def test_ratio(self):
        from repro.util.tables import format_speedup
        assert format_speedup(2.0, 1.0) == "2.00x"

    def test_zero_denominator(self):
        from repro.util.tables import format_speedup
        assert format_speedup(1.0, 0.0) == "inf"


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ValidationError):
            require_positive(0.0, "x")

    def test_require_power_of_two(self):
        require_power_of_two(64, "x")
        for bad in (0, -2, 3, 6):
            with pytest.raises(ValidationError):
                require_power_of_two(bad, "x")
