"""Property-based emulator tests: NDRange coverage and identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cl import Program
from repro.cl.context import Context
from repro.core import OPTIMIZED
from repro.core.fusion import build_kernel_set
from repro.simgpu.device import W8000
from repro.simgpu.emulator import BARRIER, run_kernel
from repro.simgpu.memory import GlobalBuffer

pow2 = st.sampled_from([1, 2, 4, 8])


class TestNDRangeProperties:
    @given(pow2, pow2, st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_every_item_runs_exactly_once_2d(self, lx, ly, gx_mult,
                                             gy_mult):
        gx, gy = lx * gx_mult, ly * gy_mult
        buf = GlobalBuffer((gy, gx))

        def kernel(ctx, dst):
            x, y = ctx.get_global_id(0), ctx.get_global_id(1)
            dst[y, x] = dst[y, x] + 1.0

        stats = run_kernel(kernel, (gx, gy), (lx, ly), (buf.checked(),),
                           device=W8000)
        assert np.all(buf.data == 1.0)
        assert stats.n_work_items == gx * gy
        assert stats.n_groups == gx_mult * gy_mult

    @given(pow2, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_group_reduction_identity_1d(self, local, n_groups):
        """Sum of per-group local reductions equals the global sum,
        regardless of the workgroup shape."""
        n = local * n_groups
        rng = np.random.default_rng(local * 100 + n_groups)
        src = GlobalBuffer((n,))
        src.data[...] = rng.uniform(0, 10, n)
        out = GlobalBuffer((n_groups,))

        def kernel(ctx, src_a, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = src_a[ctx.get_global_id(0)]
            yield BARRIER
            if lid == 0:
                acc = 0.0
                for i in range(ctx.get_local_size(0)):
                    acc += scratch[i]
                dst[ctx.get_group_id(0)] = acc

        run_kernel(kernel, (n,), (local,),
                   (src.checked(), out.checked()), device=W8000,
                   local_mem={"scratch": local})
        assert out.data.sum() == pytest.approx(src.data.sum(), rel=1e-12)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_barrier_count_scales_with_groups(self, n_groups):
        def kernel(ctx):
            yield BARRIER
            yield BARRIER

        stats = run_kernel(kernel, (4 * n_groups,), (4,), (),
                           device=W8000)
        assert stats.barrier_releases == 2 * n_groups


class TestProgramIntegration:
    @pytest.mark.parametrize("flags", [OPTIMIZED,
                                       OPTIMIZED.with_(vectorize=False)])
    def test_pipeline_kernel_set_builds_as_program(self, flags):
        """The kernel sets the pipeline uses are valid cl.Program inputs
        and every kernel is creatable by name."""
        ctx = Context()
        specs = build_kernel_set(flags)
        program = Program(ctx, list(specs.values()))
        for spec in specs.values():
            kernel = program.create_kernel(spec.name)
            assert kernel.name == spec.name
