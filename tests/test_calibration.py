"""Calibration anchors and the dry-run execution mode that powers them."""

import numpy as np
import pytest

from repro.core import BASE, OPTIMIZED, GPUPipeline
from repro.errors import ConfigError
from repro.experiments import calibrate
from repro.simgpu.device import I5_3470, W8000
from repro.types import Image
from repro.util import images


class TestDryRunMode:
    def test_time_identical_to_functional(self):
        img = Image.from_array(images.natural_like(128, 128, seed=3))
        for flags in (BASE, OPTIMIZED):
            f = GPUPipeline(flags, mode="functional").run(img)
            d = GPUPipeline(flags, mode="dryrun").run(img)
            assert d.total_time == pytest.approx(f.total_time, rel=1e-12)
            assert d.times.times == pytest.approx(f.times.times, rel=1e-12)

    def test_dryrun_skips_kernel_bodies(self):
        img = Image.from_array(images.natural_like(64, 64, seed=3))
        res = GPUPipeline(OPTIMIZED, mode="dryrun").run(img)
        # The final buffer was never computed: all zeros.
        assert np.all(res.final == 0.0)

    def test_unknown_mode_rejected(self):
        from repro.cl import Context
        with pytest.raises(ConfigError):
            Context(mode="warp-speed")


class TestAnchors:
    @pytest.fixture(scope="class")
    def anchor_list(self):
        return calibrate.anchors()

    def test_all_anchors_present(self, anchor_list):
        names = " ".join(a.name for a in anchor_list)
        assert "base speedup @256" in names
        assert "@4096" in names
        assert "crossover" in names

    def test_every_anchor_within_10_percent(self, anchor_list):
        for a in anchor_list:
            assert abs(a.log_error) < 0.10, (a.name, a.measured)

    def test_objective_small(self):
        assert calibrate.calibration_error() < 0.005

    def test_report_renders(self):
        text = calibrate.report()
        assert "Calibration" in text and "error" in text

    def test_shipped_constants_are_grid_optimal(self):
        """fit() over its default grid must return the shipped values."""
        ce, me, err = calibrate.fit()
        assert ce == pytest.approx(I5_3470.efficiency)
        assert me == pytest.approx(W8000.mem_efficiency)
        assert err == pytest.approx(calibrate.calibration_error(),
                                    rel=1e-9)

    def test_perturbed_constants_are_worse(self):
        base_err = calibrate.calibration_error()
        worse_cpu = calibrate.calibration_error(
            cpu=I5_3470.with_(efficiency=0.06))
        worse_mem = calibrate.calibration_error(
            W8000.with_(mem_efficiency=0.9))
        assert worse_cpu > base_err
        assert worse_mem > base_err
