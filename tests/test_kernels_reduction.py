"""Tree-reduction kernels: all unroll variants, both faces, the wavefront
hazard, and the barrier accounting of Fig. 15."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cl import CommandQueue, Context
from repro.errors import ConfigError
from repro.kernels.reduction import (
    GROUP_SPAN,
    KERNEL_WAVEFRONT,
    REDUCTION_WG,
    make_reduction_spec,
    reduction_layout,
)
from repro.simgpu.device import W8000
from repro.simgpu.emulator import run_kernel
from repro.simgpu.memory import GlobalBuffer


def _run(values: np.ndarray, *, unroll: int, mode: str,
         device=W8000) -> np.ndarray:
    """Run stage 1 over ``values`` and return the partial sums."""
    n = values.size
    n_groups, gsz, lsz = reduction_layout(n)
    ctx = Context(device, mode)
    queue = CommandQueue(ctx)
    src = ctx.create_buffer(values.shape, transfer_itemsize=4)
    src.data[...] = values
    partial = ctx.create_buffer((n_groups,), transfer_itemsize=4)
    spec = make_reduction_spec(unroll=unroll)
    queue.enqueue_nd_range(spec.create().set_args(src, partial, n),
                           gsz, lsz)
    return partial.data.copy()


class TestLayout:
    def test_exact_fit(self):
        n_groups, gsz, lsz = reduction_layout(GROUP_SPAN * 3)
        assert n_groups == 3
        assert gsz == (3 * REDUCTION_WG,)
        assert lsz == (REDUCTION_WG,)

    def test_partial_group(self):
        n_groups, _, _ = reduction_layout(GROUP_SPAN + 1)
        assert n_groups == 2

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            reduction_layout(0)

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ConfigError):
            make_reduction_spec(unroll=3)


class TestReductionCorrectness:
    @pytest.mark.parametrize("unroll", [0, 1, 2])
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_partials_sum_to_total(self, rng, unroll, mode):
        values = rng.uniform(0, 255, GROUP_SPAN * 2 + 137)
        partials = _run(values, unroll=unroll, mode=mode)
        assert partials.sum() == pytest.approx(values.sum(), rel=1e-12)

    @pytest.mark.parametrize("unroll", [0, 1, 2])
    def test_each_partial_covers_its_slice(self, rng, unroll):
        values = rng.uniform(0, 255, GROUP_SPAN * 3)
        partials = _run(values, unroll=unroll, mode="emulate")
        for g in range(3):
            expected = values[g * GROUP_SPAN:(g + 1) * GROUP_SPAN].sum()
            assert partials[g] == pytest.approx(expected, rel=1e-12), g

    def test_2d_source_reduces_linearly(self, rng):
        """The pipeline reduces the 2-D pEdge buffer through the flat view."""
        values = rng.uniform(0, 255, (64, 32))
        partials = _run(values, unroll=1, mode="emulate")
        assert partials.sum() == pytest.approx(values.sum(), rel=1e-12)

    @given(st.integers(min_value=1, max_value=3 * GROUP_SPAN),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_sizes_functional(self, n, seed):
        values = np.random.default_rng(seed).uniform(0, 255, n)
        partials = _run(values, unroll=1, mode="functional")
        assert partials.sum() == pytest.approx(values.sum(), rel=1e-12)

    @given(st.integers(min_value=1, max_value=GROUP_SPAN + 300),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_arbitrary_sizes_emulated(self, n, seed):
        values = np.random.default_rng(seed).uniform(0, 255, n)
        partials = _run(values, unroll=1, mode="emulate")
        assert partials.sum() == pytest.approx(values.sum(), rel=1e-12)


class TestWavefrontHazard:
    def test_unrolled_kernel_wrong_on_narrow_wavefront_device(self, rng):
        """Algorithm 1 hardcodes 64-wide lock-step.  On a device with a
        16-wide wavefront the WF_SYNCs stop covering the cross-lane reads
        and the kernel silently produces wrong sums — the classic
        portability bug of unrolled reductions."""
        narrow = W8000.with_(wavefront_size=16)
        values = rng.uniform(1, 255, GROUP_SPAN)
        n_groups, gsz, lsz = reduction_layout(values.size)

        src = GlobalBuffer(values.shape, transfer_itemsize=4)
        src.data[...] = values
        partial = GlobalBuffer((n_groups,), transfer_itemsize=4)
        spec = make_reduction_spec(unroll=1)
        run_kernel(spec.emulator, gsz, lsz,
                   (src.checked(), partial.checked(), values.size),
                   device=narrow,
                   local_mem=spec.local_mem(lsz, ()))
        assert partial.data.sum() != pytest.approx(values.sum(), rel=1e-9)

    def test_plain_tree_correct_on_any_wavefront(self, rng):
        """The barrier-per-step tree has no lock-step assumption."""
        narrow = W8000.with_(wavefront_size=16)
        values = rng.uniform(1, 255, GROUP_SPAN)
        n_groups, gsz, lsz = reduction_layout(values.size)
        src = GlobalBuffer(values.shape, transfer_itemsize=4)
        src.data[...] = values
        partial = GlobalBuffer((n_groups,), transfer_itemsize=4)
        spec = make_reduction_spec(unroll=0)
        run_kernel(spec.emulator, gsz, lsz,
                   (src.checked(), partial.checked(), values.size),
                   device=narrow,
                   local_mem=spec.local_mem(lsz, ()))
        assert partial.data.sum() == pytest.approx(values.sum(), rel=1e-12)


class TestBarrierAccounting:
    def test_emulated_barriers_match_cost_model(self, rng):
        """The barrier counts the cost model charges are exactly what the
        emulator executes (Fig. 15's mechanism)."""
        values = rng.uniform(0, 255, GROUP_SPAN)  # one group
        n_groups, gsz, lsz = reduction_layout(values.size)
        for unroll in (0, 1, 2):
            spec = make_reduction_spec(unroll=unroll)
            src = GlobalBuffer(values.shape, transfer_itemsize=4)
            src.data[...] = values
            partial = GlobalBuffer((n_groups,), transfer_itemsize=4)
            stats = run_kernel(
                spec.emulator, gsz, lsz,
                (src.checked(), partial.checked(), values.size),
                device=W8000, local_mem=spec.local_mem(lsz, ()),
            )
            cost = spec.cost(W8000, gsz, lsz, (None, None, values.size))
            assert stats.barrier_releases == cost.barriers_per_group, unroll

    def test_unroll1_has_fewest_barriers(self):
        costs = {
            u: make_reduction_spec(unroll=u).cost(
                W8000, (REDUCTION_WG,), (REDUCTION_WG,),
                (None, None, GROUP_SPAN),
            ).barriers_per_group
            for u in (0, 1, 2)
        }
        assert costs[1] < costs[2] < costs[0]

    def test_wavefront_constant_matches_gcn(self):
        assert KERNEL_WAVEFRONT == 64
