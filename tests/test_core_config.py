"""Optimization flags: validation, presets, the Fig. 14 ladder."""

import pytest

from repro.core.config import (
    BASE,
    LADDER,
    OPTIMIZED,
    STEP_REDUCTION,
    STEP_TRANSFER_FUSION,
    STEP_VECTOR_BORDER,
    OptimizationFlags,
)
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_base(self):
        f = OptimizationFlags()
        assert f.transfer_mode == "map"
        assert not f.fuse_sharpness
        assert not f.reduction_on_gpu
        assert not f.vectorize
        assert f.border_place == "cpu"

    @pytest.mark.parametrize("kwargs", [
        {"transfer_mode": "dma"},
        {"reduction_unroll": 3},
        {"reduction_stage2": "fpga"},
        {"border_place": "tpu"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OptimizationFlags(**kwargs)

    def test_pad_on_transfer_requires_padded_only(self):
        with pytest.raises(ConfigError, match="pad_on_transfer"):
            OptimizationFlags(pad_on_transfer=True)

    def test_vectorize_requires_padded_only(self):
        with pytest.raises(ConfigError, match="vectorize"):
            OptimizationFlags(vectorize=True)

    def test_with_returns_new_object(self):
        f = BASE.with_(fuse_sharpness=True)
        assert f.fuse_sharpness and not BASE.fuse_sharpness


class TestLadder:
    def test_ladder_order_and_names(self):
        names = [name for name, _ in LADDER]
        assert names == ["base", "transfer+fusion", "+reduction",
                         "+vector+border", "+others"]

    def test_ladder_is_cumulative(self):
        """Each step keeps everything the previous step enabled."""
        assert STEP_TRANSFER_FUSION.fuse_sharpness
        assert STEP_TRANSFER_FUSION.transfer_mode == "rw"
        assert STEP_REDUCTION.fuse_sharpness
        assert STEP_REDUCTION.reduction_on_gpu
        assert STEP_VECTOR_BORDER.reduction_on_gpu
        assert STEP_VECTOR_BORDER.vectorize
        assert OPTIMIZED.vectorize
        assert OPTIMIZED.eliminate_sync and OPTIMIZED.builtins

    def test_base_matches_section_iv(self):
        """Naive version: map transfers, reduction + border on CPU,
        clFinish after each kernel."""
        assert BASE.transfer_mode == "map"
        assert not BASE.transfer_padded_only
        assert not BASE.reduction_on_gpu
        assert BASE.border_place == "cpu"
        assert not BASE.eliminate_sync

    def test_optimized_uses_paper_defaults(self):
        assert OPTIMIZED.reduction_unroll == 1  # Fig. 15 winner
        assert OPTIMIZED.border_place == "auto"  # Fig. 17 heuristic
        assert OPTIMIZED.pad_on_transfer  # WriteBufferRect (V.A)

    def test_describe_mentions_active_flags(self):
        s = OPTIMIZED.describe()
        assert "fused" in s and "vec4" in s and "builtins" in s
        assert "rw" in s
        b = BASE.describe()
        assert "map" in b and "red-cpu" in b
