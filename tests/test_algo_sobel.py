"""Sobel stage: golden-reference equality and analytic cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.cpu import naive
from repro.errors import ValidationError

from .conftest import assert_allclose


class TestSobelGolden:
    def test_matches_naive_on_all_workloads(self, small_planes):
        for name, plane in small_planes.items():
            assert_allclose(algo.sobel(plane), naive.sobel(plane),
                            context=f"sobel({name})")

    def test_border_is_zero(self, small_planes):
        edge = algo.sobel(small_planes["noise"])
        assert np.all(edge[0] == 0) and np.all(edge[-1] == 0)
        assert np.all(edge[:, 0] == 0) and np.all(edge[:, -1] == 0)

    def test_constant_gives_zero(self):
        assert np.all(algo.sobel(np.full((16, 16), 99.0)) == 0)

    def test_vertical_step_edge_response(self):
        """|Gx| of a unit vertical step is 4 on the two step columns."""
        plane = np.zeros((16, 16))
        plane[:, 8:] = 1.0
        edge = algo.sobel(plane)
        body = edge[1:-1]
        assert_allclose(body[:, 7], np.full(14, 4.0), context="left of step")
        assert_allclose(body[:, 8], np.full(14, 4.0), context="right of step")
        assert np.all(body[:, :6] == 0) and np.all(body[:, 10:] == 0)

    def test_horizontal_ramp_constant_gradient(self):
        """A slope-1 horizontal ramp has |Gx| = 8 everywhere in the body."""
        plane = np.tile(np.arange(32, dtype=float), (32, 1))
        edge = algo.sobel(plane)
        assert_allclose(edge[1:-1, 1:-1], np.full((30, 30), 8.0),
                        context="ramp gradient")

    def test_rotation_symmetry(self, rng):
        """sobel(plane.T) == sobel(plane).T — |Gx|+|Gy| is symmetric."""
        plane = rng.uniform(0, 255, (24, 24))
        assert_allclose(algo.sobel(plane.T), algo.sobel(plane).T,
                        context="transpose symmetry")

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            algo.sobel(np.zeros((13, 16)))


class TestSobelProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_nonnegative(self, seed):
        plane = np.random.default_rng(seed).uniform(0, 255, (20, 20))
        assert algo.sobel(plane).min() >= 0.0

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_homogeneous(self, scale, seed):
        """Sobel is positively homogeneous: sobel(k*x) == k*sobel(x)."""
        plane = np.random.default_rng(seed).uniform(0, 25, (20, 20))
        assert_allclose(algo.sobel(scale * plane), scale * algo.sobel(plane),
                        atol=1e-8, context="homogeneity")

    @given(st.floats(min_value=0.0, max_value=200.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_shift_invariant(self, offset, seed):
        """Adding a constant brightness does not change the gradient."""
        plane = np.random.default_rng(seed).uniform(0, 55, (20, 20))
        assert_allclose(algo.sobel(plane + offset), algo.sobel(plane),
                        atol=1e-8, context="shift invariance")


class TestReduction:
    def test_reduce_mean_matches_naive(self, small_planes):
        for name, plane in small_planes.items():
            edge = algo.sobel(plane)
            assert algo.reduce_mean(edge) == pytest.approx(
                naive.reduce_mean(edge), rel=1e-12
            ), name

    def test_reduce_sum_of_ones(self):
        assert algo.reduce_sum(np.ones((7, 9))) == 63.0

    def test_reduce_mean_empty_rejected(self):
        with pytest.raises(ValidationError):
            algo.reduce_mean(np.zeros((0,)))
