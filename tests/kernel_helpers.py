"""Helpers for exercising kernel specs in both execution modes."""

from __future__ import annotations

import numpy as np

from repro.cl import CommandQueue, Context
from repro.kernels.base import round_up
from repro.simgpu.device import W8000


def run_spec(spec, global_size, local_size, arg_builder, *, mode,
             device=W8000):
    """Run one kernel spec and return the dict of named buffers.

    ``arg_builder(ctx)`` returns ``(args, buffers)`` where ``buffers`` is a
    name->Buffer dict for post-run inspection.
    """
    ctx = Context(device, mode)
    queue = CommandQueue(ctx)
    args, buffers = arg_builder(ctx)
    kernel = spec.create().set_args(*args)
    queue.enqueue_nd_range(kernel, global_size, local_size)
    return {name: buf.data.copy() for name, buf in buffers.items()}


def grid2d(nx: int, ny: int, tile: int = 16):
    return (round_up(nx, tile), round_up(ny, tile)), (tile, tile)


def make_padded(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    out = np.zeros((h + 2, w + 2))
    out[1:h + 1, 1:w + 1] = plane
    return out
