"""Direct tests for core.fusion, core.metrics and core.transfer."""

import numpy as np
import pytest

from repro.cl import CommandQueue, Context
from repro.core import BASE, OPTIMIZED
from repro.core.fusion import build_kernel_set
from repro.core.metrics import (
    GPU_STAGE_ORDER,
    STAGE_MERGE,
    ordered_fractions,
    stage_times_from_timeline,
)
from repro.core.transfer import TransferPlanner
from repro.simgpu.device import I5_3470
from repro.simgpu.profiling import Timeline
from repro.types import StageTimes


class TestBuildKernelSet:
    def test_base_set_is_unfused_scalar(self):
        kernels = build_kernel_set(BASE)
        assert set(kernels) == {"downscale", "center", "border", "sobel",
                                "reduction", "perror", "prelim",
                                "overshoot"}
        assert kernels["sobel"].name == "sobel"  # unpadded scalar
        assert kernels["center"].name == "upscale_center"

    def test_optimized_set_is_fused_vectorized(self):
        kernels = build_kernel_set(OPTIMIZED)
        assert set(kernels) == {"downscale", "center", "border", "sobel",
                                "reduction", "sharpness"}
        assert kernels["sobel"].name == "sobel_vec"
        assert kernels["center"].name == "upscale_center_vec"
        assert kernels["sharpness"].name == "sharpness_vec"

    def test_reduction_variant_follows_flags(self):
        for unroll in (0, 1, 2):
            kernels = build_kernel_set(OPTIMIZED.with_(
                reduction_unroll=unroll))
            assert kernels["reduction"].name == f"reduction_u{unroll}"

    def test_fusion_without_vectorize(self):
        flags = BASE.with_(fuse_sharpness=True)
        kernels = build_kernel_set(flags)
        assert kernels["sharpness"].name == "sharpness"  # scalar fused


class TestMetrics:
    def test_merge_map_targets_fig13_names(self):
        for target in STAGE_MERGE.values():
            assert target in GPU_STAGE_ORDER

    def test_unfused_tail_groups_as_sharpness(self):
        tl = Timeline()
        tl.record("kernel:perror", "kernel", 1e-3, stage="perror")
        tl.record("kernel:prelim", "kernel", 2e-3, stage="prelim")
        tl.record("kernel:overshoot", "kernel", 3e-3, stage="overshoot")
        times = stage_times_from_timeline(tl)
        assert times.times == pytest.approx({"sharpness": 6e-3})

    def test_sync_merges_into_data_init(self):
        tl = Timeline()
        tl.record("clFinish", "sync", 1e-5, stage="sync")
        times = stage_times_from_timeline(tl)
        assert "data_init" in times.times

    def test_ordered_fractions_cover_all_stages(self):
        st = StageTimes()
        st.add("sobel", 1.0)
        fr = ordered_fractions(st)
        assert list(fr)[: len(GPU_STAGE_ORDER)] == list(GPU_STAGE_ORDER)
        assert fr["sobel"] == 1.0
        assert fr["downscale"] == 0.0

    def test_unexpected_stage_kept_visible(self):
        st = StageTimes()
        st.add("mystery", 1.0)
        fr = ordered_fractions(st)
        assert fr["mystery"] == 1.0


class TestTransferPlanner:
    @pytest.fixture
    def ctx(self):
        return Context()

    @pytest.fixture
    def queue(self, ctx):
        return CommandQueue(ctx)

    def test_rw_upload_download(self, ctx, queue, rng):
        planner = TransferPlanner(queue, "rw", I5_3470)
        buf = ctx.create_buffer((8, 8))
        host = rng.uniform(0, 1, (8, 8))
        planner.upload(buf, host, stage="data_init")
        out = planner.download(buf, stage="data_init")
        assert np.array_equal(out, host)
        kinds = [e.kind for e in ctx.timeline.events]
        assert kinds == ["transfer", "transfer"]

    def test_map_upload_download(self, ctx, queue, rng):
        planner = TransferPlanner(queue, "map", I5_3470)
        buf = ctx.create_buffer((8, 8))
        host = rng.uniform(0, 1, (8, 8))
        planner.upload(buf, host, stage="x")
        assert np.array_equal(planner.download(buf, stage="x"), host)

    def test_map_cheaper_than_rw_for_small_buffers(self, ctx, rng):
        host = rng.uniform(0, 1, (8, 8))
        times = {}
        for mode in ("rw", "map"):
            local_ctx = Context()
            q = CommandQueue(local_ctx)
            planner = TransferPlanner(q, mode, I5_3470)
            buf = local_ctx.create_buffer((8, 8), transfer_itemsize=1)
            planner.upload(buf, host, stage="x")
            times[mode] = local_ctx.timeline.total
        assert times["map"] < times["rw"]

    def test_padded_upload_rect(self, ctx, queue, rng):
        planner = TransferPlanner(queue, "rw", I5_3470)
        plane = rng.uniform(0, 255, (16, 16))
        padded = ctx.create_buffer((18, 18), transfer_itemsize=1)
        planner.upload_padded(padded, plane, pad_on_transfer=True)
        assert np.array_equal(padded.data[1:17, 1:17], plane)
        assert np.all(padded.data[0] == 0)
        # One rect transfer, no host padding step:
        assert [e.kind for e in ctx.timeline.events] == ["transfer"]

    def test_padded_upload_host_pad(self, ctx, queue, rng):
        planner = TransferPlanner(queue, "rw", I5_3470)
        plane = rng.uniform(0, 255, (16, 16))
        padded = ctx.create_buffer((18, 18), transfer_itemsize=1)
        planner.upload_padded(padded, plane, pad_on_transfer=False)
        assert np.array_equal(padded.data[1:17, 1:17], plane)
        kinds = [e.kind for e in ctx.timeline.events]
        assert kinds == ["host", "transfer"]  # CPU memcpy then bulk write

    def test_rect_beats_host_pad_in_time(self, rng):
        plane = rng.uniform(0, 255, (1024, 1024))
        times = {}
        for rect in (True, False):
            ctx = Context()
            q = CommandQueue(ctx)
            planner = TransferPlanner(q, "rw", I5_3470)
            padded = ctx.create_buffer((1026, 1026), transfer_itemsize=1)
            planner.upload_padded(padded, plane, pad_on_transfer=rect)
            times[rect] = ctx.timeline.total
        assert times[True] < times[False]
