"""The ``python -m repro.analysis`` driver: exit codes, JSON, baseline."""

import io
import json
import pathlib
import shutil

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.driver import main
from repro.analysis.findings import Finding, Severity
from repro.errors import ValidationError

pytestmark = pytest.mark.analysis

REPO = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "analysis"


def run_cli(*argv: str):
    out = io.StringIO()
    code = main(list(argv), stdout=out)
    return code, out.getvalue()


def make_root(tmp_path, kernel_fixtures=()):
    """A minimal repo root: src/repro/kernels with chosen fixtures."""
    kdir = tmp_path / "src" / "repro" / "kernels"
    kdir.mkdir(parents=True)
    for name in kernel_fixtures:
        shutil.copy(FIXTURES / name, kdir / name)
    return tmp_path


def test_real_repo_gate_is_green():
    code, out = run_cli("--root", str(REPO))
    assert code == 0, out
    assert "repro.analysis: OK" in out


def test_json_report_shape():
    code, out = run_cli("--root", str(REPO), "--format=json")
    assert code == 0
    payload = json.loads(out)
    assert payload["ok"] is True
    assert payload["counts"]["error"] == 0
    assert payload["kernels_analyzed"] >= 6
    assert isinstance(payload["findings"], list)


def test_checked_in_error_baseline_is_empty():
    """Acceptance: the shipped baseline grandfathers no errors."""
    baseline = load_baseline(REPO / "analysis-baseline.json")
    assert baseline, "expected the checked-in baseline to exist"
    assert all(entry["severity"] != "error" for entry in baseline.values())


def test_seeded_bugs_fail_the_gate(tmp_path):
    root = make_root(tmp_path, ["bad_oob.py", "bad_race.py"])
    code, out = run_cli("--root", str(root))
    assert code == 1
    assert "FAIL" in out
    assert "KA-OOB" in out and "KA-RACE" in out


def test_min_severity_filter_hides_warnings(tmp_path):
    root = make_root(tmp_path, ["bad_misc.py"])
    code, out = run_cli("--root", str(root), "--min-severity=error")
    assert code == 0
    assert "KA-COALESCE" not in out


def test_write_baseline_refuses_errors(tmp_path, capsys):
    root = make_root(tmp_path, ["bad_oob.py"])
    code, _ = run_cli("--root", str(root), "--write-baseline")
    assert code == 2
    assert "refusing to baseline" in capsys.readouterr().err


def test_write_then_consume_baseline(tmp_path):
    root = make_root(tmp_path, ["bad_misc.py"])
    # First run: warnings fail nothing, but show up.
    code, out = run_cli("--root", str(root))
    assert code == 0 and "KA-UNUSED" in out
    # Grandfather them, then a re-run reports them as baselined only.
    code, _ = run_cli("--root", str(root), "--write-baseline")
    assert code == 0
    code, out = run_cli("--root", str(root))
    assert code == 0
    assert "KA-UNUSED" not in out
    assert "baselined" in out
    # --no-baseline resurfaces them.
    code, out = run_cli("--root", str(root), "--no-baseline")
    assert "KA-UNUSED" in out


def test_baseline_rejects_corrupt_json(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(ValidationError):
        load_baseline(path)


def test_write_baseline_api_refuses_error_findings(tmp_path):
    bad = Finding(rule="KA-OOB", severity=Severity.ERROR, path="x.py",
                  line=1, scope="k", message="boom")
    with pytest.raises(ValidationError, match="refusing to baseline"):
        write_baseline(tmp_path / "b.json", [bad])


def test_severity_parse_rejects_unknown_level():
    with pytest.raises(ValidationError, match="unknown severity"):
        Severity.parse("loud")


def test_fingerprint_is_line_independent():
    a = Finding(rule="R", severity=Severity.WARNING, path="d/f.py",
                line=10, scope="s", message="m")
    b = Finding(rule="R", severity=Severity.WARNING, path="d/f.py",
                line=99, scope="s", message="m")
    assert a.fingerprint == b.fingerprint
