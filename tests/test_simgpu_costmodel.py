"""Cost model: roofline behaviour, utilization, barriers, CPU stages."""

import pytest

from repro.errors import ValidationError
from repro.simgpu.costmodel import (
    CpuStageCost,
    KernelCost,
    cpu_stage_time,
    flop_equivalents,
    kernel_breakdown,
    kernel_time,
)
from repro.simgpu.device import GIGA, I5_3470, W8000
from repro.simgpu.scheduler import (
    parallel_utilization,
    tail_factor,
    wavefronts_for,
)


def _cost(**kw):
    base = dict(work_items=1 << 20, n_groups=4096, workgroup_size=256)
    base.update(kw)
    return KernelCost(**base)


class TestKernelCost:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValidationError):
            _cost(flops=-1.0)
        with pytest.raises(ValidationError):
            _cost(global_bytes_read=-1.0)

    def test_zero_items_rejected(self):
        with pytest.raises(ValidationError):
            KernelCost(work_items=0)


class TestFlopEquivalents:
    def test_heavy_ops_weighted(self):
        c = _cost(flops=100.0, heavy_ops=10.0)
        expected = 100.0 + 10.0 * W8000.heavy_op_flops
        assert flop_equivalents(c, W8000) == expected

    def test_builtins_cheapen_heavy_and_int_ops(self):
        slow = _cost(flops=0.0, heavy_ops=10.0, slow_int_ops=10.0)
        fast = _cost(flops=0.0, heavy_ops=10.0, slow_int_ops=10.0,
                     uses_builtins=True)
        assert flop_equivalents(fast, W8000) < flop_equivalents(slow, W8000)


class TestKernelTime:
    def test_memory_bound_kernel_scales_with_bytes(self):
        a = _cost(global_bytes_read=1e8)
        b = _cost(global_bytes_read=2e8)
        ta = kernel_time(a, W8000) - W8000.launch_overhead_s
        tb = kernel_time(b, W8000) - W8000.launch_overhead_s
        assert tb == pytest.approx(2 * ta, rel=1e-9)

    def test_roofline_is_max_not_sum(self):
        mem = _cost(global_bytes_read=1e9)
        both = _cost(global_bytes_read=1e9, flops=1.0)
        assert kernel_time(both, W8000) == kernel_time(mem, W8000)

    def test_divergence_penalizes_compute_only(self):
        comp = _cost(flops=1e10)
        div = _cost(flops=1e10, divergent=True)
        ratio = (kernel_time(div, W8000) - W8000.launch_overhead_s) / (
            kernel_time(comp, W8000) - W8000.launch_overhead_s
        )
        assert ratio == pytest.approx(W8000.divergent_branch_penalty,
                                      rel=1e-6)

    def test_divergence_does_not_penalize_memory(self):
        mem = _cost(global_bytes_read=1e9)
        div = _cost(global_bytes_read=1e9, divergent=True)
        assert kernel_time(div, W8000) == kernel_time(mem, W8000)

    def test_launch_overhead_included(self):
        c = _cost(flops=1.0)
        with_l = kernel_time(c, W8000)
        without = kernel_time(c, W8000, include_launch=False)
        assert with_l - without == pytest.approx(W8000.launch_overhead_s)

    def test_extra_barrier_costs_more(self):
        one = _cost(barriers_per_group=1.0)
        two = _cost(barriers_per_group=2.0)
        assert kernel_time(two, W8000) > kernel_time(one, W8000)

    def test_serial_latency_added_verbatim(self):
        c0 = _cost()
        c1 = _cost(serial_latency_s=1e-3)
        assert kernel_time(c1, W8000) - kernel_time(c0, W8000) == \
            pytest.approx(1e-3)

    def test_small_launch_underutilizes(self):
        """Same total work, fewer items -> lower utilization -> slower."""
        big = KernelCost(work_items=1 << 20, global_bytes_read=1e7,
                         n_groups=4096, workgroup_size=256)
        small = KernelCost(work_items=256, global_bytes_read=1e7,
                           n_groups=1, workgroup_size=256)
        assert kernel_time(small, W8000) > kernel_time(big, W8000)

    def test_breakdown_components(self):
        c = _cost(flops=1e9, global_bytes_read=1e8, local_bytes=1e7)
        bd = kernel_breakdown(c, W8000)
        assert set(bd) == {"compute", "global_mem", "local_mem",
                           "utilization", "total"}
        assert bd["total"] == pytest.approx(kernel_time(c, W8000))


class TestScheduler:
    def test_wavefronts_rounding(self):
        assert wavefronts_for(1, W8000) == 1
        assert wavefronts_for(64, W8000) == 1
        assert wavefronts_for(65, W8000) == 2

    def test_utilization_saturates_at_one(self):
        assert parallel_utilization(10**8, W8000) == 1.0

    def test_utilization_floor(self):
        assert parallel_utilization(1, W8000) > 0.0

    def test_utilization_monotone(self):
        us = [parallel_utilization(n, W8000)
              for n in (64, 1024, 16384, 262144)]
        assert us == sorted(us)

    def test_invalid_items_rejected(self):
        with pytest.raises(Exception):
            parallel_utilization(0, W8000)

    def test_tail_factor_one_for_aligned_grids(self):
        per_wave = W8000.n_compute_units * 4
        assert tail_factor(per_wave * 10, W8000) == pytest.approx(1.0)

    def test_tail_factor_large_for_single_group(self):
        assert tail_factor(1, W8000) == W8000.n_compute_units * 4


class TestCpuStageTime:
    def test_compute_bound(self):
        c = CpuStageCost(flops=1e9)
        assert cpu_stage_time(c, I5_3470) == pytest.approx(
            1e9 / (I5_3470.effective_gflops * GIGA)
        )

    def test_memory_bound(self):
        c = CpuStageCost(bytes_read=1e9)
        assert cpu_stage_time(c, I5_3470) == pytest.approx(
            1e9 / I5_3470.effective_bandwidth_bps
        )

    def test_branchy_penalty(self):
        a = CpuStageCost(flops=1e9)
        b = CpuStageCost(flops=1e9, branchy=True)
        assert cpu_stage_time(b, I5_3470) == pytest.approx(
            cpu_stage_time(a, I5_3470) * I5_3470.branch_penalty
        )

    def test_heavy_ops_dominate(self):
        light = CpuStageCost(flops=1e6)
        heavy = CpuStageCost(heavy_ops=1e6)
        assert cpu_stage_time(heavy, I5_3470) == pytest.approx(
            cpu_stage_time(light, I5_3470) * I5_3470.heavy_op_flops
        )

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            CpuStageCost(flops=-1.0)
