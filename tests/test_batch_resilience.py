"""Batch engine under fault injection: recovery, isolation, degradation."""

import io
import math

import numpy as np
import pytest

from repro.core import BatchEngine, FrameFailure, OPTIMIZED
from repro.cpu import CPUPipeline
from repro.errors import ConfigError, WorkerCrashError
from repro.obs import RunContext
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy
from repro.resilience.breaker import OPEN
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def frames64():
    return [Image.from_array(f)
            for f in images.video_sequence(48, 48, 64, seed=9)]


@pytest.fixture(scope="module")
def frames10(frames64):
    return frames64[:10]


@pytest.fixture(scope="module")
def fault_free_outputs(frames64):
    return BatchEngine(OPTIMIZED, workers=1,
                       keep_outputs=True).run(frames64).outputs


def quiet_obs(faults=None):
    return RunContext.create(log_level="error", log_stream=io.StringIO(),
                             faults=faults)


class TestTransientRecovery:
    def test_20pct_transfer_faults_fully_recovered(self, frames64,
                                                   fault_free_outputs):
        """Acceptance: a 20% transient transfer-fault rate on a 64-frame
        batch completes with zero failed frames, bit-identical to the
        fault-free run, and the retry counter proves recoveries happened.
        """
        plan = FaultPlan.parse("transfer:rate=0.2,kind=transient;seed=0")
        obs = quiet_obs(faults=plan)
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=12, base_delay=0.0),
            fallback=False, isolate=False)
        result = BatchEngine(OPTIMIZED, workers=1, keep_outputs=True,
                             obs=obs, resilience=cfg).run(frames64)
        assert result.ok
        assert result.n_failed == 0
        assert result.dead_letters == []
        assert plan.injected["transfer"] > 0
        assert result.backends() == {"gpu": 64}
        for out, ref in zip(result.outputs, fault_free_outputs):
            assert np.array_equal(out, ref)
        retries = obs.metrics.get("repro_retries_total")
        outcomes = {c.labels["outcome"]: c.value for c in retries.children}
        assert outcomes.get("success", 0) > 0


class TestPermanentDegradation:
    def test_breaker_trips_and_cpu_serves_in_order(self, frames10):
        """Acceptance: permanent GPU faults trip the breaker; every frame
        is still served (flagged cpu-fallback) in submission order.
        """
        plan = FaultPlan.parse("transfer:rate=1.0,kind=permanent;seed=0")
        obs = quiet_obs(faults=plan)
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker_failures=3, breaker_recovery_s=60.0)
        engine = BatchEngine(OPTIMIZED, workers=2, keep_outputs=True,
                             obs=obs, resilience=cfg)
        result = engine.run(frames10)
        assert result.ok
        assert result.n_failed == 0
        assert [f.index for f in result.frames] == list(range(10))
        assert result.backends() == {"cpu-fallback": 10}
        assert engine._breaker.state == OPEN
        cpu = CPUPipeline()
        for out, frame in zip(result.outputs, frames10):
            assert np.array_equal(out, cpu.run(frame).final)
        gauge = obs.metrics.get("repro_breaker_state")
        assert gauge.labels(breaker="batch").value == 1


class TestFrameIsolation:
    def test_mid_batch_failures_isolated_in_order(self, frames10):
        # frame 3 crashes permanently at dispatch; isolation keeps the
        # rest of the batch alive and the ordering intact.
        plan = FaultPlan.parse(
            "worker:rate=1.0,kind=permanent,after=3,max=1;seed=0")
        obs = quiet_obs(faults=plan)
        cfg = ResilienceConfig(retry=RetryPolicy(max_attempts=1),
                               fallback=False, isolate=True)
        result = BatchEngine(OPTIMIZED, workers=1, keep_outputs=True,
                             obs=obs, resilience=cfg).run(frames10)
        assert not result.ok
        assert result.n_failed == 1
        assert [f.index for f in result.frames] == list(range(10))
        failed = [f for f in result.frames if not f.ok]
        assert [f.index for f in failed] == [3]
        assert failed[0].backend == "failed"
        assert math.isnan(result.edge_means[3])
        assert result.outputs[3] is None
        assert all(out is not None
                   for i, out in enumerate(result.outputs) if i != 3)
        assert len(result.dead_letters) == 1
        letter = result.dead_letters[0]
        assert isinstance(letter, FrameFailure)
        assert letter.index == 3
        assert letter.error_type == "WorkerCrashError"
        counter = obs.metrics.get("repro_frames_failed_total")
        assert counter is not None and any(
            c.value == 1 for c in counter.children)

    def test_without_isolation_failure_poisons_the_batch(self, frames10):
        plan = FaultPlan.parse(
            "worker:rate=1.0,kind=permanent,after=3,max=1;seed=0")
        obs = quiet_obs(faults=plan)
        cfg = ResilienceConfig(retry=RetryPolicy(max_attempts=1),
                               fallback=False, isolate=False)
        engine = BatchEngine(OPTIMIZED, workers=1, obs=obs, resilience=cfg)
        with pytest.raises(WorkerCrashError):
            engine.run(frames10)


class TestValidation:
    @pytest.mark.parametrize("timeout", [0, -1.5])
    def test_nonpositive_timeout_rejected(self, timeout):
        with pytest.raises(ConfigError, match="timeout"):
            BatchEngine(OPTIMIZED, timeout=timeout)

    def test_non_callable_source_rejected(self, frames10):
        engine = BatchEngine(OPTIMIZED)
        with pytest.raises(ConfigError, match="callable"):
            engine.run(source=list(frames10))

    def test_frames_and_source_mutually_exclusive(self, frames10):
        engine = BatchEngine(OPTIMIZED)
        with pytest.raises(ConfigError):
            engine.run(frames10, source=lambda: iter(frames10))
        with pytest.raises(ConfigError):
            engine.run()

    def test_bad_resilience_type_rejected(self):
        with pytest.raises(ConfigError):
            BatchEngine(OPTIMIZED, resilience=object())

    def test_source_callable_accepted(self, frames10):
        cfg = ResilienceConfig()
        result = BatchEngine(OPTIMIZED, workers=2, resilience=cfg).run(
            source=lambda: iter(frames10))
        assert result.n_frames == 10
        assert result.ok
