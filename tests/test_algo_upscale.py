"""Upscale stage: border lines, body interpolation, full assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.algo.stages import BORDER_WEIGHTS, UPSCALE_P
from repro.cpu import naive
from repro.errors import ValidationError

from .conftest import assert_allclose


class TestParameterMatrices:
    def test_upscale_p_rows_sum_to_one(self):
        assert np.allclose(UPSCALE_P.sum(axis=1), 1.0)

    def test_upscale_p_shape(self):
        assert UPSCALE_P.shape == (4, 2)

    def test_border_weights_rows_sum_to_one(self):
        assert np.allclose(BORDER_WEIGHTS.sum(axis=1), 1.0)

    def test_phase_zero_is_identity(self):
        assert BORDER_WEIGHTS[0, 0] == 1.0 and BORDER_WEIGHTS[0, 1] == 0.0


class TestBorderLine:
    def test_matches_naive(self, rng):
        line = rng.uniform(0, 255, 8)
        assert_allclose(
            algo.upscale_border_line(line, 32),
            naive.upscale_border_line(line, 32),
            context="border line",
        )

    def test_samples_land_every_fourth(self, rng):
        line = rng.uniform(0, 255, 8)
        out = algo.upscale_border_line(line, 32)
        assert_allclose(out[0::4], line, context="anchor positions")

    def test_last_three_copied(self, rng):
        line = rng.uniform(0, 255, 8)
        out = algo.upscale_border_line(line, 32)
        assert out[29] == out[28] == out[30] == out[31] == line[7]

    def test_interpolation_weights(self):
        line = np.array([0.0, 100.0, 100.0, 100.0])
        out = algo.upscale_border_line(line, 16)
        assert out[1] == pytest.approx(25.0)   # 3/4*0 + 1/4*100
        assert out[2] == pytest.approx(50.0)
        assert out[3] == pytest.approx(75.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            algo.upscale_border_line(np.zeros(8), 31)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            algo.upscale_border_line(np.zeros((4, 4)), 16)


class TestBody:
    def test_matches_naive(self, rng):
        down = rng.uniform(0, 255, (8, 8))
        assert_allclose(algo.upscale_body(down), naive.upscale_body(down),
                        context="upscale body")

    def test_shape(self):
        assert algo.upscale_body(np.zeros((8, 6))).shape == (28, 20)

    def test_constant_preserved(self):
        body = algo.upscale_body(np.full((6, 6), 42.0))
        assert_allclose(body, np.full((20, 20), 42.0), atol=1e-12,
                        context="constant body")

    def test_separable_equals_matrix_form(self, rng):
        """The separable implementation equals the paper's P @ D @ P.T."""
        down = rng.uniform(0, 255, (4, 4))
        body = algo.upscale_body(down)
        for r in range(3):
            for c in range(3):
                block = UPSCALE_P @ down[r:r + 2, c:c + 2] @ UPSCALE_P.T
                assert_allclose(
                    body[4 * r:4 * r + 4, 4 * c:4 * c + 4], block,
                    atol=1e-10, context=f"block ({r},{c})",
                )

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            algo.upscale_body(np.zeros((1, 8)))


class TestFullUpscale:
    def test_matches_naive_on_all_workloads(self, small_planes):
        for name, plane in small_planes.items():
            down = algo.downscale(plane)
            assert_allclose(algo.upscale(down), naive.upscale(down),
                            context=f"upscale({name})")

    def test_shape_restored(self, rng):
        down = rng.uniform(0, 255, (8, 12))
        assert algo.upscale(down).shape == (32, 48)

    def test_constant_roundtrip(self):
        plane = np.full((32, 32), 77.0)
        up = algo.upscale(algo.downscale(plane))
        assert_allclose(up, plane, atol=1e-12, context="constant roundtrip")

    def test_duplicated_border_lines(self, rng):
        """Row pairs are duplicated; the four border columns are owned by
        the (later-written) column lines, so the comparison excludes them
        for the top rows.  Columns are written last and match everywhere."""
        up = algo.upscale(rng.uniform(0, 255, (8, 8)))
        assert_allclose(up[0, 2:-2], up[1, 2:-2],
                        context="duplicated top rows")
        assert_allclose(up[-2, 2:-2], up[-1, 2:-2],
                        context="duplicated bottom rows")
        assert_allclose(up[:, 0], up[:, 1], context="duplicated left cols")
        assert_allclose(up[:, -2], up[:, -1], context="duplicated right cols")

    def test_corner_overwrite_is_redundant(self, rng):
        """The paper's explicit bottom-right 2x2 copy writes values that the
        border-line copy rule already produced — the property that lets the
        GPU border kernel run its four lines in parallel."""
        down = rng.uniform(0, 255, (8, 8))
        up = algo.upscale(down)
        assert up[-1, -1] == up[-2, -2] == up[-1, -2] == up[-2, -1]
        assert up[-1, -1] == pytest.approx(down[-1, -1])

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_output_within_input_range(self, nr, nc, seed):
        """Interpolation with convex weights cannot overshoot the inputs."""
        down = np.random.default_rng(seed).uniform(0, 255, (nr, nc))
        up = algo.upscale(down)
        assert up.min() >= down.min() - 1e-9
        assert up.max() <= down.max() + 1e-9

    def test_border_apply_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            algo.upscale_border_apply(np.zeros((16, 16)), np.zeros((8, 8)))
