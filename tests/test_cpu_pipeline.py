"""The CPU baseline pipeline and its cost model (Fig. 13a shapes)."""

import numpy as np
import pytest

from repro.cpu import CPUPipeline
from repro.cpu.cost import (
    CPU_STAGE_ORDER,
    border_host_time,
    padding_host_time,
    reduction_host_time,
    stage_costs,
    stage_times,
    total_time,
)
from repro.cpu import naive
from repro.errors import ValidationError
from repro.types import Image, SharpnessParams

from .conftest import assert_allclose


class TestCPUPipeline:
    def test_matches_naive(self, small_planes, params):
        pipe = CPUPipeline(params, keep_intermediates=True)
        for name, plane in small_planes.items():
            res = pipe.run(Image.from_array(plane))
            ref = naive.sharpen(plane, params)
            assert_allclose(res.final, ref["final"], atol=1e-9,
                            context=f"cpu pipeline {name}")
            assert res.edge_mean == pytest.approx(ref["edge_mean"],
                                                  rel=1e-12)

    def test_accepts_raw_arrays(self, small_planes):
        res = CPUPipeline().run(small_planes["natural"])
        assert res.final.shape == (32, 32)

    def test_final_u8(self, small_planes):
        res = CPUPipeline().run(small_planes["natural"])
        u8 = res.final_u8()
        assert u8.dtype == np.uint8

    def test_intermediates_optional(self, small_planes):
        lean = CPUPipeline().run(small_planes["natural"])
        assert lean.intermediates == {}
        rich = CPUPipeline(keep_intermediates=True).run(
            small_planes["natural"])
        assert "p_edge" in rich.intermediates

    def test_times_attached(self, small_planes):
        res = CPUPipeline().run(small_planes["natural"])
        assert res.total_time == pytest.approx(total_time(32, 32))


class TestCostModel:
    def test_stage_set_matches_fig13a(self):
        assert set(stage_costs(256, 256)) == set(CPU_STAGE_ORDER)

    def test_strength_and_overshoot_dominate(self):
        """Fig. 13(a): the strength matrix and overshoot control are the
        CPU bottlenecks at every size."""
        for size in (256, 1024, 4096):
            fracs = stage_times(size, size).fractions()
            top2 = sorted(fracs, key=fracs.get, reverse=True)[:2]
            assert set(top2) == {"strength", "overshoot"}, size

    def test_fractions_stable_across_sizes(self):
        """All CPU stages are O(N^2) in the model (only the upscale border
        term is O(N)), so fractions are near-constant across sizes.  The
        paper's Fig. 13(a) additionally shows small stages *shrinking* with
        size — a cache effect the analytic model does not capture
        (recorded as a partial match in EXPERIMENTS.md)."""
        small = stage_times(256, 256).fractions()
        large = stage_times(4096, 4096).fractions()
        for stage in CPU_STAGE_ORDER:
            assert large[stage] == pytest.approx(small[stage], abs=0.02), \
                stage

    def test_total_scales_roughly_with_area(self):
        t1 = total_time(512, 512)
        t2 = total_time(1024, 1024)
        assert t2 == pytest.approx(4 * t1, rel=0.1)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValidationError):
            stage_costs(100, 17)

    def test_helper_times_positive_and_scale(self):
        assert border_host_time(512, 512) > 0
        assert reduction_host_time(2048) == pytest.approx(
            2 * reduction_host_time(1024), rel=0.5)
        assert padding_host_time(1024, 1024) == pytest.approx(
            4 * padding_host_time(512, 512), rel=1e-9)

    def test_params_do_not_change_times(self, small_planes):
        """The model prices work, not parameter values."""
        a = CPUPipeline(SharpnessParams(gain=0.1)).run(
            small_planes["natural"])
        b = CPUPipeline(SharpnessParams(gain=3.0)).run(
            small_planes["natural"])
        assert a.total_time == b.total_time
