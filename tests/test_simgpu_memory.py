"""Device memory: checked arrays, global buffers, local memory."""

import numpy as np
import pytest

from repro.errors import (
    GlobalMemoryError,
    InvalidBufferError,
    LocalMemoryError,
)
from repro.simgpu.memory import CheckedArray, GlobalBuffer, LocalMemory


class TestCheckedArray:
    def test_read_write(self):
        arr = CheckedArray(np.zeros((4, 4)))
        arr[2, 3] = 7.5
        assert arr[2, 3] == 7.5

    def test_negative_index_is_fault(self):
        arr = CheckedArray(np.zeros((4, 4)))
        with pytest.raises(GlobalMemoryError, match="out of bounds"):
            arr[-1, 0]

    def test_overflow_index_is_fault(self):
        arr = CheckedArray(np.zeros((4, 4)))
        with pytest.raises(GlobalMemoryError):
            arr[0, 4]

    def test_wrong_arity_is_fault(self):
        arr = CheckedArray(np.zeros((4, 4, 4)))
        with pytest.raises(GlobalMemoryError, match="indices"):
            arr[0, 0]

    def test_linear_index_into_2d(self):
        """OpenCL buffers are flat: one index = row-major linear address."""
        data = np.arange(12.0).reshape(3, 4)
        arr = CheckedArray(data)
        assert arr[5] == 5.0
        arr[11] = 99.0
        assert data[2, 3] == 99.0

    def test_linear_index_bounds(self):
        arr = CheckedArray(np.zeros((3, 4)))
        with pytest.raises(GlobalMemoryError, match="linear"):
            arr[12]
        with pytest.raises(GlobalMemoryError, match="linear"):
            arr[-1]

    def test_1d_indexing(self):
        arr = CheckedArray(np.arange(5.0))
        assert arr[4] == 4.0
        with pytest.raises(GlobalMemoryError):
            arr[5]

    def test_shape_and_len(self):
        arr = CheckedArray(np.zeros((3, 4)))
        assert arr.shape == (3, 4)
        assert arr.size == 12
        assert len(arr) == 3


class TestGlobalBuffer:
    def test_write_read_roundtrip(self, rng):
        buf = GlobalBuffer((4, 4))
        host = rng.uniform(0, 1, (4, 4))
        buf.write(host)
        out = buf.read()
        assert np.array_equal(out, host)
        out[0, 0] = -1  # read returns a copy
        assert buf.data[0, 0] == host[0, 0]

    def test_transfer_nbytes_u8(self):
        buf = GlobalBuffer((8, 8), transfer_itemsize=1)
        assert buf.nbytes == 64

    def test_transfer_nbytes_default_dtype(self):
        buf = GlobalBuffer((8, 8))  # float64 backing
        assert buf.nbytes == 8 * 8 * 8

    def test_shape_mismatch_rejected(self):
        buf = GlobalBuffer((4, 4))
        with pytest.raises(InvalidBufferError, match="shape"):
            buf.write(np.zeros((4, 5)))

    def test_use_after_release(self):
        buf = GlobalBuffer((4, 4))
        buf.release()
        with pytest.raises(InvalidBufferError, match="release"):
            buf.read()
        with pytest.raises(InvalidBufferError, match="release"):
            buf.write(np.zeros((4, 4)))
        with pytest.raises(InvalidBufferError, match="release"):
            buf.checked()

    def test_invalid_shape_rejected(self):
        with pytest.raises(InvalidBufferError):
            GlobalBuffer((0, 4))

    def test_checked_view_aliases_data(self):
        buf = GlobalBuffer((2, 2))
        view = buf.checked()
        view[1, 1] = 5.0
        assert buf.data[1, 1] == 5.0

    def test_names_unique(self):
        a, b = GlobalBuffer((2, 2)), GlobalBuffer((2, 2))
        assert a.name != b.name


class TestLocalMemory:
    def test_read_write(self):
        lm = LocalMemory(16, capacity_bytes=1024)
        lm[3] = 2.5
        assert lm[3] == 2.5
        assert len(lm) == 16

    def test_capacity_enforced(self):
        with pytest.raises(LocalMemoryError, match="bytes"):
            LocalMemory(1024, capacity_bytes=1024, itemsize=4)

    def test_bounds_fault(self):
        lm = LocalMemory(8, capacity_bytes=1024)
        with pytest.raises(LocalMemoryError):
            lm[8]
        with pytest.raises(LocalMemoryError):
            lm[-1]

    def test_invalid_size(self):
        with pytest.raises(LocalMemoryError):
            LocalMemory(0, capacity_bytes=1024)
