"""Timeline semantics and trace export."""

import json

import pytest

from repro.core import OPTIMIZED, GPUPipeline
from repro.errors import ValidationError
from repro.simgpu.profiling import Event, Timeline
from repro.types import Image
from repro.util import images


class TestEvent:
    def test_duration(self):
        e = Event(name="k", kind="kernel", start=1.0, end=1.5)
        assert e.duration == 0.5

    def test_backwards_event_rejected(self):
        with pytest.raises(ValidationError):
            Event(name="k", kind="kernel", start=2.0, end=1.0)

    def test_stage_defaults_handled_by_timeline(self):
        tl = Timeline()
        e = tl.record("myname", "kernel", 1e-6)
        assert e.stage == "myname"


class TestTimeline:
    def test_clock_advances(self):
        tl = Timeline()
        tl.record("a", "kernel", 1e-3)
        tl.record("b", "transfer", 2e-3)
        assert tl.total == pytest.approx(3e-3)
        assert tl.events[1].start == pytest.approx(1e-3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            Timeline().record("a", "kernel", -1.0)

    def test_by_stage_and_kind(self):
        tl = Timeline()
        tl.record("a", "kernel", 1e-3, stage="sobel")
        tl.record("b", "kernel", 2e-3, stage="sobel")
        tl.record("c", "transfer", 4e-3, stage="data_init")
        assert tl.by_stage() == pytest.approx(
            {"sobel": 3e-3, "data_init": 4e-3})
        assert tl.by_kind() == pytest.approx(
            {"kernel": 3e-3, "transfer": 4e-3})

    def test_of_kind(self):
        tl = Timeline()
        tl.record("a", "kernel", 1e-3)
        tl.record("b", "sync", 1e-6)
        assert [e.name for e in tl.of_kind("sync")] == ["b"]


@pytest.fixture(scope="module")
def pipeline_timeline():
    res = GPUPipeline(OPTIMIZED).run(
        Image.from_array(images.natural_like(64, 64, seed=2)))
    return res.timeline


class TestChromeTrace:
    def test_event_fields(self, pipeline_timeline):
        trace = pipeline_timeline.chrome_trace()
        assert len(trace) == len(pipeline_timeline.events)
        for entry in trace:
            assert entry["ph"] == "X"
            assert entry["dur"] >= 0
            assert entry["cat"] in ("kernel", "transfer", "host", "sync")

    def test_kinds_map_to_rows(self, pipeline_timeline):
        trace = pipeline_timeline.chrome_trace()
        tids = {e["cat"]: e["tid"] for e in trace}
        assert tids["kernel"] != tids["transfer"]

    def test_json_roundtrip(self, pipeline_timeline, tmp_path):
        path = tmp_path / "trace.json"
        pipeline_timeline.write_chrome_trace(path)
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) == len(pipeline_timeline.events)

    def test_timestamps_microseconds(self, pipeline_timeline):
        trace = pipeline_timeline.chrome_trace()
        total_us = pipeline_timeline.total * 1e6
        assert trace[-1]["ts"] + trace[-1]["dur"] == pytest.approx(total_us)


class TestAsciiGantt:
    def test_renders_every_event(self, pipeline_timeline):
        chart = pipeline_timeline.ascii_gantt(40)
        # header + one row per event + total row
        assert len(chart.splitlines()) == len(pipeline_timeline.events) + 2
        assert "#" in chart

    def test_empty_timeline(self):
        assert "empty" in Timeline().ascii_gantt()

    def test_bars_fit_width(self, pipeline_timeline):
        width = 30
        for line in pipeline_timeline.ascii_gantt(width).splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == width
