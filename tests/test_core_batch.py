"""Batch engine: ordering, identity with serial runs, and telemetry."""

import io

import numpy as np
import pytest

from repro.core import BatchEngine, GPUPipeline, OPTIMIZED
from repro.errors import ConfigError, ValidationError
from repro.obs import RunContext
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def frames():
    return [Image.from_array(f)
            for f in images.video_sequence(48, 48, 10, seed=9)]


@pytest.fixture(scope="module")
def serial_finals(frames):
    pipe = GPUPipeline(OPTIMIZED)
    return [pipe.run(f) for f in frames]


class TestBatchEngine:
    def test_outputs_ordered_and_identical_to_serial(self, frames,
                                                     serial_finals):
        result = BatchEngine(OPTIMIZED, workers=3,
                             keep_outputs=True).run(frames)
        assert result.n_frames == len(frames)
        for out, mean, ref in zip(result.outputs, result.edge_means,
                                  serial_finals):
            assert np.array_equal(out, ref.final)
            assert mean == ref.edge_mean

    def test_frame_stats_in_submission_order(self, frames):
        result = BatchEngine(OPTIMIZED, workers=2).run(frames)
        assert [f.index for f in result.frames] == list(range(len(frames)))

    def test_shared_plan_cache_across_workers(self, frames):
        engine = BatchEngine(OPTIMIZED, workers=3)
        result = engine.run(frames)
        stats = result.plan_stats
        # Cold-start can double-miss (two workers race before the first
        # plan lands — put is idempotent), but the cache must then carry
        # nearly every frame.
        assert stats["misses"] <= engine.effective_workers
        assert stats["hits"] >= len(frames) - stats["misses"]
        assert stats["size"] == 1

    def test_throughput_numbers(self, frames):
        result = BatchEngine(OPTIMIZED, workers=2).run(frames)
        assert result.wall_seconds > 0.0
        assert result.frames_per_second == pytest.approx(
            result.n_frames / result.wall_seconds)
        assert result.simulated_fps > 0.0

    def test_accepts_raw_arrays(self):
        result = BatchEngine(OPTIMIZED).run(
            images.video_sequence(32, 32, 3, seed=2))
        assert result.n_frames == 3

    def test_mixed_shapes(self):
        small = images.video_sequence(32, 32, 2, seed=2)
        large = images.video_sequence(48, 48, 2, seed=2)
        result = BatchEngine(OPTIMIZED, keep_outputs=True).run(
            [small[0], large[0], small[1], large[1]])
        shapes = [o.shape for o in result.outputs]
        assert shapes == [(32, 32), (48, 48), (32, 32), (48, 48)]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            BatchEngine(OPTIMIZED).run([])

    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            BatchEngine(OPTIMIZED, workers=0)

    def test_queue_depth_validated(self):
        with pytest.raises(ConfigError, match="starves"):
            BatchEngine(OPTIMIZED, workers=4, queue_depth=2)

    def test_effective_workers_bounded_by_host(self):
        engine = BatchEngine(OPTIMIZED, workers=64)
        assert 1 <= engine.effective_workers <= 64
        assert engine.workers == 64


class TestBatchObservability:
    def test_metrics_exported(self, frames):
        obs = RunContext.create("batch-test", log_level="warning",
                                log_stream=io.StringIO())
        BatchEngine(OPTIMIZED, workers=2, obs=obs).run(frames)
        text = obs.metrics.to_prometheus_text()
        assert "repro_batch_frames_per_second" in text
        assert "repro_batch_wall_seconds" in text
        assert f"repro_batch_frames_total {len(frames)}" in text
        assert 'repro_plan_cache_requests_total{outcome="hit"}' in text
        assert 'repro_plan_cache_requests_total{outcome="miss"}' in text
        assert "repro_bufferpool_idle" in text

    def test_batch_complete_logged(self, frames):
        stream = io.StringIO()
        obs = RunContext.create("batch-test", log_level="info",
                                log_stream=stream)
        BatchEngine(OPTIMIZED, workers=2, obs=obs).run(frames)
        assert "batch.complete" in stream.getvalue()
