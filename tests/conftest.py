"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import Image, SharpnessParams
from repro.util import images as imgs


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def params():
    return SharpnessParams()


def _plane_set(size: int) -> dict[str, np.ndarray]:
    return {
        "natural": imgs.natural_like(size, size, seed=7),
        "checker": imgs.checkerboard(size, size, cell=4),
        "gradient": imgs.gradient(size, size),
        "noise": imgs.noise(size, size, seed=3),
        "constant": np.full((size, size), 128.0),
    }


@pytest.fixture(scope="session")
def small_planes():
    """32x32 planes covering distinct statistics (for scalar-loop checks)."""
    return _plane_set(32)


@pytest.fixture(scope="session")
def medium_planes():
    """64x64 planes (for emulator and pipeline-level checks)."""
    return _plane_set(64)


@pytest.fixture(scope="session")
def small_image(small_planes):
    return Image.from_array(small_planes["natural"])


@pytest.fixture(scope="session")
def medium_image(medium_planes):
    return Image.from_array(medium_planes["natural"])


def assert_allclose(a, b, *, atol=1e-9, context=""):
    __tracebackhide__ = True
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape, (
        f"{context}: shape mismatch {a.shape} vs {b.shape}"
    )
    err = float(np.max(np.abs(a - b))) if a.size else 0.0
    assert err <= atol, f"{context}: max abs diff {err} > {atol}"
