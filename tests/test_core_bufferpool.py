"""Buffer pool: reuse identity, bounds, and cross-frame hygiene."""

import numpy as np
import pytest

from repro.core import BufferPool, GPUPipeline, OPTIMIZED, Workspace
from repro.errors import ConfigError
from repro.types import Image
from repro.util import images


class TestWorkspace:
    def test_shape_validation(self):
        for h, w in ((13, 16), (16, 13), (8, 16), (16, 8)):
            with pytest.raises(ConfigError):
                Workspace(h, w)

    def test_edge_ring_zero_on_creation(self):
        ws = Workspace(16, 20)
        assert not ws.edge.any()  # device buffers are zero-initialized

    def test_reset_restores_edge_ring(self):
        ws = Workspace(16, 16)
        ws.edge[...] = 7.0
        ws.reset()
        assert not ws.edge[0].any() and not ws.edge[-1].any()
        assert not ws.edge[:, 0].any() and not ws.edge[:, -1].any()
        # The interior is recycled dirty by design.
        assert ws.edge[1:-1, 1:-1].any()

    def test_nbytes_positive_and_scales(self):
        assert Workspace(32, 32).nbytes < Workspace(64, 64).nbytes


class TestBufferPool:
    def test_checkout_reuses_checked_in_workspace(self):
        pool = BufferPool()
        ws = pool.checkout(16, 16)
        pool.checkin(ws)
        assert pool.checkout(16, 16) is ws
        stats = pool.stats()
        assert stats == {"in_use": 1, "idle": 0, "created": 1,
                         "reused": 1, "discarded": 0}

    def test_shapes_are_segregated(self):
        pool = BufferPool()
        ws = pool.checkout(16, 16)
        pool.checkin(ws)
        other = pool.checkout(32, 32)
        assert other is not ws
        assert pool.stats()["created"] == 2

    def test_size_bound_discards_surplus(self):
        pool = BufferPool(max_entries=2)
        out = [pool.checkout(16, 16) for _ in range(4)]
        for ws in out:
            pool.checkin(ws)
        stats = pool.stats()
        assert stats["idle"] == 2
        assert stats["discarded"] == 2

    def test_max_entries_validated(self):
        with pytest.raises(ConfigError):
            BufferPool(max_entries=0)

    def test_lease_context_manager(self):
        pool = BufferPool()
        with pool.lease(16, 16) as ws:
            assert isinstance(ws, Workspace)
            assert pool.stats()["in_use"] == 1
        assert pool.stats()["in_use"] == 0
        assert pool.idle_count() == 1

    def test_lease_checks_in_on_error(self):
        pool = BufferPool()
        with pytest.raises(RuntimeError):
            with pool.lease(16, 16):
                raise RuntimeError("boom")
        assert pool.stats()["in_use"] == 0


class TestPoolHygiene:
    """A recycled (dirty) workspace must never leak one frame into the
    next: every cell the executor reads is either written first or part of
    the zeroed pEdge ring."""

    def test_poisoned_workspace_produces_identical_frames(self):
        frames = [Image.from_array(f)
                  for f in images.video_sequence(32, 32, 2, seed=5)]
        pipe = GPUPipeline(OPTIMIZED)
        ref = [pipe.run(f).final for f in frames]  # miss + clean hit

        poisoned = GPUPipeline(OPTIMIZED)
        poisoned.run(frames[0])  # capture the plan, park a workspace
        for ws_list in poisoned.buffer_pool._idle.values():
            for ws in ws_list:
                for name in ("down", "up", "edge", "colsum", "rows", "tcol",
                             "urow", "gx", "gy", "err", "strength",
                             "prelim", "mnc", "mxc", "mn", "mx"):
                    getattr(ws, name)[...] = 1e9
                ws.over[...] = True
                ws.under[...] = True
        for f, expected in zip(frames, ref):
            assert np.array_equal(poisoned.run(f).final, expected)

    def test_pool_steady_state_allocates_no_workspaces(self):
        frames = images.video_sequence(32, 32, 6, seed=5)
        pipe = GPUPipeline(OPTIMIZED)
        for f in frames:
            pipe.run(f)
        stats = pipe.buffer_pool.stats()
        assert stats["created"] == 1
        # First run is the plan miss (generic path, no workspace); the
        # second creates the pool's single workspace; the rest reuse it.
        assert stats["reused"] == len(frames) - 2
