"""The per-work-item emulator: identities, barriers, lock-step semantics."""

import numpy as np
import pytest

from repro.errors import BarrierDivergenceError, InvalidWorkGroupError
from repro.simgpu.device import W8000
from repro.simgpu.emulator import BARRIER, WF_SYNC, WorkItemCtx, run_kernel
from repro.simgpu.memory import GlobalBuffer


class TestWorkItemCtx:
    def test_linear_local_id_2d(self):
        ctx = WorkItemCtx(global_id=(3, 5), local_id=(3, 1),
                          group_id=(0, 1), local_size=(4, 4),
                          global_size=(4, 8))
        # OpenCL: lid0 + lid1 * ls0
        assert ctx.local_linear_id == 3 + 1 * 4

    def test_num_groups(self):
        ctx = WorkItemCtx(global_id=(0, 0), local_id=(0, 0),
                          group_id=(0, 0), local_size=(4, 4),
                          global_size=(16, 8))
        assert ctx.get_num_groups(0) == 4
        assert ctx.get_num_groups(1) == 2

    def test_wavefront_assignment(self):
        ctx = WorkItemCtx(global_id=(0, 9), local_id=(0, 9),
                          group_id=(0, 0), local_size=(16, 16),
                          global_size=(16, 16))
        # linear lid = 144 -> wavefront 2 on a 64-wide device
        assert ctx.wavefront(64) == 2


class TestRunKernelBasics:
    def test_identity_kernel_covers_all_items(self):
        buf = GlobalBuffer((8, 8))

        def kernel(ctx, dst):
            dst[ctx.get_global_id(1), ctx.get_global_id(0)] = (
                ctx.get_global_id(1) * 8 + ctx.get_global_id(0)
            )

        stats = run_kernel(kernel, (8, 8), (4, 4), (buf.checked(),),
                           device=W8000)
        assert stats.n_groups == 4
        assert stats.n_work_items == 64
        assert np.array_equal(buf.data,
                              np.arange(64.0).reshape(8, 8))

    def test_group_ids_consistent(self):
        buf = GlobalBuffer((4, 8))

        def kernel(ctx, dst):
            dst[ctx.get_global_id(1), ctx.get_global_id(0)] = (
                ctx.get_group_id(0) + 10 * ctx.get_group_id(1)
            )

        run_kernel(kernel, (8, 4), (4, 4), (buf.checked(),), device=W8000)
        assert np.all(buf.data[:4, :4] == buf.data[0, 0])
        assert buf.data[0, 4] == buf.data[0, 0] + 1

    def test_invalid_local_size_rejected(self):
        def kernel(ctx):
            pass

        with pytest.raises(InvalidWorkGroupError, match="divisible"):
            run_kernel(kernel, (10,), (4,), (), device=W8000)

    def test_workgroup_limit_enforced(self):
        def kernel(ctx):
            pass

        with pytest.raises(InvalidWorkGroupError, match="limit|exceeds"):
            run_kernel(kernel, (1024,), (512,), (), device=W8000)

    def test_rank_mismatch_rejected(self):
        def kernel(ctx):
            pass

        with pytest.raises(InvalidWorkGroupError):
            run_kernel(kernel, (8, 8), (4,), (), device=W8000)


class TestBarriers:
    def test_barrier_orders_local_memory(self):
        """Classic two-phase pattern: all items write, barrier, all read a
        neighbour's slot.  Without the barrier release logic this would read
        unwritten values."""
        out = GlobalBuffer((16,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid * 2)
            yield BARRIER
            dst[ctx.get_global_id(0)] = scratch[(lid + 1) % 16]

        stats = run_kernel(kernel, (16,), (16,), (out.checked(),),
                           device=W8000, local_mem={"scratch": 16})
        expected = [((i + 1) % 16) * 2 for i in range(16)]
        assert np.array_equal(out.data, expected)
        assert stats.barrier_releases == 1

    def test_divergent_barrier_detected(self):
        def kernel(ctx):
            if ctx.get_local_id(0) < 8:
                yield BARRIER

        with pytest.raises(BarrierDivergenceError):
            run_kernel(kernel, (16,), (16,), (), device=W8000)

    def test_unequal_barrier_counts_detected(self):
        def kernel(ctx):
            yield BARRIER
            if ctx.get_local_id(0) == 0:
                yield BARRIER

        with pytest.raises(BarrierDivergenceError):
            run_kernel(kernel, (16,), (16,), (), device=W8000)

    def test_barriers_are_per_group(self):
        """Groups execute independently; barriers never span groups."""
        out = GlobalBuffer((8,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(ctx.get_group_id(0))
            yield BARRIER
            dst[ctx.get_global_id(0)] = scratch[(lid + 1) % 4]

        stats = run_kernel(kernel, (8,), (4,), (out.checked(),),
                           device=W8000, local_mem={"scratch": 4})
        assert stats.barrier_releases == 2  # one per group
        assert np.array_equal(out.data, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_local_memory_isolated_between_groups(self):
        """A group must never observe another group's local writes."""
        out = GlobalBuffer((8,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            if lid == 0:
                # Fresh allocation: must read as zero even though group 0
                # wrote 99 into its own scratch.
                dst[ctx.get_global_id(0)] = scratch[1]
                scratch[1] = 99.0
            yield BARRIER

        run_kernel(kernel, (8,), (4,), (out.checked(),), device=W8000,
                   local_mem={"scratch": 4})
        assert np.all(out.data[::4] == 0.0)


class TestWavefrontSync:
    def test_wf_sync_within_wavefront(self):
        """Items of one wavefront see each other's writes across WF_SYNC."""
        dev = W8000.with_(wavefront_size=8, max_workgroup_size=8)
        out = GlobalBuffer((8,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid)
            yield WF_SYNC
            dst[lid] = scratch[(lid + 1) % 8]

        run_kernel(kernel, (8,), (8,), (out.checked(),), device=dev,
                   local_mem={"scratch": 8})
        assert np.array_equal(out.data, [(i + 1) % 8 for i in range(8)])

    def test_wf_sync_does_not_span_wavefronts(self):
        """The hazard the paper's unrolled kernels rely on avoiding: WF_SYNC
        is NOT a workgroup barrier.  Wavefront 0 runs to completion before
        wavefront 1 starts, so reading wavefront 1's slot yields the stale
        (zero) value."""
        dev = W8000.with_(wavefront_size=4, max_workgroup_size=8)
        out = GlobalBuffer((8,))

        def kernel(ctx, dst, scratch):
            lid = ctx.get_local_id(0)
            scratch[lid] = float(lid + 1)
            yield WF_SYNC
            dst[lid] = scratch[(lid + 4) % 8]

        run_kernel(kernel, (8,), (8,), (out.checked(),), device=dev,
                   local_mem={"scratch": 8})
        # Wavefront 0 (lids 0-3) reads slots 4-7 before wavefront 1 wrote
        # them -> zeros.  Wavefront 1 reads slots 0-3 after wavefront 0 -> ok.
        assert np.array_equal(out.data[:4], [0, 0, 0, 0])
        assert np.array_equal(out.data[4:], [1, 2, 3, 4])

    def test_mixed_sync_points_detected(self):
        def kernel(ctx):
            if ctx.get_local_id(0) < 32:
                yield BARRIER
            else:
                yield WF_SYNC

        with pytest.raises(BarrierDivergenceError):
            run_kernel(kernel, (64,), (64,), (), device=W8000)


class TestStats:
    def test_local_mem_bytes_reported(self):
        def kernel(ctx, scratch):
            yield BARRIER

        stats = run_kernel(kernel, (64,), (64,), (), device=W8000,
                           local_mem={"scratch": 128})
        assert stats.local_mem_bytes == 128 * 4

    def test_plain_function_kernels_supported(self):
        out = GlobalBuffer((4,))

        def kernel(ctx, dst):
            dst[ctx.get_global_id(0)] = 1.0

        stats = run_kernel(kernel, (4,), (4,), (out.checked(),),
                           device=W8000)
        assert stats.barrier_releases == 0
        assert np.all(out.data == 1.0)
