"""CLI hardening: unusable input exits 2 with one structured line."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.util.io import write_pgm


@pytest.fixture
def src(tmp_path, rng):
    path = tmp_path / "in.pgm"
    write_pgm(path, np.rint(rng.uniform(0, 255, (64, 64))))
    return path


def run(capsys, argv):
    rc = cli_main(argv)
    captured = capsys.readouterr()
    return rc, captured.err


class TestExitTwo:
    def test_missing_input_file(self, tmp_path, capsys):
        rc, err = run(capsys, ["sharpen", str(tmp_path / "nope.pgm"),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.count("\n") == 1          # exactly one line
        assert err.startswith("error: exit=2 kind=")
        assert "Traceback" not in err

    def test_corrupt_image(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.pgm"
        bad.write_bytes(b"P5\n64 64\n255\n\x00\x01")  # truncated raster
        rc, err = run(capsys, ["sharpen", str(bad),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_directory_as_input(self, tmp_path, capsys):
        trap = tmp_path / "dir.pgm"
        trap.mkdir()
        rc, err = run(capsys, ["sharpen", str(trap),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.startswith("error: exit=2")

    def test_unsupported_format_keeps_exit_one(self, tmp_path, capsys):
        # pinned behavior: a *valid path* in a format we don't speak is a
        # normal error (1), not unusable input (2)
        weird = tmp_path / "in.bmp"
        weird.write_bytes(b"BM")
        rc, err = run(capsys, ["sharpen", str(weird),
                               str(tmp_path / "out.pgm")])
        assert rc == 1

    @pytest.mark.parametrize("spec", [
        "nosuchsite:rate=0.5",
        "transfer:rate=2.0",
        "transfer:rate=0.5;seed=x",
        "transfer",
    ])
    def test_bad_fault_spec(self, src, tmp_path, capsys, spec):
        rc, err = run(capsys, ["sharpen", str(src),
                               str(tmp_path / "out.pgm"),
                               "--inject-faults", spec])
        assert rc == 2
        assert err.count("\n") == 1
        assert "kind=FaultSpecError" in err
        assert "Traceback" not in err

    def test_batch_with_unreadable_frame(self, src, tmp_path, capsys):
        frames = tmp_path / "frames"
        frames.mkdir()
        (frames / "f0.pgm").write_bytes(src.read_bytes())
        (frames / "f1.pgm").write_bytes(b"garbage, not a pgm")
        out = tmp_path / "out"
        rc, err = run(capsys, ["sharpen", str(frames), str(out), "--batch",
                               "--workers", "1"])
        assert rc == 2
        assert "error: exit=2" in err


class TestDurableJobExitCodes:
    """The exit-code contract (docs/lifecycle.md): 0 ok, 1 runtime,
    2 usage, 3 drained-incomplete, 4 aborted.  Codes 3 and 4 need real
    signals and live in test_lifecycle_kill_resume.py."""

    @pytest.fixture
    def frames(self, tmp_path, rng):
        src = tmp_path / "frames"
        src.mkdir()
        for i in range(3):
            write_pgm(src / f"f{i}.pgm",
                      np.rint(rng.uniform(0, 255, (32, 32))))
        return src

    def test_resume_missing_dir_exits_2(self, tmp_path, capsys):
        rc, err = run(capsys, ["sharpen", "--resume",
                               str(tmp_path / "nowhere")])
        assert rc == 2
        assert "not a job directory" in err

    def test_resume_with_positionals_exits_2(self, tmp_path, frames,
                                             capsys):
        rc, err = run(capsys, ["sharpen", str(frames / "*.pgm"),
                               str(tmp_path / "out"),
                               "--resume", str(tmp_path / "job")])
        assert rc == 2

    def test_job_dir_without_inputs_exits_2(self, tmp_path, capsys):
        rc, err = run(capsys, ["sharpen", "--job-dir",
                               str(tmp_path / "job")])
        assert rc == 2

    def test_missing_positionals_exit_2(self, capsys):
        rc, err = run(capsys, ["sharpen"])
        assert rc == 2
        assert "required" in err

    def test_reusing_job_dir_without_resume_exits_2(self, tmp_path,
                                                    frames, capsys):
        argv = ["sharpen", str(frames / "*.pgm"), str(tmp_path / "out"),
                "--batch", "--job-dir", str(tmp_path / "job"),
                "--workers", "1"]
        rc, _ = run(capsys, argv)
        assert rc == 0
        rc, err = run(capsys, argv)
        assert rc == 2
        assert "already holds a journal" in err

    def test_dead_letters_exit_1_then_replay_exits_0(self, tmp_path,
                                                     frames, capsys):
        rc, err = run(capsys, [
            "sharpen", str(frames / "*.pgm"), str(tmp_path / "out"),
            "--batch", "--job-dir", str(tmp_path / "job"), "--workers",
            "1", "--inject-faults",
            "worker:rate=1.0,max=1,kind=permanent;seed=3",
        ])
        assert rc == 1
        assert "failed frame" in err
        rc, err = run(capsys, ["sharpen", "--replay-failures",
                               str(tmp_path / "job")])
        assert rc == 0
        assert len(list((tmp_path / "out").glob("*.pgm"))) == 3

    def test_durable_success_exits_0_and_writes_health(self, tmp_path,
                                                       frames, capsys):
        health = tmp_path / "health.json"
        rc, err = run(capsys, [
            "sharpen", str(frames / "*.pgm"), str(tmp_path / "out"),
            "--batch", "--job-dir", str(tmp_path / "job"), "--workers",
            "1", "--health-out", str(health), "--hang-timeout", "60",
        ])
        assert rc == 0
        import json
        snap = json.loads(health.read_text())
        assert snap["state"] == "completed"
        assert snap["completed"] == 3


class TestStillWorks:
    def test_resilient_sharpen_with_faults_succeeds(self, src, tmp_path,
                                                    capsys):
        out = tmp_path / "out.pgm"
        rc = cli_main([
            "sharpen", str(src), str(out), "--resilient",
            "--inject-faults", "transfer:rate=0.05,kind=transient;seed=3",
            "--log-level", "error",
        ])
        assert rc == 0
        assert out.exists()

    def test_plain_sharpen_unaffected(self, src, tmp_path, capsys):
        out = tmp_path / "out.pgm"
        assert cli_main(["sharpen", str(src), str(out)]) == 0
        assert out.exists()
