"""CLI hardening: unusable input exits 2 with one structured line."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.util.io import write_pgm


@pytest.fixture
def src(tmp_path, rng):
    path = tmp_path / "in.pgm"
    write_pgm(path, np.rint(rng.uniform(0, 255, (64, 64))))
    return path


def run(capsys, argv):
    rc = cli_main(argv)
    captured = capsys.readouterr()
    return rc, captured.err


class TestExitTwo:
    def test_missing_input_file(self, tmp_path, capsys):
        rc, err = run(capsys, ["sharpen", str(tmp_path / "nope.pgm"),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.count("\n") == 1          # exactly one line
        assert err.startswith("error: exit=2 kind=")
        assert "Traceback" not in err

    def test_corrupt_image(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.pgm"
        bad.write_bytes(b"P5\n64 64\n255\n\x00\x01")  # truncated raster
        rc, err = run(capsys, ["sharpen", str(bad),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_directory_as_input(self, tmp_path, capsys):
        trap = tmp_path / "dir.pgm"
        trap.mkdir()
        rc, err = run(capsys, ["sharpen", str(trap),
                               str(tmp_path / "out.pgm")])
        assert rc == 2
        assert err.startswith("error: exit=2")

    def test_unsupported_format_keeps_exit_one(self, tmp_path, capsys):
        # pinned behavior: a *valid path* in a format we don't speak is a
        # normal error (1), not unusable input (2)
        weird = tmp_path / "in.bmp"
        weird.write_bytes(b"BM")
        rc, err = run(capsys, ["sharpen", str(weird),
                               str(tmp_path / "out.pgm")])
        assert rc == 1

    @pytest.mark.parametrize("spec", [
        "nosuchsite:rate=0.5",
        "transfer:rate=2.0",
        "transfer:rate=0.5;seed=x",
        "transfer",
    ])
    def test_bad_fault_spec(self, src, tmp_path, capsys, spec):
        rc, err = run(capsys, ["sharpen", str(src),
                               str(tmp_path / "out.pgm"),
                               "--inject-faults", spec])
        assert rc == 2
        assert err.count("\n") == 1
        assert "kind=FaultSpecError" in err
        assert "Traceback" not in err

    def test_batch_with_unreadable_frame(self, src, tmp_path, capsys):
        frames = tmp_path / "frames"
        frames.mkdir()
        (frames / "f0.pgm").write_bytes(src.read_bytes())
        (frames / "f1.pgm").write_bytes(b"garbage, not a pgm")
        out = tmp_path / "out"
        rc, err = run(capsys, ["sharpen", str(frames), str(out), "--batch",
                               "--workers", "1"])
        assert rc == 2
        assert "error: exit=2" in err


class TestStillWorks:
    def test_resilient_sharpen_with_faults_succeeds(self, src, tmp_path,
                                                    capsys):
        out = tmp_path / "out.pgm"
        rc = cli_main([
            "sharpen", str(src), str(out), "--resilient",
            "--inject-faults", "transfer:rate=0.05,kind=transient;seed=3",
            "--log-level", "error",
        ])
        assert rc == 0
        assert out.exists()

    def test_plain_sharpen_unaffected(self, src, tmp_path, capsys):
        out = tmp_path / "out.pgm"
        assert cli_main(["sharpen", str(src), str(out)]) == 0
        assert out.exists()
