"""The quality study: preset/workload shape assertions."""

import pytest

from repro.core import OPTIMIZED, GPUPipeline
from repro.experiments import quality
from repro.types import SharpnessParams
from repro.util.metrics import sharpness_report
from repro.experiments.runner import make_image


@pytest.fixture(scope="module")
def rows():
    return quality.run(size=128, workloads=("natural", "checker"))


class TestQualityStudy:
    def test_rows_cover_grid(self, rows):
        assert len(rows) == 2 * len(quality.PRESETS)

    def test_edge_gain_monotone_in_gain(self):
        """At fixed overshoot, more gain means more edge energy."""
        image = make_image(128, "natural")
        gains = (0.5, 1.0, 2.0, 3.5)
        measured = []
        for g in gains:
            params = SharpnessParams(gain=g, gamma=0.5, strength_max=8.0,
                                     overshoot=1.0)
            res = GPUPipeline(OPTIMIZED, params).run(image)
            measured.append(
                sharpness_report(image.plane, res.final)["edge_gain"])
        assert measured == sorted(measured)

    def test_ringing_free_has_zero_halos(self, rows):
        for r in rows:
            if r.preset == "ringing-free":
                assert r.overshoot_fraction == 0.0

    def test_aggressive_more_halos_than_mild(self, rows):
        by = {(r.workload, r.preset): r for r in rows}
        for workload in ("natural", "checker"):
            assert by[(workload, "aggressive")].overshoot_fraction >= \
                by[(workload, "mild")].overshoot_fraction

    def test_fidelity_falls_as_sharpening_strengthens(self):
        image = make_image(128, "natural")
        psnrs = []
        for g in (0.5, 1.5, 3.0):
            params = SharpnessParams(gain=g, strength_max=8.0,
                                     overshoot=1.0)
            res = GPUPipeline(OPTIMIZED, params).run(image)
            psnrs.append(sharpness_report(image.plane, res.final)["psnr"])
        assert psnrs == sorted(psnrs, reverse=True)

    def test_report_renders(self, rows):
        text = quality.report(rows)
        assert "Quality study" in text
        assert "ringing-free" in text

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["quality"]) == 0
        assert "Quality" in capsys.readouterr().out
