"""The GPU pipeline under every optimization configuration."""

import itertools

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.core import BASE, LADDER, OPTIMIZED, GPUPipeline
from repro.core.config import OptimizationFlags
from repro.core.metrics import GPU_STAGE_ORDER
from repro.types import Image, SharpnessParams

from .conftest import assert_allclose


@pytest.fixture(scope="module")
def image():
    from repro.util import images
    return Image.from_array(images.natural_like(64, 64, seed=21))


@pytest.fixture(scope="module")
def reference(image):
    return algo.sharpen(image.plane)


class TestOutputCorrectness:
    @pytest.mark.parametrize("step", [name for name, _ in LADDER])
    def test_every_ladder_step_matches_reference(self, image, reference,
                                                 step):
        flags = dict(LADDER)[step]
        res = GPUPipeline(flags).run(image)
        assert_allclose(res.final, reference["final"], atol=1e-9,
                        context=f"ladder step {step}")
        assert res.edge_mean == pytest.approx(reference["edge_mean"],
                                              rel=1e-9)

    @pytest.mark.parametrize("transfer_mode,fuse,red_gpu,vec", list(
        itertools.product(["map", "rw"], [False, True], [False, True],
                          [False, True])
    ))
    def test_flag_grid_matches_reference(self, image, reference,
                                         transfer_mode, fuse, red_gpu, vec):
        """4-factor sweep: every combination produces the same image."""
        flags = OptimizationFlags(
            transfer_mode=transfer_mode,
            transfer_padded_only=vec,  # vectorize requires the padded path
            pad_on_transfer=False,
            fuse_sharpness=fuse,
            reduction_on_gpu=red_gpu,
            vectorize=vec,
        )
        res = GPUPipeline(flags).run(image)
        assert_allclose(res.final, reference["final"], atol=1e-9,
                        context=f"flags {flags.describe()}")

    @pytest.mark.parametrize("border_place", ["cpu", "gpu", "auto"])
    def test_border_placements_match(self, image, reference, border_place):
        flags = OPTIMIZED.with_(border_place=border_place)
        res = GPUPipeline(flags).run(image)
        assert_allclose(res.final, reference["final"], atol=1e-9,
                        context=f"border {border_place}")

    @pytest.mark.parametrize("unroll", [0, 1, 2])
    def test_reduction_unrolls_match(self, image, reference, unroll):
        flags = OPTIMIZED.with_(reduction_unroll=unroll)
        res = GPUPipeline(flags).run(image)
        assert res.edge_mean == pytest.approx(reference["edge_mean"],
                                              rel=1e-9)

    @pytest.mark.parametrize("stage2", ["cpu", "gpu", "auto"])
    def test_reduction_stage2_placements_match(self, image, reference,
                                               stage2):
        flags = OPTIMIZED.with_(reduction_stage2=stage2)
        res = GPUPipeline(flags).run(image)
        assert res.edge_mean == pytest.approx(reference["edge_mean"],
                                              rel=1e-9)

    def test_final_u8_in_range(self, image):
        u8 = GPUPipeline(OPTIMIZED).run(image).final_u8()
        assert u8.dtype == np.uint8
        assert u8.shape == image.shape


class TestEmulateMode:
    @pytest.mark.parametrize("step", ["base", "+others"])
    def test_emulated_pipeline_matches_reference(self, image, reference,
                                                 step):
        flags = dict(LADDER)[step]
        res = GPUPipeline(flags, mode="emulate").run(image)
        assert_allclose(res.final, reference["final"], atol=1e-9,
                        context=f"emulate {step}")

    def test_emulate_and_functional_same_timeline(self, image):
        """Execution mode changes how kernels run, not what they cost."""
        f = GPUPipeline(OPTIMIZED, mode="functional").run(image)
        e = GPUPipeline(OPTIMIZED, mode="emulate").run(image)
        assert f.total_time == pytest.approx(e.total_time, rel=1e-12)


class TestTimeline:
    def test_stage_breakdown_sums_to_total(self, image):
        for _, flags in LADDER:
            res = GPUPipeline(flags).run(image)
            assert res.times.total == pytest.approx(res.total_time,
                                                    rel=1e-9)

    def test_stages_use_fig13_vocabulary(self, image):
        res = GPUPipeline(OPTIMIZED).run(image)
        assert set(res.times.times) <= set(GPU_STAGE_ORDER)
        res_base = GPUPipeline(BASE).run(image)
        assert set(res_base.times.times) <= set(GPU_STAGE_ORDER)

    def test_base_launches_six_kernels(self, image):
        """Section IV: downscale, center, pError, Sobel, prelim, overshoot
        (reduction and border on the CPU)."""
        res = GPUPipeline(BASE).run(image)
        assert res.kernel_launches == 6
        assert not res.border_ran_on_gpu

    def test_fused_pipeline_launches_fewer_kernels(self, image):
        base = GPUPipeline(BASE).run(image)
        fused = GPUPipeline(BASE.with_(
            transfer_mode="rw", transfer_padded_only=True,
            fuse_sharpness=True)).run(image)
        assert fused.kernel_launches == base.kernel_launches - 2

    def test_clfinish_removed_by_eliminate_sync(self, image):
        with_sync = GPUPipeline(OPTIMIZED.with_(eliminate_sync=False)) \
            .run(image)
        without = GPUPipeline(OPTIMIZED).run(image)
        syncs = [e for e in with_sync.timeline.events if e.kind == "sync"]
        assert len(syncs) == with_sync.kernel_launches
        assert not [e for e in without.timeline.events if e.kind == "sync"]
        assert without.total_time < with_sync.total_time

    def test_monotone_timeline(self, image):
        res = GPUPipeline(OPTIMIZED).run(image)
        events = res.timeline.events
        for prev, cur in zip(events, events[1:]):
            assert cur.start == pytest.approx(prev.end)

    def test_intermediates_kept_on_request(self, image):
        res = GPUPipeline(OPTIMIZED, keep_intermediates=True).run(image)
        assert set(res.intermediates) == {"downscaled", "upscaled",
                                          "p_edge"}
        assert_allclose(res.intermediates["downscaled"],
                        algo.downscale(image.plane), atol=1e-9,
                        context="kept downscaled")


class TestPlacementBehaviour:
    def test_small_image_auto_border_on_cpu(self, image):
        res = GPUPipeline(OPTIMIZED).run(image)  # 64x64 < 768
        assert not res.border_ran_on_gpu

    def test_forced_gpu_border(self, image):
        res = GPUPipeline(OPTIMIZED.with_(border_place="gpu")).run(image)
        assert res.border_ran_on_gpu
        assert res.kernel_launches >= 6

    def test_auto_stage2_small_image_on_cpu(self, image):
        res = GPUPipeline(OPTIMIZED).run(image)
        assert not res.reduction_stage2_on_gpu

    def test_forced_gpu_stage2(self, image):
        res = GPUPipeline(OPTIMIZED.with_(reduction_stage2="gpu")) \
            .run(image)
        assert res.reduction_stage2_on_gpu

    def test_base_cpu_reduction_costs_pedge_transfer(self):
        """The Fig. 16 mechanism: CPU reduction ships the whole pEdge
        matrix, so the GPU path wins once the image is non-trivial (at
        64x64 the CPU path legitimately wins — the same small-size effect
        the paper reports)."""
        from repro.util import images
        big = Image.from_array(images.natural_like(256, 256, seed=1))
        cpu_red = GPUPipeline(OPTIMIZED.with_(reduction_on_gpu=False)) \
            .run(big)
        gpu_red = GPUPipeline(OPTIMIZED).run(big)
        t_cpu = cpu_red.times.times["reduction"]
        t_gpu = gpu_red.times.times["reduction"]
        assert t_cpu > t_gpu


class TestParamsAndInputs:
    def test_custom_params_respected(self, image):
        strong = GPUPipeline(
            OPTIMIZED,
            SharpnessParams(gain=3.0, overshoot=1.0, strength_max=8.0),
        ).run(image)
        weak = GPUPipeline(
            OPTIMIZED, SharpnessParams(gain=0.0),
        ).run(image)
        # gain=0 -> no edge boost at all; gain=3 sharpens hard.
        assert not np.allclose(strong.final, weak.final)
        assert_allclose(
            weak.final,
            algo.sharpen(image.plane, SharpnessParams(gain=0.0))["final"],
            atol=1e-9, context="gain=0 matches reference",
        )

    def test_accepts_raw_array(self):
        from repro.util import images
        plane = images.gradient(32, 32)
        res = GPUPipeline(OPTIMIZED).run(plane)
        assert res.final.shape == (32, 32)

    def test_rectangular_image(self):
        from repro.util import images
        plane = images.natural_like(32, 64, seed=3)
        res = GPUPipeline(OPTIMIZED).run(plane)
        assert_allclose(res.final, algo.sharpen(plane)["final"], atol=1e-9,
                        context="rectangular")
