"""RunContext + pipeline integration: stage metrics, fractions, traces."""

import io

import pytest

from repro import BASE, CPUPipeline, GPUPipeline, OPTIMIZED, RunContext
from repro.core.metrics import GPU_STAGE_ORDER
from repro.cpu.cost import CPU_STAGE_ORDER
from repro.experiments import fig13_fractions
from repro.obs import NULL_CONTEXT, STAGE_SECONDS
from repro.util import images


def make_obs(**kw):
    kw.setdefault("log_level", "warning")
    kw.setdefault("log_stream", io.StringIO())
    return RunContext.create(**kw)


class TestRunContext:
    def test_create_generates_run_id_and_binds_it(self):
        stream = io.StringIO()
        obs = RunContext.create(log_level="info", log_stream=stream)
        obs.log.info("ev")
        assert f"run={obs.run_id}" in stream.getvalue()

    def test_observe_stages_and_fractions(self):
        obs = make_obs()
        obs.observe_stages("gpu", {"sobel": 0.003, "reduction": 0.001})
        fracs = obs.stage_fractions("gpu")
        assert fracs == {"sobel": pytest.approx(0.75),
                         "reduction": pytest.approx(0.25)}

    def test_declare_creates_empty_series_not_observations(self):
        obs = make_obs()
        obs.observe_stages("gpu", {"sobel": 1.0}, declare=("padding",))
        fam = obs.metrics.get(STAGE_SECONDS)
        padding = fam.labels(pipeline="gpu", stage="padding")
        assert padding.count == 0
        # Declared-but-empty stages exist in the export yet do not skew
        # fractions.
        assert "padding" not in obs.stage_fractions("gpu")
        assert 'stage="padding"' in obs.metrics.to_prometheus_text()

    def test_fractions_of_unknown_pipeline_empty(self):
        assert make_obs().stage_fractions("nope") == {}

    def test_disabled_context_is_inert(self):
        NULL_CONTEXT.observe_stages("gpu", {"sobel": 1.0})
        NULL_CONTEXT.record_run("gpu", 1.0)
        with NULL_CONTEXT.span("s"):
            pass
        assert NULL_CONTEXT.metrics.to_prometheus_text() == ""
        assert NULL_CONTEXT.trace.spans == []


class TestGPUPipelineIntegration:
    def test_all_eight_stages_exported(self):
        obs = make_obs()
        GPUPipeline(OPTIMIZED, obs=obs).run(
            images.natural_like(64, 64, seed=0))
        text = obs.metrics.to_prometheus_text()
        for stage in GPU_STAGE_ORDER:
            assert f'stage="{stage}"' in text

    def test_fractions_match_result_times(self):
        obs = make_obs()
        res = GPUPipeline(BASE, obs=obs, label="base").run(
            images.natural_like(64, 64, seed=0))
        assert obs.stage_fractions("base") == pytest.approx(
            res.times.fractions())

    def test_trace_has_host_spans_and_device_events(self):
        obs = make_obs()
        GPUPipeline(OPTIMIZED, obs=obs).run(
            images.natural_like(64, 64, seed=0))
        events = obs.trace.chrome_trace()["traceEvents"]
        host = [e for e in events if e.get("pid") == 1 and e["ph"] == "X"]
        device = [e for e in events
                  if e.get("pid", 1) != 1 and e["ph"] == "X"]
        assert any(e["name"] == "gpu.run" for e in host)
        assert any(e["name"].startswith("kernel:") for e in device)
        assert any(e["cat"] == "transfer" for e in device)

    def test_transfer_and_command_counters(self):
        obs = make_obs()
        GPUPipeline(OPTIMIZED, obs=obs).run(
            images.natural_like(64, 64, seed=0))
        text = obs.metrics.to_prometheus_text()
        assert "repro_cl_transfer_bytes_total" in text
        assert 'repro_cl_commands_total{kind="kernel"}' in text
        assert "repro_cl_kernel_seconds" in text

    def test_debug_log_has_per_command_records(self):
        stream = io.StringIO()
        obs = RunContext.create(log_level="debug", log_stream=stream)
        GPUPipeline(OPTIMIZED, obs=obs).run(
            images.natural_like(64, 64, seed=0))
        out = stream.getvalue()
        assert "event=cl.cmd" in out
        assert "event=pipeline.complete" in out

    def test_emulate_mode_counts_work_items(self):
        obs = make_obs()
        GPUPipeline(OPTIMIZED, obs=obs, mode="emulate").run(
            images.natural_like(32, 32, seed=0))
        text = obs.metrics.to_prometheus_text()
        assert "repro_emulator_launches_total" in text
        assert "repro_emulator_work_items_total" in text

    def test_two_runs_accumulate(self):
        obs = make_obs()
        pipe = GPUPipeline(OPTIMIZED, obs=obs)
        img = images.natural_like(64, 64, seed=0)
        pipe.run(img)
        pipe.run(img)
        fam = obs.metrics.get("repro_pipeline_runs_total")
        assert fam.labels(pipeline="gpu").value == 2
        hist = obs.stage_histogram().labels(pipeline="gpu", stage="sobel")
        assert hist.count == 2


class TestCPUPipelineIntegration:
    def test_stage_metrics_and_spans(self):
        obs = make_obs()
        res = CPUPipeline(obs=obs).run(images.natural_like(64, 64, seed=0))
        fracs = obs.stage_fractions("cpu")
        assert set(fracs) == set(CPU_STAGE_ORDER)
        assert fracs == pytest.approx(res.times.fractions())
        names = [s.name for s in obs.trace.spans]
        assert names[0] == "cpu.run"
        assert "cpu.overshoot" in names

    def test_obs_does_not_change_pixels(self):
        img = images.natural_like(64, 64, seed=0)
        plain = CPUPipeline().run(img).final
        observed = CPUPipeline(obs=make_obs()).run(img).final
        assert (plain == observed).all()


class TestFig13FromRegistry:
    def test_fractions_sum_to_one(self):
        for version in fig13_fractions.VERSIONS:
            fracs = fig13_fractions.run(version, (64,))["64x64"]
            assert sum(fracs.values()) == pytest.approx(1.0)

    def test_gpu_fractions_match_direct_run(self):
        obs = make_obs()
        res = GPUPipeline(OPTIMIZED, obs=obs, label="optimized").run(
            images.natural_like(256, 256, seed=0))
        via_registry = fig13_fractions.run("optimized", (256,))["256x256"]
        assert via_registry == pytest.approx(res.times.fractions())
