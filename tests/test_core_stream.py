"""Stream processing and the copy/compute-overlap model."""

import io

import numpy as np
import pytest

from repro.core import BASE, OPTIMIZED, GPUPipeline, StreamProcessor
from repro.errors import ValidationError
from repro.obs import RunContext
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def frames():
    return [Image.from_array(f)
            for f in images.video_sequence(64, 64, 4, seed=8)]


class TestStreamProcessor:
    def test_outputs_match_single_runs(self, frames):
        stream = StreamProcessor(OPTIMIZED, keep_outputs=True).run(frames)
        pipe = GPUPipeline(OPTIMIZED)
        for frame, out in zip(frames, stream.outputs):
            assert np.array_equal(out, pipe.run(frame).final)

    def test_frame_stats_decompose_serial_time(self, frames):
        stream = StreamProcessor(OPTIMIZED).run(frames)
        for f in stream.frames:
            assert f.serial_time == pytest.approx(
                f.transfer_time + f.device_time + f.host_time, rel=1e-9)

    def test_total_and_fps(self, frames):
        stream = StreamProcessor(OPTIMIZED).run(frames)
        assert stream.n_frames == 4
        assert stream.total_time == pytest.approx(
            sum(f.serial_time for f in stream.frames))
        assert stream.fps == pytest.approx(
            stream.n_frames / stream.total_time)

    def test_outputs_not_kept_by_default(self, frames):
        stream = StreamProcessor(OPTIMIZED).run(frames)
        assert stream.outputs == []

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            StreamProcessor(OPTIMIZED).run([])

    def test_accepts_raw_arrays(self):
        stream = StreamProcessor(OPTIMIZED).run(
            images.video_sequence(32, 32, 2, seed=1))
        assert stream.n_frames == 2

    def test_sustains_target(self, frames):
        stream = StreamProcessor(OPTIMIZED).run(frames)
        assert stream.sustains(1.0)             # trivially
        assert not stream.sustains(1e9)         # impossible
        with pytest.raises(ValidationError):
            stream.sustains(0.0)


class TestStreamObservability:
    def test_run_context_threads_through_frames(self, frames):
        stream = io.StringIO()
        obs = RunContext.create("stream-test", log_level="info",
                                log_stream=stream)
        StreamProcessor(OPTIMIZED, obs=obs).run(frames)
        text = obs.metrics.to_prometheus_text()
        # Per-frame pipeline metrics land in the shared registry...
        assert "repro_pipeline_runs_total" in text
        # ...and the stream layer publishes its simulated throughput.
        assert "repro_stream_fps" in text
        assert "stream.complete" in stream.getvalue()

    def test_pipeline_override_is_used(self, frames):
        pipe = GPUPipeline(OPTIMIZED)
        stream = StreamProcessor(OPTIMIZED, pipeline=pipe)
        assert stream.pipeline is pipe
        result = stream.run(frames)
        assert result.n_frames == len(frames)
        assert pipe.plan_cache.stats()["hits"] >= len(frames) - 1


class TestOverlapModel:
    def test_overlap_never_slower(self, frames):
        serial = StreamProcessor(OPTIMIZED).run(frames)
        overlap = StreamProcessor(OPTIMIZED,
                                  overlap_transfers=True).run(frames)
        assert overlap.total_time <= serial.total_time

    def test_overlap_hides_the_smaller_side(self, frames):
        overlap = StreamProcessor(OPTIMIZED,
                                  overlap_transfers=True).run(frames)
        for f in overlap.frames:
            assert f.overlapped_time == pytest.approx(
                max(f.transfer_time, f.device_time) + f.host_time)

    def test_overlap_gain_bounded_by_transfer_share(self, frames):
        serial = StreamProcessor(OPTIMIZED).run(frames)
        overlap = StreamProcessor(OPTIMIZED,
                                  overlap_transfers=True).run(frames)
        gain = serial.total_time / overlap.total_time
        bound = 1.0 / (1.0 - serial.transfer_share)
        assert 1.0 <= gain <= bound + 1e-9

    def test_transfer_share_larger_for_base(self):
        """The base pipeline moves the pEdge/up matrices over PCI-E, so at
        realistic frame sizes its transfer share (and overlap headroom) is
        larger.  (At small frames the optimized pipeline's fixed rw-call
        overheads and CPU-border transfers dominate instead — the effect
        only flips once the border heuristic moves to the GPU, hence the
        1024x1024 frames here.)"""
        big = images.video_sequence(1024, 1024, 2, seed=8)
        base = StreamProcessor(BASE).run(big)
        opt = StreamProcessor(OPTIMIZED).run(big)
        assert 0.0 < opt.transfer_share < 1.0
        assert base.transfer_share > opt.transfer_share
