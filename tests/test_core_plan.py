"""Execution-plan cache: keying, correctness, eviction, observability."""

import dataclasses
import io

import numpy as np
import pytest

from repro.core import (
    BASE,
    LADDER,
    OPTIMIZED,
    GPUPipeline,
    PlanCache,
    PlanKey,
)
from repro.errors import ConfigError
from repro.obs import RunContext
from repro.simgpu.device import W8000
from repro.types import Image
from repro.util import images


@pytest.fixture(scope="module")
def frames():
    return [Image.from_array(f)
            for f in images.video_sequence(64, 64, 3, seed=8)]


class TestPlanKeying:
    def test_distinct_shapes_get_distinct_plans(self):
        pipe = GPUPipeline(OPTIMIZED)
        for side in (32, 48, 64):
            pipe.run(images.video_sequence(side, side, 1, seed=1)[0])
        assert len(pipe.plan_cache) == 3
        assert pipe.plan_cache.stats()["misses"] == 3
        assert pipe.plan_cache.stats()["hits"] == 0

    def test_distinct_flags_never_share_plans(self, frames):
        cache = PlanCache()
        for _, flags in LADDER:
            GPUPipeline(flags, plan_cache=cache).run(frames[0])
        assert len(cache) == len(LADDER)
        assert cache.stats()["hits"] == 0

    def test_distinct_devices_never_share_plans(self, frames):
        other = dataclasses.replace(W8000, name="other-gpu")
        cache = PlanCache()
        GPUPipeline(OPTIMIZED, plan_cache=cache).run(frames[0])
        GPUPipeline(OPTIMIZED, device=other, plan_cache=cache).run(frames[0])
        assert len(cache) == 2

    def test_same_config_hits(self, frames):
        pipe = GPUPipeline(OPTIMIZED)
        for f in frames:
            pipe.run(f)
        stats = pipe.plan_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(frames) - 1

    def test_key_is_hashable_and_comparable(self):
        k1 = PlanKey(64, 64, OPTIMIZED, W8000,
                     GPUPipeline().cpu, "functional")
        k2 = PlanKey(64, 64, OPTIMIZED, W8000,
                     GPUPipeline().cpu, "functional")
        assert k1 == k2 and hash(k1) == hash(k2)


class TestPlanCorrectness:
    @pytest.mark.parametrize("name,flags",
                             [(n, f) for n, f in LADDER],
                             ids=[n for n, _ in LADDER])
    def test_cached_bit_identical_across_ladder(self, frames, name, flags):
        uncached = GPUPipeline(flags, caching=False)
        cached = GPUPipeline(flags)
        for f in frames:
            ref = uncached.run(f)
            got = cached.run(f)
            assert np.array_equal(got.final, ref.final)
            assert got.edge_mean == ref.edge_mean
        assert cached.plan_cache.stats()["hits"] == len(frames) - 1

    def test_cached_preserves_simulated_results(self, frames):
        uncached = GPUPipeline(OPTIMIZED, caching=False)
        cached = GPUPipeline(OPTIMIZED)
        for f in frames:
            ref = uncached.run(f)
            got = cached.run(f)
            assert got.total_time == ref.total_time
            assert got.kernel_launches == ref.kernel_launches
            assert got.times.times == ref.times.times

    def test_rectangular_frames(self):
        plane = images.video_sequence(32, 64, 2, seed=3)
        uncached = GPUPipeline(BASE, caching=False)
        cached = GPUPipeline(BASE)
        for f in plane:
            assert np.array_equal(cached.run(f).final,
                                  uncached.run(f).final)


class TestPlanBypass:
    def test_emulate_mode_bypasses_cache(self):
        pipe = GPUPipeline(OPTIMIZED, mode="emulate")
        frame = images.video_sequence(16, 16, 1, seed=1)[0]
        pipe.run(frame)
        pipe.run(frame)
        assert len(pipe.plan_cache) == 0
        assert pipe.plan_cache.stats() == {"hits": 0, "misses": 0,
                                           "size": 0}

    def test_keep_intermediates_bypasses_cache(self, frames):
        pipe = GPUPipeline(OPTIMIZED, keep_intermediates=True)
        res = pipe.run(frames[0])
        pipe.run(frames[0])
        assert len(pipe.plan_cache) == 0
        assert res.intermediates  # generic path retained buffers

    def test_caching_off_has_no_cache(self, frames):
        pipe = GPUPipeline(OPTIMIZED, caching=False)
        pipe.run(frames[0])
        assert pipe.plan_cache is None
        assert pipe.buffer_pool is None


class TestPlanCacheLRU:
    def test_eviction_respects_maxsize(self):
        cache = PlanCache(maxsize=2)
        pipe = GPUPipeline(OPTIMIZED, plan_cache=cache)
        for side in (32, 48, 64):
            pipe.run(images.video_sequence(side, side, 1, seed=1)[0])
        assert len(cache) == 2
        # 32x32 was evicted (least recently used): re-running misses again.
        misses = cache.stats()["misses"]
        pipe.run(images.video_sequence(32, 32, 1, seed=1)[0])
        assert cache.stats()["misses"] == misses + 1

    def test_maxsize_validated(self):
        with pytest.raises(ConfigError):
            PlanCache(maxsize=0)

    def test_clear(self, frames):
        pipe = GPUPipeline(OPTIMIZED)
        pipe.run(frames[0])
        assert len(pipe.plan_cache) == 1
        pipe.plan_cache.clear()
        assert len(pipe.plan_cache) == 0


class TestPlanObservability:
    def test_hit_miss_counters_in_prometheus(self, frames):
        obs = RunContext.create("plan-test", log_level="warning",
                                log_stream=io.StringIO())
        pipe = GPUPipeline(OPTIMIZED, obs=obs)
        for f in frames:
            pipe.run(f)
        text = obs.metrics.to_prometheus_text()
        assert 'repro_plan_cache_requests_total{outcome="miss"} 1' in text
        assert ('repro_plan_cache_requests_total{outcome="hit"} '
                f'{len(frames) - 1}') in text

    def test_cached_runs_replay_queue_metrics(self, frames):
        def totals(n_runs):
            obs = RunContext.create("plan-test", log_level="warning",
                                    log_stream=io.StringIO())
            pipe = GPUPipeline(OPTIMIZED, obs=obs,
                               caching=(n_runs > 1))
            for _ in range(n_runs):
                pipe.run(frames[0])
            return obs.metrics.to_prometheus_text()

        once = totals(1)
        lines_once = {
            line.split()[0]: float(line.split()[1])
            for line in once.splitlines()
            if line.startswith(("repro_cl_commands_total",
                                "repro_cl_transfer_bytes_total"))
        }
        twice = totals(2)
        lines_twice = {
            line.split()[0]: float(line.split()[1])
            for line in twice.splitlines()
            if line.startswith(("repro_cl_commands_total",
                                "repro_cl_transfer_bytes_total"))
        }
        # A cached second run must double every queue-level total.
        for key, value in lines_once.items():
            assert lines_twice[key] == 2 * value, key
