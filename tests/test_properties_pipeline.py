"""Property-based tests over the whole system (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algo import stages as algo
from repro.core import BASE, OPTIMIZED, GPUPipeline
from repro.types import Image, SharpnessParams

from .conftest import assert_allclose

sizes = st.sampled_from([16, 32, 48, 64])
seeds = st.integers(min_value=0, max_value=2**31 - 1)
params_strategy = st.builds(
    SharpnessParams,
    gain=st.floats(min_value=0.0, max_value=4.0),
    gamma=st.floats(min_value=0.2, max_value=2.0),
    strength_max=st.floats(min_value=0.5, max_value=8.0),
    overshoot=st.floats(min_value=0.0, max_value=1.0),
)


def _plane(h, w, seed):
    return np.random.default_rng(seed).uniform(0, 255, (h, w))


class TestPipelineProperties:
    @given(sizes, sizes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_gpu_matches_reference_any_shape(self, h, w, seed):
        plane = _plane(h, w, seed)
        res = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
        assert_allclose(res.final, algo.sharpen(plane)["final"],
                        atol=1e-9, context=f"{h}x{w} seed={seed}")

    @given(seeds, params_strategy)
    @settings(max_examples=15, deadline=None)
    def test_base_and_optimized_agree_for_any_params(self, seed, params):
        plane = _plane(32, 32, seed)
        img = Image.from_array(plane)
        base = GPUPipeline(BASE, params).run(img)
        opt = GPUPipeline(OPTIMIZED, params).run(img)
        assert_allclose(base.final, opt.final, atol=1e-9,
                        context="base vs optimized")

    @given(seeds, params_strategy)
    @settings(max_examples=15, deadline=None)
    def test_output_always_a_valid_image(self, seed, params):
        plane = _plane(32, 32, seed)
        res = GPUPipeline(OPTIMIZED, params).run(Image.from_array(plane))
        assert np.isfinite(res.final).all()
        assert res.final.min() >= 0.0
        assert res.final.max() <= 255.0

    @given(st.floats(min_value=0.0, max_value=255.0))
    @settings(max_examples=10, deadline=None)
    def test_flat_images_are_fixed_points(self, value):
        plane = np.full((32, 32), value)
        res = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
        assert_allclose(res.final, plane, atol=1e-9,
                        context=f"flat {value}")

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_simulated_time_is_content_independent(self, seed):
        """The cost model prices work, not pixel values."""
        a = GPUPipeline(OPTIMIZED).run(
            Image.from_array(_plane(32, 32, seed)))
        b = GPUPipeline(OPTIMIZED).run(
            Image.from_array(_plane(32, 32, seed + 1)))
        assert a.total_time == pytest.approx(b.total_time, rel=1e-12)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_runs_are_reproducible(self, seed):
        plane = _plane(32, 32, seed)
        r1 = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
        r2 = GPUPipeline(OPTIMIZED).run(Image.from_array(plane))
        assert np.array_equal(r1.final, r2.final)
        assert r1.total_time == r2.total_time


class TestMonotonicityProperties:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_larger_images_cost_more(self, seed):
        small = GPUPipeline(OPTIMIZED).run(
            Image.from_array(_plane(32, 32, seed)))
        large = GPUPipeline(OPTIMIZED).run(
            Image.from_array(_plane(64, 64, seed)))
        assert large.total_time > small.total_time

    @given(params_strategy)
    @settings(max_examples=10, deadline=None)
    def test_overshoot_bounds_respected(self, params):
        """Body pixels never exceed the blend of local max and 255."""
        plane = _plane(32, 32, 0)
        res = GPUPipeline(OPTIMIZED, params).run(Image.from_array(plane))
        out = algo.sharpen(plane, params)
        mx = out["preliminary"][1:-1, 1:-1]
        limit = np.maximum(np.clip(mx, 0, 255).max(), 255.0)
        assert res.final.max() <= limit
