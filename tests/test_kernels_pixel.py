"""Pixel kernels: downscale, upscale center/border, perror — both faces."""

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.kernels import (
    make_downscale_spec,
    make_perror_spec,
    make_upscale_border_spec,
    make_upscale_center_spec,
)
from repro.kernels.upscale_border import (
    BORDER_GLOBAL,
    BORDER_LOCAL,
    border_line_value,
)
from repro.simgpu.device import W8000

from .conftest import assert_allclose
from .kernel_helpers import grid2d, make_padded, run_spec

H = W = 32


@pytest.fixture(scope="module")
def plane():
    from repro.util import images
    return images.natural_like(H, W, seed=5)


def _downscale_args(plane, padded):
    src_host = make_padded(plane) if padded else plane

    def build(ctx):
        src = ctx.create_buffer(src_host.shape, transfer_itemsize=1)
        src.data[...] = src_host
        dst = ctx.create_buffer((H // 4, W // 4), transfer_itemsize=4)
        return (src, dst, H, W), {"dst": dst}

    return build


class TestDownscaleKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("padded", [False, True])
    def test_matches_algo(self, plane, mode, padded):
        spec = make_downscale_spec(padded=padded)
        gsz, lsz = grid2d(W // 4, H // 4)
        out = run_spec(spec, gsz, lsz, _downscale_args(plane, padded),
                       mode=mode)
        assert_allclose(out["dst"], algo.downscale(plane), atol=1e-9,
                        context=f"downscale {mode} padded={padded}")

    def test_cost_scales_with_items(self):
        spec = make_downscale_spec()
        c1 = spec.cost(W8000, (64, 64), (16, 16), ())
        c2 = spec.cost(W8000, (128, 128), (16, 16), ())
        assert c2.global_bytes_read == 4 * c1.global_bytes_read
        assert c2.flops == 4 * c1.flops


def _center_args(plane):
    down_host = algo.downscale(plane)

    def build(ctx):
        down = ctx.create_buffer(down_host.shape, transfer_itemsize=4)
        down.data[...] = down_host
        up = ctx.create_buffer((H, W), transfer_itemsize=4)
        return (down, up, H, W), {"up": up}

    return build


class TestUpscaleCenterKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("vector", [False, True])
    def test_matches_algo_body(self, plane, mode, vector):
        spec = make_upscale_center_spec(vector=vector)
        if vector:
            gsz, lsz = grid2d((W - 4) // 4, (H - 4) // 4)
        else:
            gsz, lsz = grid2d(W - 4, H - 4)
        out = run_spec(spec, gsz, lsz, _center_args(plane), mode=mode)
        expected = algo.upscale_body(algo.downscale(plane))
        assert_allclose(out["up"][2:H - 2, 2:W - 2], expected, atol=1e-9,
                        context=f"center {mode} vector={vector}")

    def test_vector_reads_fewer_bytes_for_same_output(self):
        """The V.D data-sharing payoff: 4 float reads per 16 outputs
        instead of 4 per output."""
        scalar = make_upscale_center_spec(vector=False)
        vector = make_upscale_center_spec(vector=True)
        c_s = scalar.cost(W8000, (64, 64), (16, 16), ())
        c_v = vector.cost(W8000, (16, 16), (16, 16), ())
        # Same 64x64 output region:
        assert c_v.global_bytes_read * 16 == pytest.approx(
            c_s.global_bytes_read
        )


def _border_args(plane):
    down_host = algo.downscale(plane)

    def build(ctx):
        down = ctx.create_buffer(down_host.shape, transfer_itemsize=4)
        down.data[...] = down_host
        up = ctx.create_buffer((H, W), transfer_itemsize=4)
        return (down, up, H, W), {"up": up}

    return build


class TestUpscaleBorderKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_matches_canonical_border(self, plane, mode):
        spec = make_upscale_border_spec()
        out = run_spec(spec, BORDER_GLOBAL, BORDER_LOCAL,
                       _border_args(plane), mode=mode)
        expected = np.zeros((H, W))
        algo.upscale_border_apply(expected, algo.downscale(plane))
        # Border cells only (body untouched by this kernel):
        for region in (np.s_[0:2, :], np.s_[H - 2:, :],
                       np.s_[:, 0:2], np.s_[:, W - 2:]):
            assert_allclose(out["up"][region], expected[region], atol=1e-9,
                            context=f"border {mode} region {region}")

    def test_body_untouched(self, plane):
        spec = make_upscale_border_spec()
        out = run_spec(spec, BORDER_GLOBAL, BORDER_LOCAL,
                       _border_args(plane), mode="emulate")
        assert np.all(out["up"][2:H - 2, 2:W - 2] == 0.0)

    def test_cost_is_latency_bound(self):
        """The serial per-line loops dominate the launch cost and grow
        linearly with the image side (the Fig. 17 mechanism)."""
        spec = make_upscale_border_spec()
        c_small = spec.cost(W8000, BORDER_GLOBAL, BORDER_LOCAL,
                            (None, None, 448, 448))
        c_large = spec.cost(W8000, BORDER_GLOBAL, BORDER_LOCAL,
                            (None, None, 896, 896))
        assert c_small.serial_latency_s == pytest.approx(
            448 * W8000.mem_latency_s)
        assert c_large.serial_latency_s == pytest.approx(
            2 * c_small.serial_latency_s)
        assert c_small.divergent


class TestBorderLineValue:
    def test_matches_canonical_line(self, rng):
        line = rng.uniform(0, 255, 8)
        expected = algo.upscale_border_line(line, 32)
        got = [border_line_value(line, j, 32) for j in range(32)]
        assert_allclose(got, expected, context="border line rule")


def _perror_args(plane, padded):
    src_host = make_padded(plane) if padded else plane
    up_host = algo.upscale(algo.downscale(plane))

    def build(ctx):
        src = ctx.create_buffer(src_host.shape, transfer_itemsize=1)
        src.data[...] = src_host
        up = ctx.create_buffer((H, W), transfer_itemsize=4)
        up.data[...] = up_host
        dst = ctx.create_buffer((H, W), transfer_itemsize=4)
        return (src, up, dst, H, W), {"dst": dst}

    return build


class TestPerrorKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("padded", [False, True])
    def test_matches_algo(self, plane, mode, padded):
        spec = make_perror_spec(padded=padded)
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, _perror_args(plane, padded),
                       mode=mode)
        up = algo.upscale(algo.downscale(plane))
        assert_allclose(out["dst"], algo.perror(plane, up), atol=1e-9,
                        context=f"perror {mode} padded={padded}")
