"""Edge cases of the dynamic race detector's epoch model."""

import numpy as np
import pytest

from repro.errors import RaceConditionError
from repro.simgpu.device import W8000
from repro.simgpu.emulator import BARRIER, run_kernel
from repro.simgpu.racecheck import RaceTracker, TrackedArray


def test_same_item_read_after_write_is_legal():
    """RAW within one work-item is ordinary sequential code, not a race."""
    tracker = RaceTracker()
    tracker.current_item = 3
    tracker.on_write("buf", (0,))
    tracker.on_read("buf", (0,))
    tracker.on_write("buf", (0,))  # and WAW with itself is fine too


def test_epoch_bump_resets_conflicts():
    """A barrier (epoch bump) orders accesses: no cross-epoch conflicts."""
    tracker = RaceTracker()
    tracker.current_item = 0
    tracker.on_write("buf", (0,))
    tracker.bump()
    tracker.current_item = 1
    tracker.on_read("buf", (0,))   # same cell, next epoch: ordered
    tracker.on_write("buf", (0,))


def test_cross_item_conflict_without_bump_raises():
    tracker = RaceTracker()
    tracker.current_item = 0
    tracker.on_write("buf", (0,))
    tracker.current_item = 1
    with pytest.raises(RaceConditionError):
        tracker.on_write("buf", (0,))


def test_read_read_sharing_is_never_a_race():
    tracker = RaceTracker()
    for item in range(4):
        tracker.current_item = item
        tracker.on_read("buf", (7,))


def test_tracked_array_proxies_and_reports():
    tracker = RaceTracker()
    tracker.current_item = 0
    arr = TrackedArray(np.zeros(4), "buf", tracker)
    arr[1] = 5.0
    assert arr[1] == 5.0
    assert len(arr) == 4 and arr.shape == (4,)
    tracker.current_item = 1
    with pytest.raises(RaceConditionError, match=r"buf\[1\]"):
        arr[1] = 6.0


def _local_exchange(with_barrier):
    def kernel(ctx, dst, scratch):
        lid = ctx.get_local_id(0)
        wg = ctx.get_local_size(0)
        scratch[lid] = float(lid)
        if with_barrier:
            yield BARRIER
        dst[ctx.get_global_id(0)] = scratch[(lid + 1) % wg]
    return kernel


def test_local_memory_is_tracked_neighbour_read_races():
    """Reading a neighbour's local slot before the barrier is the classic
    cooperative-tile bug; the tracker sees local memory too."""
    dst = np.zeros(8)
    with pytest.raises(RaceConditionError):
        run_kernel(_local_exchange(False), (8,), (8,), (dst,),
                   device=W8000, local_mem={"scratch": 8},
                   race_check=True)


def test_local_memory_exchange_with_barrier_is_clean():
    dst = np.zeros(8)
    run_kernel(_local_exchange(True), (8,), (8,), (dst,),
               device=W8000, local_mem={"scratch": 8}, race_check=True)
    assert list(dst) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 0.0]
