"""Sharpness-tail kernels: prelim, overshoot, fused (scalar and vector)."""

import numpy as np
import pytest

from repro.algo import stages as algo
from repro.errors import ConfigError
from repro.kernels import (
    make_overshoot_spec,
    make_prelim_spec,
    make_sharpness_fused_spec,
)
from repro.simgpu.device import W8000
from repro.types import SharpnessParams

from .conftest import assert_allclose
from .kernel_helpers import grid2d, make_padded, run_spec

H = W = 32
PARAMS = SharpnessParams()


@pytest.fixture(scope="module")
def stage_data():
    from repro.util import images
    plane = images.natural_like(H, W, seed=11)
    down = algo.downscale(plane)
    up = algo.upscale(down)
    err = algo.perror(plane, up)
    edge = algo.sobel(plane)
    mean = algo.reduce_mean(edge)
    strength = algo.strength_map(edge, mean, PARAMS)
    prelim = algo.preliminary_sharpen(up, err, strength)
    final = algo.overshoot_control(prelim, plane, PARAMS)
    return {
        "plane": plane, "up": up, "err": err, "edge": edge,
        "mean": mean, "prelim": prelim, "final": final,
    }


class TestPrelimKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_matches_algo(self, stage_data, mode):
        d = stage_data

        def build(ctx):
            up = ctx.create_buffer((H, W), transfer_itemsize=4)
            up.data[...] = d["up"]
            edge = ctx.create_buffer((H, W), transfer_itemsize=4)
            edge.data[...] = d["edge"]
            err = ctx.create_buffer((H, W), transfer_itemsize=4)
            err.data[...] = d["err"]
            dst = ctx.create_buffer((H, W), transfer_itemsize=4)
            return (up, edge, err, dst, d["mean"], PARAMS, H, W), \
                {"dst": dst}

        spec = make_prelim_spec()
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, build, mode=mode)
        assert_allclose(out["dst"], d["prelim"], atol=1e-9,
                        context=f"prelim {mode}")


class TestOvershootKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("padded", [False, True])
    def test_matches_algo(self, stage_data, mode, padded):
        d = stage_data
        src_host = make_padded(d["plane"]) if padded else d["plane"]

        def build(ctx):
            prelim = ctx.create_buffer((H, W), transfer_itemsize=4)
            prelim.data[...] = d["prelim"]
            src = ctx.create_buffer(src_host.shape, transfer_itemsize=1)
            src.data[...] = src_host
            dst = ctx.create_buffer((H, W), transfer_itemsize=1)
            return (prelim, src, dst, PARAMS, H, W), {"dst": dst}

        spec = make_overshoot_spec(padded=padded)
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, build, mode=mode)
        assert_allclose(out["dst"], d["final"], atol=1e-9,
                        context=f"overshoot {mode} padded={padded}")

    def test_divergent_without_builtins(self):
        assert make_overshoot_spec().cost(W8000, (32, 32), (16, 16),
                                          ()).divergent
        assert not make_overshoot_spec(builtins=True).cost(
            W8000, (32, 32), (16, 16), ()).divergent


def _fused_args(stage_data, padded):
    d = stage_data
    src_host = make_padded(d["plane"]) if padded else d["plane"]

    def build(ctx):
        up = ctx.create_buffer((H, W), transfer_itemsize=4)
        up.data[...] = d["up"]
        edge = ctx.create_buffer((H, W), transfer_itemsize=4)
        edge.data[...] = d["edge"]
        src = ctx.create_buffer(src_host.shape, transfer_itemsize=1)
        src.data[...] = src_host
        dst = ctx.create_buffer((H, W), transfer_itemsize=1)
        return (up, edge, src, dst, d["mean"], PARAMS, H, W), {"dst": dst}

    return build


class TestFusedKernel:
    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    @pytest.mark.parametrize("padded", [False, True])
    def test_scalar_matches_unfused_chain(self, stage_data, mode, padded):
        spec = make_sharpness_fused_spec(padded=padded)
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, _fused_args(stage_data, padded),
                       mode=mode)
        assert_allclose(out["dst"], stage_data["final"], atol=1e-9,
                        context=f"fused scalar {mode} padded={padded}")

    @pytest.mark.parametrize("mode", ["functional", "emulate"])
    def test_vector_matches_unfused_chain(self, stage_data, mode):
        spec = make_sharpness_fused_spec(padded=True, vector=True)
        gsz, lsz = grid2d(W // 4, H)
        out = run_spec(spec, gsz, lsz, _fused_args(stage_data, True),
                       mode=mode)
        assert_allclose(out["dst"], stage_data["final"], atol=1e-9,
                        context=f"fused vector {mode}")

    def test_vector_requires_padding(self):
        with pytest.raises(ConfigError):
            make_sharpness_fused_spec(padded=False, vector=True)

    def test_fusion_saves_intermediate_traffic(self):
        """The V.B payoff: the fused kernel moves less global memory than
        the three unfused kernels combined (pError and preliminary live in
        registers)."""
        gsz, lsz = (32, 32), (16, 16)
        fused = make_sharpness_fused_spec(padded=True).cost(
            W8000, gsz, lsz, ())
        unfused = [
            make_prelim_spec().cost(W8000, gsz, lsz, ()),
            make_overshoot_spec(padded=True).cost(W8000, gsz, lsz, ()),
        ]
        # perror kernel traffic would add further to the unfused side.
        unfused_bytes = sum(
            c.global_bytes_read + c.global_bytes_written for c in unfused
        )
        fused_bytes = fused.global_bytes_read + fused.global_bytes_written
        assert fused_bytes < unfused_bytes

    def test_zero_mean_image(self):
        """Flat image: strength map collapses to zero, fused kernel must
        reproduce the clamped upscale."""
        plane = np.full((H, W), 50.0)
        d = {
            "plane": plane,
            "up": algo.upscale(algo.downscale(plane)),
            "edge": algo.sobel(plane),
            "mean": 0.0,
        }
        spec = make_sharpness_fused_spec(padded=True)
        gsz, lsz = grid2d(W, H)
        out = run_spec(spec, gsz, lsz, _fused_args(d, True),
                       mode="emulate")
        assert_allclose(out["dst"], plane, atol=1e-9,
                        context="flat image fused")
