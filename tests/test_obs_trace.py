"""Tracer: span nesting/ordering, Chrome export, Timeline merging."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs import NullTracer, Tracer
from repro.simgpu.profiling import Timeline


class FakeClock:
    """Deterministic monotonically advancing clock."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


def make_tracer():
    return Tracer(clock=FakeClock())


class TestSpans:
    def test_nesting_parents_and_depth(self):
        tr = make_tracer()
        with tr.span("outer"):
            with tr.span("mid"):
                with tr.span("inner"):
                    pass
            with tr.span("mid2"):
                pass
        outer, mid, inner, mid2 = tr.spans
        assert outer.parent is None and outer.depth == 0
        assert mid.parent is outer and mid.depth == 1
        assert inner.parent is mid and inner.depth == 2
        assert mid2.parent is outer and mid2.depth == 1

    def test_ordering_and_containment(self):
        tr = make_tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer, inner = tr.spans
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert inner.duration >= 0

    def test_span_attrs_and_set(self):
        tr = make_tracer()
        with tr.span("s", k=1) as span:
            span.set(extra="v")
        assert tr.spans[0].args == {"k": 1, "extra": "v"}

    def test_exception_closes_span_and_marks_error(self):
        tr = make_tracer()
        with pytest.raises(RuntimeError):
            with tr.span("s"):
                raise RuntimeError("boom")
        span = tr.spans[0]
        assert span.end is not None
        assert span.args.get("error") is True
        # The stack is clean: a new root span has no parent.
        with tr.span("t"):
            pass
        assert tr.spans[1].parent is None

    def test_open_span_duration_raises(self):
        tr = make_tracer()
        handle = tr.span("s")
        with pytest.raises(ValidationError):
            _ = handle.span.duration
        with handle:
            pass


class TestChromeExport:
    def test_event_shape(self):
        tr = make_tracer()
        with tr.span("outer", pipeline="gpu"):
            pass
        doc = tr.chrome_trace()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "host"
        (span,) = spans
        assert span["name"] == "outer"
        assert span["pid"] == 1
        assert span["dur"] > 0
        assert span["args"]["pipeline"] == "gpu"

    def test_write_accepts_str_and_path(self, tmp_path):
        tr = make_tracer()
        with tr.span("s"):
            pass
        p1 = tr.write_chrome_trace(str(tmp_path / "a.json"))
        p2 = tr.write_chrome_trace(tmp_path / "b.json")
        assert json.loads(p1.read_text()) == json.loads(p2.read_text())

    def test_write_is_atomic(self, tmp_path):
        tr = make_tracer()
        tr.write_chrome_trace(tmp_path / "t.json")
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]


class TestMergeTimeline:
    def make_timeline(self):
        tl = Timeline()
        tl.record("write:src", "transfer", 1e-4, stage="data_init")
        tl.record("kernel:sobel", "kernel", 2e-4, stage="sobel")
        tl.record("clFinish", "sync", 1e-6, stage="sobel")
        return tl

    def test_merged_events_in_own_process(self):
        tr = make_tracer()
        with tr.span("host_work"):
            pass
        pid = tr.merge_timeline(self.make_timeline(), label="sim W8000")
        events = tr.chrome_trace()["traceEvents"]
        merged = [e for e in events
                  if e.get("pid") == pid and e["ph"] == "X"]
        assert {e["name"] for e in merged} == \
            {"write:src", "kernel:sobel", "clFinish"}
        # Simulated timestamps preserved (us).
        kernel = next(e for e in merged if e["name"] == "kernel:sobel")
        assert kernel["ts"] == pytest.approx(1e-4 * 1e6)
        assert kernel["dur"] == pytest.approx(2e-4 * 1e6)
        assert kernel["args"]["stage"] == "sobel"
        # Process metadata labels the merged row.
        names = [e for e in events if e["ph"] == "M"
                 and e.get("pid") == pid and e["name"] == "process_name"]
        assert names[0]["args"]["name"] == "sim W8000"

    def test_two_timelines_get_distinct_pids(self):
        tr = make_tracer()
        pid1 = tr.merge_timeline(self.make_timeline())
        pid2 = tr.merge_timeline(self.make_timeline())
        assert pid1 != pid2
        assert 1 not in (pid1, pid2)

    def test_host_pid_reserved(self):
        tr = make_tracer()
        with pytest.raises(ValidationError):
            tr.merge_timeline(self.make_timeline(), pid=1)

    def test_perfetto_loadable_json(self, tmp_path):
        tr = make_tracer()
        with tr.span("s"):
            pass
        tr.merge_timeline(self.make_timeline())
        path = tr.write_chrome_trace(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        for e in doc["traceEvents"]:
            assert "name" in e and "ph" in e and "pid" in e


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        with tr.span("s", k=1) as h:
            h.set(x=2)
        assert tr.spans == []
        assert tr.merge_timeline(Timeline()) == 0
        assert tr.chrome_trace()["traceEvents"][0]["ph"] == "M"
