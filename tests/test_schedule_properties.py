"""Property-based tests for the resource scheduler (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.schedule import RESOURCES, ResourceScheduler


@st.composite
def random_dag(draw):
    """A random op list: durations, resources, and backward-only deps."""
    n = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for i in range(n):
        duration = draw(st.floats(min_value=0.0, max_value=10.0))
        resource = draw(st.sampled_from(RESOURCES))
        if i == 0:
            deps = ()
        else:
            deps = tuple(draw(st.sets(
                st.integers(min_value=0, max_value=i - 1), max_size=3)))
        ops.append((f"op{i}", duration, resource, deps))
    return ops


def _schedule(ops):
    sched = ResourceScheduler()
    for name, duration, resource, deps in ops:
        sched.add(name, "kernel", duration, resource, deps)
    timeline = sched.schedule()
    return sched, timeline


class TestSchedulerProperties:
    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_no_resource_overlap(self, ops):
        """Two ops on the same exclusive resource never overlap in time."""
        sched, _ = _schedule(ops)
        by_resource = {}
        for op in sched.ops:
            by_resource.setdefault(op.resource, []).append(op)
        for res_ops in by_resource.values():
            intervals = sorted((o.start, o.end) for o in res_ops)
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_dependencies_respected(self, ops):
        sched, _ = _schedule(ops)
        for op in sched.ops:
            for d in op.deps:
                assert op.start >= sched.ops[d].end - 1e-12

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, ops):
        """busiest-resource <= makespan <= serial sum."""
        sched, timeline = _schedule(ops)
        total_work = sum(o.duration for o in sched.ops)
        busiest = max(sched.resource_busy_times().values())
        assert timeline.total >= busiest - 1e-9
        assert timeline.total <= total_work + 1e-9

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_critical_path(self, ops):
        sched, timeline = _schedule(ops)
        longest = [0.0] * len(sched.ops)
        for i, op in enumerate(sched.ops):
            ready = max((longest[d] for d in op.deps), default=0.0)
            longest[i] = ready + op.duration
        critical = max(longest, default=0.0)
        assert timeline.total >= critical - 1e-9

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_work_conserved(self, ops):
        sched, timeline = _schedule(ops)
        assert sum(e.duration for e in timeline.events) == pytest.approx(
            sum(o.duration for o in sched.ops))

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, ops):
        _, t1 = _schedule(ops)
        _, t2 = _schedule(ops)
        assert [(e.name, e.start, e.end) for e in t1.events] == \
            [(e.name, e.start, e.end) for e in t2.events]

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_serial_chain_equals_sum(self, ops):
        """Forcing a full chain on one resource serializes exactly."""
        sched = ResourceScheduler()
        prev = None
        total = 0.0
        for name, duration, _, _ in ops:
            deps = (prev,) if prev is not None else ()
            prev = sched.add(name, "kernel", duration, "compute", deps)
            total += duration
        timeline = sched.schedule()
        assert timeline.total == pytest.approx(total)
